"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
``wheel`` package required for PEP 517 editable builds.
"""

from setuptools import setup

setup()
