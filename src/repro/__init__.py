"""repro — reproduction of *Measuring and Understanding Throughput of Network
Topologies* (Jyothi, Singla, Godfrey, Kolla; SC 2016).

The package provides:

* :mod:`repro.topologies` — the ten topology families the paper benchmarks
  plus its theory-section graph constructions;
* :mod:`repro.core` — the compiled sparse instance core
  (:class:`~repro.core.ArcGraph`): canonical arc arrays, CSR adjacency,
  and content digests computed once per topology;
* :mod:`repro.traffic` — all-to-all, random matching, longest matching
  (near-worst-case), Kodialam, elephant, and Facebook-shaped TMs;
* :mod:`repro.throughput` — exact LP and approximate engines for maximum
  concurrent flow, theoretical bounds, path-restricted variants;
* :mod:`repro.cuts` — sparsest cut / bisection bandwidth and the heuristic
  estimator suite of the paper's Appendix C;
* :mod:`repro.evaluation` — same-equipment random-graph normalization,
  relative throughput, and one experiment per paper table/figure;
* :mod:`repro.batch` — parallel batch solver and content-addressed result
  cache behind every experiment sweep (see DESIGN.md);
* :mod:`repro.theory` — executable forms of the paper's theorems.

Quickstart::

    from repro import jellyfish, longest_matching, throughput
    topo = jellyfish(64, 6, seed=0)
    tm = longest_matching(topo)
    print(throughput(topo, tm).value)
"""

from repro.topologies import (
    Topology,
    bcube,
    dcell,
    dragonfly,
    fat_tree,
    flattened_butterfly,
    hypercube,
    hyperx,
    jellyfish,
    longhop,
    make_topology,
    slimfly,
)
from repro.traffic import (
    TrafficMatrix,
    all_to_all,
    elephant_matching,
    kodialam_tm,
    longest_matching,
    random_matching,
    tm_facebook_frontend,
    tm_facebook_hadoop,
)
from repro.throughput import (
    ThroughputResult,
    throughput,
    volumetric_upper_bound,
    worst_case_lower_bound,
)
from repro.batch import (
    BaseResultCache,
    BatchSolver,
    ResultCache,
    SolveOutcome,
    SolveRequest,
    SqliteResultCache,
    make_cache,
    solve_values,
)
from repro.cuts import bisection_bandwidth, find_sparse_cut, sparsest_cut_bruteforce
from repro.evaluation import (
    relative_throughput,
    same_equipment_random_graph,
)

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "bcube",
    "dcell",
    "dragonfly",
    "fat_tree",
    "flattened_butterfly",
    "hypercube",
    "hyperx",
    "jellyfish",
    "longhop",
    "make_topology",
    "slimfly",
    "TrafficMatrix",
    "all_to_all",
    "elephant_matching",
    "kodialam_tm",
    "longest_matching",
    "random_matching",
    "tm_facebook_frontend",
    "tm_facebook_hadoop",
    "ThroughputResult",
    "throughput",
    "volumetric_upper_bound",
    "worst_case_lower_bound",
    "bisection_bandwidth",
    "find_sparse_cut",
    "sparsest_cut_bruteforce",
    "relative_throughput",
    "same_equipment_random_graph",
    "BaseResultCache",
    "BatchSolver",
    "ResultCache",
    "SolveOutcome",
    "SolveRequest",
    "SqliteResultCache",
    "make_cache",
    "solve_values",
    "__version__",
]
