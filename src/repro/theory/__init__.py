"""Executable theorems: duality, the Theorem-2 bound, Theorem-1 separation."""

from repro.theory.theorems import (
    Theorem1Point,
    Theorem2Report,
    sparsest_cut_lp_relaxation,
    theorem1_separation,
    verify_theorem2,
)

__all__ = [
    "Theorem1Point",
    "Theorem2Report",
    "sparsest_cut_lp_relaxation",
    "theorem1_separation",
    "verify_theorem2",
]
