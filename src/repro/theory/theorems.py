"""Executable versions of the paper's theorems (Appendix A, B, and Thm. 3).

* Theorem 3: the dual of the throughput LP is an LP relaxation of sparsest
  cut.  :func:`sparsest_cut_lp_relaxation` solves the metric relaxation
  directly; by strong duality its optimum equals throughput exactly, which
  the test suite verifies on small graphs — a deep end-to-end check of the
  flow LP.
* Theorem 2: :func:`verify_theorem2` checks T(TM) >= T_A2A / 2 for a battery
  of hose TMs.
* Theorem 1: :func:`theorem1_separation` builds graphs A and B and returns
  their (throughput, sparse cut) pairs; the Fig. 1 experiment asserts the
  gap widens with subdivision length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

# The metric-LP below is a *cut-structure* LP (triangle-inequality polytope),
# not a throughput solve: there is no (topology, TM) instance to cache or
# route through the batch layer.
# repro-lint: allow[R001]
from scipy.optimize import linprog

from repro.batch import SolveRequest, get_solver, solve_instances
from repro.cuts.heuristics import find_sparse_cut
from repro.topologies.base import Topology
from repro.topologies.expander import clustered_random_graph, subdivided_expander
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all
from repro.utils.rng import SeedLike, stable_seed


def sparsest_cut_lp_relaxation(topology: Topology, tm: TrafficMatrix) -> float:
    """Optimal value of the metric LP relaxation of sparsest cut.

        minimize   sum_{arcs (u,v)} c(u,v) l(u,v)
        subject to sum_{s,t} D(s,t) l(s,t) = 1,
                   l(u,v) <= l(u,w) + l(w,v) for all ordered triples,
                   l >= 0.

    This is the *directed* quasi-metric form, matching the directed-arc
    capacity model of the throughput LP: every undirected cable contributes
    one arc of capacity c per direction to the objective.  By Theorem 3 /
    strong LP duality the optimum equals the throughput of ``tm`` on
    ``topology`` exactly.  Dense in O(n^3) triangle constraints — small
    graphs only.
    """
    n = topology.n_switches
    if tm.n_nodes != n:
        raise ValueError("TM / topology size mismatch")
    if n > 16:
        raise ValueError("metric relaxation is O(n^3); limited to n <= 16")
    # Variables: l(u, v) for ordered pairs u != v.
    pair_index: Dict[Tuple[int, int], int] = {}
    for u in range(n):
        for v in range(n):
            if u != v:
                pair_index[(u, v)] = len(pair_index)
    n_var = len(pair_index)

    adj = topology.compile().adjacency().toarray()
    c = np.zeros(n_var)
    for (u, v), j in pair_index.items():
        c[j] = adj[u, v]  # arc capacity per direction (0 for non-edges)

    # Demand normalization: sum_{s != t} D(s, t) l(s, t) = 1.
    a_eq = np.zeros((1, n_var))
    for (u, v), j in pair_index.items():
        a_eq[0, j] = tm.demand[u, v]
    # Directed triangle inequalities: l(u,v) <= l(u,w) + l(w,v).
    rows, cols, vals = [], [], []
    r = 0
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            for w in range(n):
                if w == u or w == v:
                    continue
                rows += [r, r, r]
                cols += [pair_index[(u, v)], pair_index[(u, w)], pair_index[(w, v)]]
                vals += [1.0, -1.0, -1.0]
                r += 1
    A_ub = sp.coo_matrix((vals, (rows, cols)), shape=(r, n_var)).tocsc()
    # repro-lint: allow[R001] — metric/cut LP, not a throughput solve
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=np.zeros(r),
        A_eq=a_eq,
        b_eq=np.array([1.0]),
        bounds=(0, None),
        method="highs",
    )
    if not res.success:  # pragma: no cover
        raise RuntimeError(f"metric relaxation LP failed: {res.message}")
    return float(res.fun)


@dataclass
class Theorem2Report:
    """Outcome of a Theorem-2 verification battery."""

    lower_bound: float
    ratios: Dict[str, float]
    holds: bool


def verify_theorem2(
    topology: Topology, tms: Dict[str, TrafficMatrix], rtol: float = 1e-6
) -> Theorem2Report:
    """Check T(tm) >= T_A2A / 2 for every supplied hose TM."""
    for name, tm in tms.items():
        if not tm.is_hose(topology.servers):
            raise ValueError(f"TM {name!r} is not hose-feasible; bound does not apply")
    # One batch: the A2A baseline plus every hose TM, solved through the
    # ambient solver so the battery parallelizes and memoizes.
    outcomes = get_solver().solve_many(
        [SolveRequest(topology, all_to_all(topology), tag="A2A")]
        + [SolveRequest(topology, tm, tag=str(name)) for name, tm in tms.items()]
    )
    lb = outcomes[0].require().value / 2.0
    ratios = {
        name: outcome.require().value / lb
        for name, outcome in zip(tms, outcomes[1:])
    }
    holds = all(r >= 1.0 - rtol for r in ratios.values())
    return Theorem2Report(lower_bound=lb, ratios=ratios, holds=holds)


@dataclass
class Theorem1Point:
    """One graph of the Theorem-1 construction with its two metrics."""

    name: str
    throughput: float
    sparse_cut: float

    @property
    def gap(self) -> float:
        return self.sparse_cut / self.throughput


def theorem1_separation(
    n_cluster: int = 48,
    d: int = 3,
    beta: int = 1,
    core: int = 16,
    core_degree: int = 6,
    path_lengths: Sequence[int] = (2, 3),
    seed: SeedLike = 0,
) -> List[Theorem1Point]:
    """Build graph A (clustered) and graphs B_p (subdivided expanders) and
    measure throughput vs best-heuristic sparse cut under all-to-all."""
    points: List[Theorem1Point] = []
    a = clustered_random_graph(n_cluster, d, beta, seed=stable_seed((seed, "A")))
    graphs: List[Tuple[str, Topology]] = [("A", a)]
    for p in path_lengths:
        graphs.append(
            (f"B(p={p})", subdivided_expander(core, core_degree, p, seed=stable_seed((seed, p))))
        )
    for name, topo, tm, t in solve_instances(graphs, all_to_all):
        cut = find_sparse_cut(topo, tm, seed=stable_seed((seed, name))).best.sparsity
        points.append(Theorem1Point(name=name, throughput=t, sparse_cut=cut))
    return points
