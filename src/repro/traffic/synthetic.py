"""Uniform-weight synthetic traffic matrices (paper §III-A2, §IV-A1).

All generators emit hose-tight switch-level matrices (per-server egress and
ingress at most 1, and exactly 1 where the TM allows) so absolute
throughputs are directly comparable across TMs on the same topology — the
convention under which the paper's relationships (A2A = 2 x lower bound,
longest matching -> lower bound) hold exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import (
    SeedLike,
    ensure_rng,
    permutation_avoiding_fixed_points,
)
from repro.utils.validation import require_positive_int


def all_to_all(topology: Topology) -> TrafficMatrix:
    """The complete TM: every server pair exchanges ``1/N`` units.

    At switch level: ``D[u, v] = a_u * a_v / N`` for u != v, where a is the
    per-node server count and N the total.  Per-server egress is
    ``(N - a_u) / N < 1`` — the paper's T_A2A, whose throughput is exactly
    twice the Theorem-2 lower bound.
    """
    a = topology.servers.astype(np.float64)
    n_servers = a.sum()
    if n_servers < 2:
        raise ValueError("all_to_all needs at least 2 servers")
    demand = np.outer(a, a) / n_servers
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(
        demand=demand,
        kind="all_to_all",
        meta={"n_servers": int(n_servers)},
    )


def random_matching(
    topology: Topology,
    n_matchings: int = 1,
    seed: SeedLike = None,
    servers_per_switch: Optional[int] = None,
) -> TrafficMatrix:
    """Random-matching TM: the RM(k) family of the paper (Figs. 2 and 4).

    RM(k) models k servers per switch, each with one uniformly random
    outgoing and incoming flow: the TM is the average of ``k = n_matchings``
    independent server-level random derangements, each weighted 1/k.  Every
    server's egress and ingress is exactly 1, so RM(k) is hose-tight for all
    k, and larger k mixes toward all-to-all — reproducing the paper's
    hardness ordering T_A2A >= T_RM(10) >= T_RM(2) >= T_RM(1).

    For prescribed-server families (fat tree, BCube, DCell, Dragonfly) the
    matchings run over the prescribed server list; for uniform families over
    one virtual server per switch.  Matchings never pair a server with
    itself; same-switch pairings are allowed and aggregate to nothing,
    exactly like physical same-switch traffic.

    ``servers_per_switch`` is an accepted alias for ``n_matchings`` matching
    the paper's "random matching with k servers per switch" phrasing.
    """
    if servers_per_switch is not None:
        n_matchings = servers_per_switch
    require_positive_int(n_matchings, "n_matchings")
    rng = ensure_rng(seed)
    n = topology.n_switches
    host_nodes = np.repeat(np.arange(n), topology.servers)
    m = host_nodes.size
    if m < 2:
        raise ValueError("need at least 2 servers for a matching")
    demand = np.zeros((n, n), dtype=np.float64)
    for _ in range(n_matchings):
        perm = permutation_avoiding_fixed_points(m, rng)
        np.add.at(demand, (host_nodes, host_nodes[perm]), 1.0 / n_matchings)
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(
        demand=demand,
        kind="random_matching",
        meta={"n_matchings": n_matchings, "n_servers": int(m)},
    )


def random_permutation_tm(n: int, seed: SeedLike = None) -> TrafficMatrix:
    """A bare random derangement TM on ``n`` abstract nodes (testing helper)."""
    require_positive_int(n, "n")
    if n < 2:
        raise ValueError("need n >= 2")
    rng = ensure_rng(seed)
    perm = permutation_avoiding_fixed_points(n, rng)
    demand = np.zeros((n, n), dtype=np.float64)
    demand[np.arange(n), perm] = 1.0
    return TrafficMatrix(demand=demand, kind="random_permutation", meta={})
