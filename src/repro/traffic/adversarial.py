"""Adversarial worst-case TM search (the paper's first future-work item).

§VI asks: "Is there an efficient method to produce even-worse-case traffic
for any given topology?"  This module implements a local-search answer:
starting from the longest-matching TM, repeatedly try 2-opt swaps on the
matching permutation and keep swaps that *reduce* LP throughput.  Because
every candidate stays a hose-tight permutation TM, Theorem 2 still bounds
how low the search can go (T_A2A / 2), giving a certificate of closeness.

This is expensive (one LP per candidate) and meant for small topologies —
exactly the regime where the paper's Fig. 2/4 tightness claims live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.batch.context import get_solver
from repro.batch.jobs import SolveRequest
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.worstcase import longest_matching
from repro.utils.numeric import safe_ratio
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class AdversarialSearchResult:
    """Outcome of the worst-case TM search."""

    tm: TrafficMatrix
    throughput: float
    start_throughput: float
    lower_bound: float
    n_evaluations: int
    improved: bool

    @property
    def gap_to_bound(self) -> float:
        """throughput / lower bound; 1.0 means provably worst-case.

        NaN when both are 0 (undefined, not infinitely bad)."""
        return safe_ratio(self.throughput, self.lower_bound)


def _matching_tm(topology: Topology, perm: np.ndarray, hosts: np.ndarray) -> TrafficMatrix:
    """Permutation TM over host nodes (weight 1 per server flow)."""
    n = topology.n_switches
    demand = np.zeros((n, n))
    np.add.at(demand, (hosts, hosts[perm]), 1.0)
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(demand=demand, kind="adversarial_matching")


def worst_case_search(
    topology: Topology,
    start: Optional[TrafficMatrix] = None,
    max_evaluations: int = 60,
    seed: SeedLike = 0,
    tolerance: float = 1e-9,
) -> AdversarialSearchResult:
    """Local search for a harder-than-longest-matching permutation TM.

    Parameters
    ----------
    topology:
        Network under attack.  Small instances only: each candidate costs an
        LP solve.
    start:
        Starting matching TM; defaults to the longest matching.  Must be a
        permutation TM over the topology's server list.
    max_evaluations:
        LP-evaluation budget for candidate swaps.
    seed:
        Drives the swap proposal order.
    """
    rng = ensure_rng(seed)
    hosts = np.repeat(np.arange(topology.n_switches), topology.servers)
    m = hosts.size
    if m < 4:
        raise ValueError("need at least 4 servers for 2-opt swaps")
    if start is None:
        start = longest_matching(topology)
    # Recover a permutation consistent with the start TM by re-deriving the
    # host-level pairing greedily from the demand matrix.
    perm = _extract_permutation(start, hosts)
    current = _matching_tm(topology, perm, hosts)
    solver = get_solver()

    def evaluate(tm: TrafficMatrix) -> float:
        # Candidates route through the ambient solver: under an experiment
        # run the search shares the run's cache/pool; standalone it degrades
        # to the historical inline solve with identical values.
        return solver.solve(SolveRequest(topology, tm, tag="adversarial")).require().value

    current_t = evaluate(current)
    start_t = current_t
    from repro.traffic.synthetic import all_to_all  # local import: no cycle

    lb = evaluate(all_to_all(topology)) / 2.0
    evals = 0
    while evals < max_evaluations:
        if current_t <= lb * (1 + 1e-6):
            break  # provably at the worst case
        i, j = rng.choice(m, size=2, replace=False)
        cand = perm.copy()
        cand[i], cand[j] = cand[j], cand[i]
        if cand[i] == i or cand[j] == j:
            continue  # would create a self pair
        cand_tm = _matching_tm(topology, cand, hosts)
        cand_t = evaluate(cand_tm)
        evals += 1
        if cand_t < current_t - tolerance:
            perm, current_t = cand, cand_t
            current = cand_tm
    return AdversarialSearchResult(
        tm=current,
        throughput=current_t,
        start_throughput=start_t,
        lower_bound=lb,
        n_evaluations=evals,
        improved=current_t < start_t - tolerance,
    )


def _extract_permutation(tm: TrafficMatrix, hosts: np.ndarray) -> np.ndarray:
    """Greedy host-level permutation consistent with a matching TM.

    For multi-server nodes any assignment of the node-level demand to
    individual servers is equivalent (they are interchangeable), so we
    distribute each D[u, v] unit to the next free server at u and v.
    """
    m = hosts.size
    node_servers: dict[int, List[int]] = {}
    for idx, node in enumerate(hosts):
        node_servers.setdefault(int(node), []).append(idx)
    free_src = {node: list(ids) for node, ids in node_servers.items()}
    free_dst = {node: list(ids) for node, ids in node_servers.items()}
    perm = np.full(m, -1, dtype=np.int64)
    src_nodes, dst_nodes, weights = tm.pairs()
    for u, v, w in zip(src_nodes, dst_nodes, weights):
        count = int(round(w))
        if abs(w - count) > 1e-9:
            raise ValueError("start TM must be an integer matching TM")
        for _ in range(count):
            if not free_src.get(int(u)) or not free_dst.get(int(v)):
                raise ValueError("start TM exceeds server budgets")
            s = free_src[int(u)].pop()
            t = free_dst[int(v)].pop()
            perm[s] = t
    if np.any(perm < 0):
        raise ValueError("start TM is not a perfect matching over the servers")
    return perm
