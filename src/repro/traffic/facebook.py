"""Facebook-cluster-shaped traffic matrices (paper §IV-B, Figs. 13-14).

Roy et al. (SIGCOMM 2015) published 24-hour inter-rack demand heatmaps for
two 64-rack Facebook clusters; the paper scraped those color-coded log-scale
plots at power-of-ten accuracy.  The raw data is not public, so — per the
substitution rule in DESIGN.md — we synthesize 64-rack matrices with the two
structural properties every Fig. 13/14 conclusion rests on:

* **TM-H** (Hadoop cluster): near-uniform weights, all in one decade.
  Shuffling rack placement is a throughput no-op.
* **TM-F** (frontend cluster): role-structured and heavily skewed — cache
  racks send/receive orders of magnitude more than web racks, quantized to
  powers of ten like the paper's plot scrape.  Shuffling helps non-expander
  topologies by spreading hot racks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int

#: Rack counts in the measured clusters.
FACEBOOK_RACKS = 64


def tm_facebook_hadoop(
    n_racks: int = FACEBOOK_RACKS, seed: SeedLike = 0
) -> TrafficMatrix:
    """Synthetic TM-H: nearly-equal inter-rack weights.

    All pairs land in the 10^2 decade; ~10% of pairs dip to 10^1, mimicking
    the mild texture of the published Hadoop heatmap.
    """
    require_positive_int(n_racks, "n_racks")
    if n_racks < 2:
        raise ValueError("need at least 2 racks")
    rng = ensure_rng(seed)
    demand = np.full((n_racks, n_racks), 100.0)
    light = rng.random((n_racks, n_racks)) < 0.10
    demand[light] = 10.0
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(
        demand=demand, kind="facebook_hadoop", meta={"n_racks": n_racks}
    )


def _frontend_roles(n_racks: int, rng: np.random.Generator) -> np.ndarray:
    """Role assignment: ~25% cache (1), ~15% misc (2), rest web (0).

    Roles are assigned in *contiguous blocks* (cache racks first), matching
    the clear banding of the published Facebook heatmaps — racks of the same
    type are physically adjacent in the measured cluster.  This is what
    makes the paper's "Sampled" placement meaningfully different from
    "Shuffled": in rack order, the hot cache racks land on adjacent
    switches.
    """
    del rng  # deterministic banding; randomness enters via shuffling only
    n_cache = max(1, int(round(n_racks * 0.25)))
    n_misc = max(1, int(round(n_racks * 0.15)))
    roles = np.zeros(n_racks, dtype=np.int64)
    roles[:n_cache] = 1
    roles[n_cache : n_cache + n_misc] = 2
    return roles


#: Power-of-ten demand decade for (src_role, dst_role); web=0, cache=1, misc=2.
_FRONTEND_DECADES = np.array(
    [
        [1, 3, 2],  # web ->  web / cache / misc
        [4, 2, 2],  # cache -> ...   (cache servers are the heavy senders)
        [2, 2, 1],  # misc -> ...
    ],
    dtype=np.float64,
)


def tm_facebook_frontend(
    n_racks: int = FACEBOOK_RACKS, seed: SeedLike = 0
) -> Tuple[TrafficMatrix, np.ndarray]:
    """Synthetic TM-F: skewed frontend-cluster demand.

    Returns the TM and the rack role vector (0=web, 1=cache, 2=misc).
    Weights are ``10**decade`` by role pair, with occasional one-decade jitter
    to mimic scrape noise; cache rows/columns dominate by 10-1000x.
    """
    require_positive_int(n_racks, "n_racks")
    if n_racks < 2:
        raise ValueError("need at least 2 racks")
    rng = ensure_rng(seed)
    roles = _frontend_roles(n_racks, rng)
    decades = _FRONTEND_DECADES[np.ix_(roles, roles)].copy()
    jitter = rng.random((n_racks, n_racks))
    decades[jitter < 0.05] -= 1.0
    demand = np.power(10.0, decades)
    np.fill_diagonal(demand, 0.0)
    tm = TrafficMatrix(
        demand=demand,
        kind="facebook_frontend",
        meta={"n_racks": n_racks, "n_cache": int((roles == 1).sum())},
    )
    return tm, roles


def attach_rack_tm(
    tm: TrafficMatrix,
    topology: Topology,
    shuffle: bool = False,
    seed: SeedLike = None,
) -> TrafficMatrix:
    """Place a rack-level TM onto a topology's server-bearing nodes.

    Downsampling (paper §IV-B): when the topology has fewer server locations
    than the TM has racks, the TM is restricted to its first ``n`` racks.
    ``shuffle=True`` randomizes the rack -> location assignment (the paper's
    "Shuffled" variant); otherwise racks map to locations in index order
    ("Sampled").  The result is hose-normalized for the topology.
    """
    hosts = topology.server_nodes
    n_hosts = hosts.size
    if n_hosts < 2:
        raise ValueError("topology has fewer than 2 server locations")
    rack_tm = tm
    if tm.n_nodes > n_hosts:
        rack_tm = tm.restricted(np.arange(n_hosts))
    rng = ensure_rng(seed)
    positions = hosts[: rack_tm.n_nodes].copy()
    if shuffle:
        positions = rng.permutation(hosts)[: rack_tm.n_nodes]
    placed = rack_tm.embedded(topology.n_switches, positions)
    placed.kind = tm.kind
    placed.meta = {**tm.meta, "shuffled": shuffle, "n_locations": int(n_hosts)}
    return placed.normalized_hose(topology.servers)
