"""Near-worst-case traffic matrices (paper §II-C).

* :func:`longest_matching` — the paper's contribution: the server pairing
  maximizing total shortest-path distance, i.e. a maximum-weight perfect
  matching on the complete bipartite distance graph, computed exactly with
  the assignment algorithm.
* :func:`kodialam_tm` — the prior heuristic of Kodialam et al.: the
  hose-feasible TM maximizing demand-weighted shortest-path distance, found
  by a transportation LP.  It may attach many fractional flows per node,
  which is exactly why the paper prefers longest matching (fewer flows,
  smaller multicommodity LP).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

# The fractional-relaxation below is an *assignment* LP over TM entries,
# not a throughput solve: no (topology, TM) instance exists to cache or
# route through the batch layer.
# repro-lint: allow[R001]
from scipy.optimize import linprog

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.matching import max_weight_assignment
from repro.utils.rng import SeedLike


def _host_distance_matrix(topology: Topology) -> tuple[np.ndarray, np.ndarray]:
    """Per-host distance matrix and the host -> switch map.

    Hosts are servers; the distance between two hosts is the switch-graph
    distance between their switches (server NIC hops are a constant offset
    that cannot change any matching).
    """
    dist = topology.compile().hop_distances()
    host_nodes = np.repeat(np.arange(topology.n_switches), topology.servers)
    return dist[np.ix_(host_nodes, host_nodes)], host_nodes


def longest_matching(
    topology: Topology, seed: SeedLike = None, spread_ties: bool = False
) -> TrafficMatrix:
    """The longest-matching near-worst-case TM.

    Each server sends one unit to, and receives one unit from, the partner
    assigned by a maximum-weight perfect matching under shortest-path
    distance (self pairs forbidden).

    Distance ties are common on symmetric graphs, and with several servers
    per switch the assignment solver's default tie-breaking concentrates a
    switch's servers onto a single partner switch — the hardest optimal
    matching.  ``spread_ties=True`` perturbs distances by a seeded amount
    strictly below the integer tie gap, which selects a *different* optimal
    matching that spreads partners across equally-far switches (closer to
    the LP-based tie-breaking of the original topobench).  Either way the
    total matched distance is exactly maximal.

    ``seed`` only matters when ``spread_ties`` is set; the default TM is
    deterministic given the topology.
    """
    from repro.utils.rng import ensure_rng

    host_dist, host_nodes = _host_distance_matrix(topology)
    m = host_dist.shape[0]
    if m < 2:
        raise ValueError("need at least 2 servers")
    if np.any(np.isinf(host_dist)):
        raise ValueError("topology is disconnected")
    if spread_ties:
        rng = ensure_rng(seed)
        # Hop distances are integers: total perturbation < 1/2 cannot change
        # which matchings are optimal, only which optimum is returned.
        host_dist = host_dist + rng.random((m, m)) / (4.0 * m)
    assignment, total = max_weight_assignment(host_dist, forbid_diagonal=True)
    n = topology.n_switches
    demand = np.zeros((n, n), dtype=np.float64)
    np.add.at(demand, (host_nodes, host_nodes[assignment]), 1.0)
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(
        demand=demand,
        kind="longest_matching",
        meta={
            "n_servers": int(m),
            "matching_total_distance": float(round(total)),
            "matching_mean_distance": float(round(total) / m),
            "spread_ties": spread_ties,
        },
    )


def kodialam_tm(topology: Topology) -> TrafficMatrix:
    """The Kodialam et al. near-worst-case TM via a transportation LP.

    maximize    sum_{u != v} dist(u, v) * T(u, v)
    subject to  per-server egress(u) <= 1,  ingress(v) <= 1,  T >= 0

    Solved over switch-level variables with row/column budgets equal to the
    node server counts.  Vertex solutions coincide with longest matching on
    many symmetric graphs (the paper observes they are identical on
    hypercubes and fat trees); interior ties may yield fractional, many-flow
    solutions — the behavior the paper's memory comparison highlights.
    """
    dist = topology.compile().hop_distances()
    if np.any(np.isinf(dist)):
        raise ValueError("topology is disconnected")
    n = topology.n_switches
    a = topology.servers.astype(np.float64)
    active = np.flatnonzero(a > 0)
    k = active.size
    if k < 2:
        raise ValueError("need at least 2 server-bearing nodes")
    # Variables: T[i, j] over active x active, i != j, flattened row-major.
    sub_dist = dist[np.ix_(active, active)]
    c = -(sub_dist.flatten())  # maximize => negate
    # Row constraints: sum_j T[i, j] <= a[active[i]]; column likewise.
    n_var = k * k
    row_idx = np.repeat(np.arange(k), k)
    col_idx = np.tile(np.arange(k), k)
    data = np.ones(n_var)
    A_rows = sp.coo_matrix((data, (row_idx, np.arange(n_var))), shape=(k, n_var))
    A_cols = sp.coo_matrix((data, (col_idx, np.arange(n_var))), shape=(k, n_var))
    A_ub = sp.vstack([A_rows, A_cols]).tocsc()
    b_ub = np.concatenate([a[active], a[active]])
    # Forbid the diagonal by zero upper bounds.
    ub = np.full(n_var, np.inf)
    ub[np.arange(k) * k + np.arange(k)] = 0.0
    # repro-lint: allow[R001] — assignment-relaxation LP, not a throughput solve
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=list(zip(np.zeros(n_var), ub)),
        method="highs",
    )
    if not res.success:  # pragma: no cover - solver failure is exceptional
        raise RuntimeError(f"Kodialam LP failed: {res.message}")
    T_sub = np.maximum(res.x.reshape(k, k), 0.0)
    # Numerical dust breaks the zero-diagonal invariant; clear it.
    np.fill_diagonal(T_sub, 0.0)
    demand = np.zeros((n, n), dtype=np.float64)
    demand[np.ix_(active, active)] = T_sub
    return TrafficMatrix(
        demand=demand,
        kind="kodialam",
        meta={"objective_total_distance": float(-res.fun)},
    )
