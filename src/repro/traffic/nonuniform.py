"""Non-uniform (elephant-flow) traffic matrices (paper §IV-A2, Figs. 10-12).

Starting from the longest-matching TM, a random x% of flows get weight 10
while the rest keep weight 1; the result is normalized so the *mean* flow
weight is 1.  This is the normalization under which the paper's stated
identity holds — "the relative throughput at 0% ... will be equal to that at
100% since all flows are scaled by the same factor" — both endpoints recover
the longest-matching TM exactly.  Elephants therefore exceed the per-server
hose budget by design (a weight-~9 flow from a 1-server node); the fat-tree
ToR anomaly of Fig. 12 is precisely the response to that overload.
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.worstcase import longest_matching
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_in_range


def elephant_matching(
    topology: Topology,
    percent_large: float,
    large_weight: float = 10.0,
    seed: SeedLike = None,
) -> TrafficMatrix:
    """Longest-matching TM with ``percent_large``% elephant flows.

    Parameters
    ----------
    topology:
        Network to generate for.
    percent_large:
        Percentage (0-100) of matching flows upgraded to ``large_weight``.
        The count is rounded to the nearest flow, with at least one elephant
        whenever ``percent_large > 0``.
    large_weight:
        Demand of an elephant relative to a mouse (paper uses 10).
    seed:
        Selects *which* flows become elephants.
    """
    require_in_range(percent_large, "percent_large", 0.0, 100.0)
    if large_weight <= 0:
        raise ValueError(f"large_weight must be positive, got {large_weight}")
    rng = ensure_rng(seed)
    base = longest_matching(topology)
    src, dst, w = base.pairs()
    demand = np.zeros_like(base.demand)
    demand[src, dst] = w  # mice weight = aggregated matching weight
    if percent_large > 0:
        n_flows = src.size
        n_large = max(1, int(round(n_flows * percent_large / 100.0)))
        n_large = min(n_large, n_flows)
        pick = rng.choice(n_flows, size=n_large, replace=False)
        demand[src[pick], dst[pick]] = w[pick] * large_weight
    # Mean-weight normalization: total demand equals the base matching's, so
    # x = 0 and x = 100 reproduce longest matching exactly.
    demand *= base.total_demand() / demand.sum()
    return TrafficMatrix(
        demand=demand,
        kind="elephant_matching",
        meta={
            "percent_large": float(percent_large),
            "large_weight": float(large_weight),
            "normalization": "mean_weight_1",
        },
    )
