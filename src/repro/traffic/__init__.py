"""Traffic matrix generators: synthetic, near-worst-case, and real-world-shaped."""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all, random_matching, random_permutation_tm
from repro.traffic.worstcase import kodialam_tm, longest_matching
from repro.traffic.nonuniform import elephant_matching
from repro.traffic.facebook import (
    FACEBOOK_RACKS,
    attach_rack_tm,
    tm_facebook_frontend,
    tm_facebook_hadoop,
)
from repro.traffic.adversarial import AdversarialSearchResult, worst_case_search

__all__ = [
    "TrafficMatrix",
    "all_to_all",
    "random_matching",
    "random_permutation_tm",
    "kodialam_tm",
    "longest_matching",
    "elephant_matching",
    "FACEBOOK_RACKS",
    "attach_rack_tm",
    "tm_facebook_frontend",
    "tm_facebook_hadoop",
    "AdversarialSearchResult",
    "worst_case_search",
]
