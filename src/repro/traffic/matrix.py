"""Switch-level traffic matrices.

A :class:`TrafficMatrix` stores demand between *switching nodes* of a
topology.  Server-level demands aggregate losslessly to switch level because
server links are infinite-capacity (paper §II-A: "our traffic matrices
effectively encode switch-to-switch traffic"); intra-switch demands are
dropped for the same reason.

Hose normalization is per server: every server sends at most 1 and receives
at most 1 unit, so node u's row sum may not exceed ``servers[u]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

#: Relative tolerance used for hose checks (LP solves are ~1e-9 accurate).
HOSE_RTOL = 1e-9


@dataclass
class TrafficMatrix:
    """Demand between switch nodes.

    Attributes
    ----------
    demand:
        Dense (n, n) float array; ``demand[u, v]`` is the requested rate from
        servers at node u to servers at node v.  The diagonal must be zero.
    kind:
        Generator name for provenance (e.g. ``"all_to_all"``).
    meta:
        Generator parameters.
    """

    demand: np.ndarray
    kind: str = "custom"
    meta: Dict[str, Any] = field(default_factory=dict)
    _digest: Optional[str] = field(default=None, repr=False, compare=False)
    _sparsity_digest: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.demand = np.asarray(self.demand, dtype=np.float64)
        if self.demand.ndim != 2 or self.demand.shape[0] != self.demand.shape[1]:
            raise ValueError(f"demand must be square, got {self.demand.shape}")
        if np.any(self.demand < 0):
            raise ValueError("demands must be non-negative")
        if np.any(np.diag(self.demand) != 0):
            raise ValueError("diagonal (intra-node) demands must be zero")

    # ------------------------------------------------------------------ views
    @property
    def n_nodes(self) -> int:
        return self.demand.shape[0]

    def pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Nonzero demands as ``(sources, destinations, weights)`` arrays."""
        src, dst = np.nonzero(self.demand)
        return src, dst, self.demand[src, dst]

    @property
    def n_flows(self) -> int:
        """Number of nonzero demand pairs."""
        return int(np.count_nonzero(self.demand))

    def row_sums(self) -> np.ndarray:
        return self.demand.sum(axis=1)

    def col_sums(self) -> np.ndarray:
        return self.demand.sum(axis=0)

    def total_demand(self) -> float:
        return float(self.demand.sum())

    def content_digest(self) -> str:
        """SHA-256 digest of the numerical demand content (cached).

        Covers the node count and the nonzero ``(src, dst, demand)``
        triples in row-major order — exactly what the solvers consume, so
        two matrices share a digest iff they describe the same instance
        (``kind`` and ``meta`` provenance excluded).  Computed once; the
        batch layer's :func:`repro.batch.jobs.instance_key` builds on it.
        Mutating ``demand`` after first use is unsupported (matrices are
        immutable by convention — transforms return copies).
        """
        if self._digest is None:
            src, dst, weights = self.pairs()
            h = hashlib.sha256()
            h.update(b"repro-tm-v1")
            h.update(b"\x00n\x00" + str(self.n_nodes).encode())
            h.update(np.ascontiguousarray(src, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(dst, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def sparsity_digest(self) -> str:
        """SHA-256 digest of the demand *sparsity pattern* only (cached).

        Covers the node count and the nonzero ``(src, dst)`` positions in
        row-major order — deliberately **not** the demand values.  This is
        the TM component of the compiled-LP-model key
        (:mod:`repro.throughput.modelcache`): every instance sharing a
        pattern shares a constraint-matrix skeleton, whatever its
        magnitudes.  Never a cache-key input for *results* — value-blind
        digests cannot distinguish numerically different instances.
        """
        if self._sparsity_digest is None:
            src, dst = np.nonzero(self.demand)
            h = hashlib.sha256()
            h.update(b"repro-tm-sparsity-v1")
            h.update(b"\x00n\x00" + str(self.n_nodes).encode())
            h.update(np.ascontiguousarray(src, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(dst, dtype=np.int64).tobytes())
            self._sparsity_digest = h.hexdigest()
        return self._sparsity_digest

    # ----------------------------------------------------------- hose algebra
    def hose_utilization(self, servers: np.ndarray) -> float:
        """Max over nodes of (egress or ingress demand) / servers.

        1.0 means hose-tight; > 1 violates the hose model.  Nodes with zero
        servers must have zero demand (else ``inf``).
        """
        servers = np.asarray(servers, dtype=np.float64)
        if servers.shape != (self.n_nodes,):
            raise ValueError("servers array shape mismatch")
        rows = self.row_sums()
        cols = self.col_sums()
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(rows > 0, rows / servers, 0.0)
            c = np.where(cols > 0, cols / servers, 0.0)
        worst = max(float(np.max(r, initial=0.0)), float(np.max(c, initial=0.0)))
        return worst

    def is_hose(self, servers: np.ndarray) -> bool:
        """True when per-server egress and ingress are both <= 1."""
        return self.hose_utilization(servers) <= 1.0 + HOSE_RTOL

    def normalized_hose(self, servers: np.ndarray) -> "TrafficMatrix":
        """Rescaled copy whose worst per-server rate is exactly 1.

        The paper's throughput definition rescales the TM anyway, so this
        only fixes the unit in which throughput is reported.
        """
        util = self.hose_utilization(servers)
        if util == 0.0:
            raise ValueError("cannot hose-normalize an all-zero traffic matrix")
        if not np.isfinite(util):
            raise ValueError("demand from a node with zero servers")
        return TrafficMatrix(
            demand=self.demand / util,
            kind=self.kind,
            meta={**self.meta, "hose_normalized": True},
        )

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle sparse demand as nonzero triples (exact round trip).

        Sweep TMs are mostly matchings — O(n) nonzeros in an O(n^2) dense
        block — and every pool-worker payload carries one, so the wire
        form switches to ``(n, src, dst, weights)`` whenever the triples
        are smaller.  Values are the same float64 bits, so the rebuilt
        matrix is numerically identical and keeps the cached digest.
        """
        state = dict(self.__dict__)
        d = self.demand
        if d.ndim == 2 and np.count_nonzero(d) * 3 < d.size:
            src, dst = np.nonzero(d)
            state["demand"] = (
                "coo-v1",
                d.shape[0],
                src.astype(np.int64),
                dst.astype(np.int64),
                np.ascontiguousarray(d[src, dst], dtype=np.float64),
            )
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        demand = state.get("demand")
        if isinstance(demand, tuple) and demand and demand[0] == "coo-v1":
            _, n, src, dst, weights = demand
            dense = np.zeros((n, n), dtype=np.float64)
            dense[src, dst] = weights
            state = {**state, "demand": dense}
        self.__dict__.update(state)

    # ------------------------------------------------------------ transforms
    def scaled(self, factor: float) -> "TrafficMatrix":
        """Copy with every demand multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return TrafficMatrix(
            demand=self.demand * factor, kind=self.kind, meta=dict(self.meta)
        )

    def shuffled(self, seed: SeedLike = None) -> "TrafficMatrix":
        """Copy with node identities permuted uniformly at random.

        This is the paper's rack-placement randomization (Figs. 13-14): the
        demand *structure* is unchanged, but which physical node plays which
        role is random.
        """
        rng = ensure_rng(seed)
        perm = rng.permutation(self.n_nodes)
        new = np.zeros_like(self.demand)
        new[np.ix_(perm, perm)] = self.demand
        return TrafficMatrix(
            demand=new, kind=self.kind, meta={**self.meta, "shuffled": True}
        )

    def permuted(self, perm: np.ndarray) -> "TrafficMatrix":
        """Copy with an explicit node permutation applied (role r -> node perm[r])."""
        perm = np.asarray(perm)
        if sorted(perm.tolist()) != list(range(self.n_nodes)):
            raise ValueError("perm must be a permutation of 0..n-1")
        new = np.zeros_like(self.demand)
        new[np.ix_(perm, perm)] = self.demand
        return TrafficMatrix(demand=new, kind=self.kind, meta=dict(self.meta))

    def embedded(self, n_nodes: int, positions: np.ndarray) -> "TrafficMatrix":
        """Embed this TM into a larger node space.

        Row/column r of this matrix is placed at node ``positions[r]``; all
        other nodes get zero demand.  Used to attach a rack-level TM to a
        topology's server-bearing nodes.
        """
        positions = np.asarray(positions)
        if positions.shape != (self.n_nodes,):
            raise ValueError("positions must have one entry per TM node")
        if len(set(positions.tolist())) != self.n_nodes:
            raise ValueError("positions must be distinct")
        if np.any(positions < 0) or np.any(positions >= n_nodes):
            raise ValueError("positions out of range")
        new = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        new[np.ix_(positions, positions)] = self.demand
        return TrafficMatrix(
            demand=new,
            kind=self.kind,
            meta={**self.meta, "embedded_into": n_nodes},
        )

    def restricted(self, nodes: np.ndarray) -> "TrafficMatrix":
        """Sub-TM on the given node subset (downsampling; paper §IV-B)."""
        nodes = np.asarray(nodes)
        sub = self.demand[np.ix_(nodes, nodes)].copy()
        return TrafficMatrix(
            demand=sub,
            kind=self.kind,
            meta={**self.meta, "downsampled_to": int(nodes.size)},
        )

    def demand_weighted_distance(self, dist: np.ndarray) -> float:
        """Average path length weighted by demand (used by Kodialam analysis)."""
        total = self.total_demand()
        if total == 0:
            raise ValueError("empty traffic matrix")
        finite = np.where(np.isfinite(dist), dist, 0.0)
        return float((self.demand * finite).sum() / total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficMatrix(kind={self.kind!r}, nodes={self.n_nodes}, "
            f"flows={self.n_flows}, total={self.total_demand():.3f})"
        )
