"""Orchestration: run the rules over a tree and settle against the baseline.

:func:`run_lint` is the single entry point the CLI, the tests, and CI all
use: build the :class:`~repro.lint.model.ProjectModel`, run the selected
rules, drop suppressed findings (``# repro-lint: allow[RULE]``), and
partition the rest against the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.lint import purity as _purity  # noqa: F401  (registers R001-R005)
from repro.lint import registry as _registry  # noqa: F401  (registers R006)
from repro.lint.baseline import BASELINE_FILENAME, BaselineEntry, load_baseline, partition
from repro.lint.model import ProjectModel
from repro.lint.rules import Finding, select_rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)  # new (fail the run)
    grandfathered: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    baseline_path: Optional[Path] = None  # resolved baseline location

    @property
    def clean(self) -> bool:
        """True when the run passes against the baseline."""
        return not self.findings and not self.stale


def default_paths() -> List[Path]:
    """The source tree to lint: ``src/`` from the repo root when present,
    else the installed ``repro`` package's own directory."""
    src = Path("src")
    if (src / "repro").is_dir():
        return [src]
    return [Path(__file__).resolve().parents[1]]


def run_lint(
    paths: Optional[Sequence[Union[Path, str]]] = None,
    rules: Optional[List[str]] = None,
    baseline: Optional[Union[Path, str]] = None,
    project_root: Optional[Union[Path, str]] = None,
) -> LintResult:
    """Lint ``paths`` (default: the repo's ``src/``) with ``rules`` (default:
    all), settling findings against ``baseline``.

    ``baseline`` defaults to ``reprolint-baseline.json`` in the discovered
    project root; pass an explicit path to pin it, or a path to a missing
    file for an empty baseline.
    """
    lint_paths = [Path(p) for p in paths] if paths else default_paths()
    project = ProjectModel.from_paths(lint_paths, project_root=project_root)
    selected = select_rules(rules)

    raw: List[Finding] = [
        Finding(path=rel, line=line, rule="E999", message=f"syntax error: {msg}")
        for rel, line, msg in project.parse_errors
    ]
    for rule in selected:
        raw.extend(rule.check(project))

    by_path = {module.relpath: module for module in project.modules}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()

    if baseline is None:
        baseline_path: Path = project.root / BASELINE_FILENAME
    else:
        baseline_path = Path(baseline)
    entries = load_baseline(baseline_path)
    active = [rule.id for rule in selected]
    if rules is None:
        active.append("E999")
    new, grandfathered, stale = partition(kept, entries, active_rules=active)

    return LintResult(
        findings=new,
        grandfathered=grandfathered,
        stale=stale,
        suppressed=suppressed,
        files_checked=len(project.modules) + len(project.parse_errors),
        rules_run=[rule.id for rule in selected],
        baseline_path=baseline_path,
    )
