"""Reporters and exit codes for ``repro lint``.

Text output is one ``path:line:col: RULE message`` line per finding (the
format editors and CI log scrapers already understand), followed by a
summary.  JSON output is a single stable document that round-trips back
into :class:`~repro.lint.rules.Finding` objects via
:func:`findings_from_json`, so tooling can consume lint results without
parsing text.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List

from repro.lint.rules import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.runner import LintResult

JSON_VERSION = 1


def exit_code(result: "LintResult") -> int:
    """0 = clean against the baseline; 1 = new findings or stale entries."""
    return 1 if (result.findings or result.stale) else 0


def _finding_doc(finding: Finding) -> dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
    }


def render_json(result: "LintResult") -> str:
    """The machine-readable report (stable key order, newline-terminated)."""
    doc = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "rules": result.rules_run,
        "findings": [_finding_doc(f) for f in result.findings],
        "grandfathered": [_finding_doc(f) for f in result.grandfathered],
        "stale_baseline": [
            {"rule": e.rule, "path": e.path, "message": e.message}
            for e in result.stale
        ],
        "suppressed": result.suppressed,
        "exit_code": exit_code(result),
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def findings_from_json(text: str) -> List[Finding]:
    """Reconstruct the new-finding list from a :func:`render_json` document."""
    doc = json.loads(text)
    if doc.get("version") != JSON_VERSION:
        raise ValueError(f"unsupported lint JSON version {doc.get('version')!r}")
    return [
        Finding(
            path=entry["path"],
            line=entry["line"],
            col=entry["col"],
            rule=entry["rule"],
            message=entry["message"],
        )
        for entry in doc["findings"]
    ]


def render_text(result: "LintResult") -> str:
    """Human-readable report: findings, stale entries, then a summary line."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for entry in result.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path}: "
            f"{entry.message} (no longer fires; remove it from the baseline)"
        )
    summary = (
        f"repro lint: {len(result.findings)} finding(s), "
        f"{len(result.grandfathered)} grandfathered, "
        f"{result.suppressed} suppressed, "
        f"{len(result.stale)} stale baseline entr(ies) "
        f"across {result.files_checked} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"
