"""Cross-file rule R006: registry coverage and uniqueness.

The experiment registry (PR 3) only works if every experiment module
actually registers: a module under ``repro/evaluation/experiments/`` that
defines no ``@experiment`` spec, or is not imported by the package
``__init__``, silently vanishes from ``repro list`` / ``repro all`` — the
exact failure mode the registry was built to prevent.  Registered names
must also be unique (a duplicate id silently shadows an earlier
experiment) and documented (EXPERIMENTS.md is generated, so an id missing
from it means the committed docs are stale).

The same uniqueness logic covers the engine tuple
(``repro.batch.jobs.BATCH_ENGINES``) and the LP-backend registrations
(``repro.throughput.backends``): duplicate names there silently shadow.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.lint.model import ModuleInfo, ProjectModel
from repro.lint.rules import Finding, Rule, register

#: The experiment package every spec must live in.
EXPERIMENT_PACKAGE = "repro.evaluation.experiments"


def _experiment_ids(module: ModuleInfo) -> List[Tuple[str, int]]:
    """(experiment id, line) for every ``@experiment("id", ...)`` in a module."""
    found: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            resolved = module.resolve(decorator.func) or ""
            if resolved.rsplit(".", 1)[-1] != "experiment":
                continue
            if decorator.args and isinstance(decorator.args[0], ast.Constant):
                value = decorator.args[0].value
                if isinstance(value, str):
                    found.append((value, decorator.lineno))
    return found


@register
class RegistryCoverageRule(Rule):
    id = "R006"
    title = "registry-coverage"
    rationale = (
        "an experiment module that does not register (or is not imported by "
        "the package __init__) silently vanishes from repro list/all; "
        "duplicate registry names silently shadow"
    )

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        yield from self._check_experiments(project)
        yield from self._check_engines(project)
        yield from self._check_backends(project)

    # ------------------------------------------------ experiment modules

    def _check_experiments(self, project: ProjectModel) -> Iterator[Finding]:
        package_init = project.module_named(EXPERIMENT_PACKAGE)
        members = [
            mod
            for mod in project.modules
            if mod.module.startswith(EXPERIMENT_PACKAGE + ".")
        ]
        init_imports: set = set()
        if package_init is not None:
            for node in ast.walk(package_init.tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    base = node.module
                    if node.level:  # from .mod import f inside the package
                        base = f"{EXPERIMENT_PACKAGE}.{node.module}"
                    init_imports.add(base)
                    for alias in node.names:
                        init_imports.add(f"{base}.{alias.name}")
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        init_imports.add(alias.name)
        seen_ids: Dict[str, Tuple[str, int]] = {}
        docs = project.doc("EXPERIMENTS.md")
        for mod in members:
            ids = _experiment_ids(mod)
            if not ids:
                yield self.finding(
                    mod,
                    1,
                    "experiment module defines no @experiment spec; register "
                    "one or move the helpers out of the experiments package",
                )
                continue
            if package_init is not None and mod.module not in init_imports:
                yield self.finding(
                    mod,
                    1,
                    f"'{mod.module}' is not imported by the experiments "
                    "package __init__, so its specs never reach the registry",
                )
            for exp_id, line in ids:
                if exp_id in seen_ids:
                    first_path, first_line = seen_ids[exp_id]
                    yield self.finding(
                        mod,
                        line,
                        f"duplicate experiment id '{exp_id}' (first "
                        f"registered at {first_path}:{first_line}) silently "
                        "shadows the earlier registration",
                    )
                else:
                    seen_ids[exp_id] = (mod.relpath, line)
                if docs is not None and f"`{exp_id}`" not in docs:
                    yield self.finding(
                        mod,
                        line,
                        f"experiment id '{exp_id}' is missing from "
                        "EXPERIMENTS.md; regenerate it with "
                        "'repro list --markdown'",
                    )

    # ------------------------------------------------ engine registry

    def _check_engines(self, project: ProjectModel) -> Iterator[Finding]:
        jobs = project.module_named("repro.batch.jobs")
        if jobs is None:
            return
        for node in ast.walk(jobs.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "BATCH_ENGINES" not in targets:
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                seen: set = set()
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        if element.value in seen:
                            yield self.finding(
                                jobs,
                                element.lineno,
                                f"duplicate engine name '{element.value}' "
                                "in BATCH_ENGINES",
                            )
                        seen.add(element.value)

    # ------------------------------------------------ LP backend registry

    def _check_backends(self, project: ProjectModel) -> Iterator[Finding]:
        backends = project.module_named("repro.throughput.backends")
        if backends is None:
            return
        seen: Dict[str, int] = {}
        for node in ast.walk(backends.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = backends.resolve(node.func) or ""
            if resolved.rsplit(".", 1)[-1] != "register_lp_backend":
                continue
            for name, line in _backend_names(node):
                if name in seen:
                    yield self.finding(
                        backends,
                        line,
                        f"duplicate LP backend name '{name}' (first "
                        f"registered at line {seen[name]}) silently shadows "
                        "the earlier registration",
                    )
                else:
                    seen[name] = line


def _backend_names(call: ast.Call) -> Iterator[Tuple[str, int]]:
    """String ``name=...`` kwargs anywhere inside a registration call."""
    for node in ast.walk(call):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if (
                    keyword.arg == "name"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    yield keyword.value.value, keyword.value.lineno
