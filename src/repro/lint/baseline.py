"""Committed baseline of grandfathered lint findings.

A baseline entry records a finding we have decided to live with (with a
justification), identified by its line-independent fingerprint
(rule + file + message) so unrelated edits don't invalidate it.  The
runner partitions current findings into *new* (fail the run),
*grandfathered* (matched an entry), and reports *stale* entries (match
nothing any more — the debt was paid, so the baseline must be trimmed;
CI fails on stale entries the same way the docs jobs fail on drift).

The file is plain sorted JSON (``reprolint-baseline.json`` at the repo
root) so diffs review like code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.rules import Finding

#: Default baseline filename, resolved against the project root.
BASELINE_FILENAME = "reprolint-baseline.json"

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    message: str
    justification: str = ""

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"


def load_baseline(path: Path | str) -> List[BaselineEntry]:
    """Entries from ``path`` (an absent file is an empty baseline)."""
    path = Path(path)
    if not path.is_file():
        return []
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    return [
        BaselineEntry(
            rule=entry["rule"],
            path=entry["path"],
            message=entry["message"],
            justification=entry.get("justification", ""),
        )
        for entry in doc.get("entries", [])
    ]


def save_baseline(
    path: Path | str,
    findings: Iterable[Finding],
    justifications: Optional[dict] = None,
) -> int:
    """Write ``findings`` as the new baseline; returns the entry count.

    ``justifications`` maps fingerprints to justification strings; existing
    justifications are preserved by the caller passing them through.
    """
    justifications = justifications or {}
    entries = sorted(
        {
            (f.rule, f.path, f.message)
            for f in findings
        }
    )
    doc = {
        "version": _VERSION,
        "entries": [
            {
                "rule": rule,
                "path": rel,
                "message": message,
                "justification": justifications.get(
                    f"{rule}::{rel}::{message}", ""
                ),
            }
            for rule, rel, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(doc["entries"])


def partition(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    active_rules: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new, grandfathered, stale_entries)``.  Stale detection is
    restricted to ``active_rules`` (when a ``--rule`` filter ran, entries
    for unselected rules are not stale — they simply were not checked).
    """
    known = {entry.fingerprint for entry in entries}
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched: set = set()
    for finding in findings:
        if finding.fingerprint in known:
            grandfathered.append(finding)
            matched.add(finding.fingerprint)
        else:
            new.append(finding)
    stale = [
        entry
        for entry in entries
        if entry.fingerprint not in matched
        and (active_rules is None or entry.rule in active_rules)
    ]
    return new, grandfathered, stale
