"""``repro.lint`` — AST-based checker for the repo's whole-program invariants.

The scaling layers (batch cache, engine registry, what-if bounds) rest on
invariants no unit test can see whole: every solve routed through the
ambient :class:`~repro.batch.solver.BatchSolver`, every result-affecting
knob frozen into the cache key, all randomness derived from
``stable_seed``/``ensure_rng``.  Each has been broken and re-fixed by hand
at least once (see DESIGN.md "Static invariants"); this package enforces
them statically, over the source AST, so regressions fail in CI instead
of poisoning shared caches.

Use it from the CLI (``repro lint [--format json] [--rule R00x]``) or
programmatically::

    from repro.lint import run_lint
    result = run_lint(["src"])
    assert result.clean, result.findings

Findings can be suppressed per line (``# repro-lint: allow[R001]`` with a
justification in the comment) or grandfathered in the committed baseline
file (``reprolint-baseline.json``); stale baseline entries fail the run
so paid-off debt cannot linger.
"""

from repro.lint.baseline import (
    BASELINE_FILENAME,
    BaselineEntry,
    load_baseline,
    save_baseline,
)
from repro.lint.model import ModuleInfo, ProjectModel
from repro.lint.report import (
    exit_code,
    findings_from_json,
    render_json,
    render_text,
)
from repro.lint.rules import RULES, Finding, Rule, all_rules, select_rules
from repro.lint.runner import LintResult, default_paths, run_lint

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "all_rules",
    "select_rules",
    "ProjectModel",
    "ModuleInfo",
    "LintResult",
    "run_lint",
    "default_paths",
    "BaselineEntry",
    "BASELINE_FILENAME",
    "load_baseline",
    "save_baseline",
    "render_text",
    "render_json",
    "findings_from_json",
    "exit_code",
]
