"""Per-module invariant rules R001–R005 and R007.

Each rule encodes a bug class this repo has actually shipped (see the
"Static invariants" section of DESIGN.md for the history):

* **R001 solver-bypass** — direct calls to the LP/MWU/sharded engine
  entrypoints outside the throughput/batch layers skip the ambient
  :class:`~repro.batch.solver.BatchSolver`, so they are invisible to the
  result cache, the ``--engine`` override, and batch stats (the PR 4
  ``--engine`` silent no-op was this shape).
* **R002 unseeded-rng** — randomness not derived from
  ``ensure_rng``/``stable_seed`` (unseeded ``default_rng()``, legacy
  ``np.random.*`` global state, stdlib ``random``) breaks bit-identical
  reruns and cross-process determinism.
* **R003 stray-env-knob** — ``os.environ`` reads outside
  :mod:`repro.utils.envknobs` are undeclared knobs; a result-affecting one
  that is not frozen into cache keys poisons shared caches (the PR 5
  backend-missing-from-key bug).
* **R004 seed-dependent-hash** — builtin ``hash()`` is salted per process
  (``PYTHONHASHSEED``) and ``id()`` is address-dependent; either one
  feeding a key, digest, or sort order breaks cross-process determinism
  (``stable_seed`` exists precisely because of this).
* **R005 networkx-in-hot-path** — ``repro.core``/``repro.batch``/
  ``repro.whatif``/``repro.service``/``repro.sim`` are ArcGraph-native
  per PR 5 (the simulator's allocator loop per PR 9): a networkx import
  there reintroduces graph-walk costs and fat pool payloads on the hot
  path (and, for the service, in every request).
* **R007 modelcache-in-key** — the compiled LP model cache
  (:mod:`repro.throughput.modelcache`) is an *accelerator*: skeletons,
  skeleton keys, and hit/miss state are derived from an instance, never
  part of its identity.  Anything modelcache-derived feeding
  ``instance_key`` (or any key/digest construction) would make result
  cache keys depend on per-process cache state — the same poisoned-key
  shape as the PR 5 backend bug, but sneakier because a skeleton *looks*
  deterministic.

(R006 registry-coverage is cross-file and lives in
:mod:`repro.lint.registry`.)
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.lint.model import ModuleInfo, ProjectModel
from repro.lint.rules import Finding, Rule, register

# --------------------------------------------------------------- R001


@register
class SolverBypassRule(Rule):
    id = "R001"
    title = "solver-bypass"
    rationale = (
        "every solve must route through the ambient BatchSolver so caching, "
        "pooling, --engine overrides, and batch stats see it"
    )

    #: Engine entrypoints (and raw LP access) only the throughput/batch
    #: layers may touch.
    BANNED = {
        "repro.throughput.lp.solve_throughput_lp",
        "repro.throughput.approx.solve_throughput_mwu",
        "repro.throughput.sharded.solve_throughput_sharded",
        "repro.sim.engine.solve_throughput_sim",
        "repro.batch.solver._solve_local",
        "scipy.optimize.linprog",
    }

    #: Module prefixes allowed to call engine internals directly.  The
    #: simulator package hosts the ``sim`` engine entrypoint, so it sits
    #: with the other engine layers here.
    ALLOWED_PREFIXES = (
        "repro.throughput",
        "repro.batch",
        "repro.lint",
        "repro.sim",
    )

    def _exempt(self, module: ModuleInfo) -> bool:
        if not module.module.startswith("repro"):
            return False  # fixture trees still lint
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in self.ALLOWED_PREFIXES
        )

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        if self._exempt(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    qualified = f"{node.module}.{alias.name}"
                    if qualified in self.BANNED:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"imports engine internal '{qualified}'; route "
                            "solves through the ambient BatchSolver "
                            "(repro.batch.context) instead",
                            node.col_offset,
                        )
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved in self.BANNED:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"calls engine internal '{resolved}'; route solves "
                        "through the ambient BatchSolver "
                        "(repro.batch.context) instead",
                        node.col_offset,
                    )


# --------------------------------------------------------------- R002


@register
class UnseededRngRule(Rule):
    id = "R002"
    title = "unseeded-rng"
    rationale = (
        "all randomness must derive from ensure_rng/stable_seed so a single "
        "master seed reproduces every artifact bit-identically"
    )

    #: numpy.random attributes that are part of the seeded-Generator API.
    ALLOWED_NP_RANDOM = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }

    #: The seed-discipline module itself (it wraps default_rng).
    EXEMPT_MODULES = {"repro.utils.rng"}

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        if module.module in self.EXEMPT_MODULES:
            return
        stdlib_random = module.aliases.get("random") == "random"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    module,
                    node.lineno,
                    "imports from the stdlib 'random' module (global, "
                    "unseedable per-run state); use repro.utils.rng."
                    "ensure_rng / stable_seed",
                    node.col_offset,
                )
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved is None:
                    continue
                if resolved == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        "unseeded numpy.random.default_rng() draws OS "
                        "entropy; take a seed and pass it through "
                        "repro.utils.rng.ensure_rng",
                        node.col_offset,
                    )
                elif resolved.startswith("numpy.random."):
                    attr = resolved.rsplit(".", 1)[1]
                    if attr not in self.ALLOWED_NP_RANDOM:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"legacy numpy.random.{attr} uses hidden global "
                            "state; use a Generator from "
                            "repro.utils.rng.ensure_rng",
                            node.col_offset,
                        )
                elif stdlib_random and resolved.startswith("random."):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"stdlib '{resolved}' uses global, unseedable "
                        "per-run state; use repro.utils.rng.ensure_rng",
                        node.col_offset,
                    )


# --------------------------------------------------------------- R003


@register
class StrayEnvKnobRule(Rule):
    id = "R003"
    title = "stray-env-knob"
    rationale = (
        "env knobs are declared once in repro.utils.envknobs; an ad-hoc "
        "os.environ read that changes solve output is a cache-key hazard"
    )

    #: The one module allowed to touch the process environment.
    WHITELIST = {"repro.utils.envknobs"}

    _BANNED_CALLS = {"os.getenv", "os.putenv", "os.unsetenv"}

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        if module.module in self.WHITELIST:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                resolved = module.resolve(node)
                if resolved in ("os.environ", "os.environb"):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"reads {resolved} directly; declare the knob in "
                        "repro.utils.envknobs.KNOBS and use its accessors",
                        node.col_offset,
                    )
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved in self._BANNED_CALLS:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"calls {resolved}; declare the knob in "
                        "repro.utils.envknobs.KNOBS and use its accessors",
                        node.col_offset,
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in ("environ", "environb", "getenv", "putenv"):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"imports os.{alias.name}; declare the knob in "
                            "repro.utils.envknobs.KNOBS and use its accessors",
                            node.col_offset,
                        )


# --------------------------------------------------------------- R004


_HASHY_NAME = re.compile(r"(key|digest|hash|seed|fingerprint)", re.IGNORECASE)


@register
class SeedDependentHashRule(Rule):
    id = "R004"
    title = "seed-dependent-hash"
    rationale = (
        "builtin hash() is salted per process (PYTHONHASHSEED) and id() is "
        "address-dependent; neither may feed keys, digests, or sort orders"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()

        def emit(node: ast.AST, message: str) -> Iterator[Finding]:
            spot = (node.lineno, node.col_offset)
            if spot not in seen:
                seen.add(spot)
                yield self.finding(module, node.lineno, message, node.col_offset)

        def id_calls(subtree: ast.AST) -> Iterator[ast.Call]:
            for sub in ast.walk(subtree):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    and sub.func.id not in module.aliases
                ):
                    yield sub

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "hash"
                    and "hash" not in module.aliases
                ):
                    yield from emit(
                        node,
                        "builtin hash() is salted per process "
                        "(PYTHONHASHSEED); use repro.utils.rng.stable_seed "
                        "or hashlib",
                    )
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in ("id", "hash")
                    ):
                        yield from emit(
                            keyword.value,
                            f"sorts/keys by builtin {keyword.value.id}(), "
                            "which is process-dependent; key on stable "
                            "content instead",
                        )
                resolved = module.resolve(node.func)
                if resolved is not None and _HASHY_NAME.search(
                    resolved.rsplit(".", 1)[-1]
                ):
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for call in id_calls(arg):
                            yield from emit(
                                call,
                                "id() is address-dependent and must not "
                                f"feed '{resolved}'; use stable content "
                                "identity",
                            )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    for call in id_calls(key):
                        yield from emit(
                            call,
                            "id() as a dict key is address-dependent; key "
                            "on stable content identity",
                        )


# --------------------------------------------------------------- R005


@register
class NetworkxHotPathRule(Rule):
    id = "R005"
    title = "networkx-in-hot-path"
    rationale = (
        "repro.core/batch/whatif/service/sim are ArcGraph-native (PR 5; "
        "the simulator per PR 9): a networkx import there reintroduces "
        "graph walks and fat pool payloads"
    )

    HOT_PREFIXES = (
        "repro.core",
        "repro.batch",
        "repro.whatif",
        "repro.service",
        "repro.sim",
    )

    #: Modules that transitively pull in networkx; banned at module level in
    #: hot packages (a function-scoped lazy import is the sanctioned
    #: compile-boundary idiom — see repro.core.arcgraph.compile_graph).
    HEAVY_MODULES = ("repro.utils.graphutils",)

    def _hot(self, module: ModuleInfo) -> bool:
        return any(
            module.module == prefix or module.module.startswith(prefix + ".")
            for prefix in self.HOT_PREFIXES
        )

    def _top_level_imports(
        self, tree: ast.Module
    ) -> Iterator[ast.Import | ast.ImportFrom]:
        """Module-level imports, looking through top-level If/Try guards."""
        stack: List[ast.AST] = list(tree.body)
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node
            elif isinstance(node, (ast.If, ast.Try)):
                for body in (
                    getattr(node, "body", []),
                    getattr(node, "orelse", []),
                    getattr(node, "finalbody", []),
                ):
                    stack.extend(body)
                for handler in getattr(node, "handlers", []):
                    stack.extend(handler.body)

    @staticmethod
    def _imports_of(node: ast.Import | ast.ImportFrom) -> List[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        return [node.module] if node.module else []

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        if not self._hot(module):
            return
        top_level = set()
        for node in self._top_level_imports(module.tree):
            top_level.add(id(node))
            for name in self._imports_of(node):
                if any(
                    name == heavy or name.startswith(heavy + ".")
                    for heavy in self.HEAVY_MODULES
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"module-level import of '{name}' pulls networkx "
                        "into a hot-path package; import it lazily at the "
                        "compile boundary instead",
                        node.col_offset,
                    )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in self._imports_of(node):
                    if name == "networkx" or name.startswith("networkx."):
                        yield self.finding(
                            module,
                            node.lineno,
                            "imports networkx inside an ArcGraph-native "
                            "hot-path package; operate on the compiled "
                            "ArcGraph instead",
                            node.col_offset,
                        )


# --------------------------------------------------------------- R007


#: Callees that construct keys/digests: R004's key-ish names plus the
#: concrete hashlib constructors (``sha256`` has no "hash" in its name but
#: is exactly where a leaked skeleton would get baked into a key).
_R007_KEYED_NAME = re.compile(
    r"(key|digest|hash|seed|fingerprint|sha\d*$|blake2[bs]?$|md5$)",
    re.IGNORECASE,
)


@register
class ModelCacheInKeyRule(Rule):
    id = "R007"
    title = "modelcache-in-key"
    rationale = (
        "the compiled LP model cache is an accelerator; skeletons, skeleton "
        "keys, and hit/miss state must never feed instance_key or any other "
        "result cache key"
    )

    #: The accelerator module whose outputs are key-poison.
    CACHE_MODULE = "repro.throughput.modelcache"

    #: Modules that define result cache keys (``instance_key`` and the
    #: stores addressed by it).  They must stay skeleton-blind entirely —
    #: any modelcache import there is a finding, used or not.
    KEY_MODULES = ("repro.batch.jobs", "repro.batch.cache")

    def _from_cache(self, resolved: str | None) -> bool:
        return resolved is not None and (
            resolved == self.CACHE_MODULE
            or resolved.startswith(self.CACHE_MODULE + ".")
        )

    def _cache_refs(self, module: ModuleInfo, subtree: ast.AST) -> Iterator[ast.AST]:
        """Sub-expressions of ``subtree`` that resolve into the cache module."""
        for sub in ast.walk(subtree):
            if isinstance(sub, (ast.Name, ast.Attribute)) and self._from_cache(
                module.resolve(sub)
            ):
                yield sub

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        if self._from_cache(module.module):
            return  # the cache module may of course name its own symbols
        key_module = module.module in self.KEY_MODULES
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if key_module and isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [alias.name for alias in node.names]
                    if isinstance(node, ast.Import)
                    else ([node.module] if node.module else [])
                )
                if any(self._from_cache(name) for name in names):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"key module '{module.module}' imports the model "
                        "cache; instance_key and the result stores must stay "
                        "skeleton-blind (the skeleton is derived from the "
                        "instance, never part of its identity)",
                        node.col_offset,
                    )
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved is None:
                    continue
                callee = resolved.rsplit(".", 1)[-1]
                if not _R007_KEYED_NAME.search(callee):
                    continue
                if self._from_cache(resolved):
                    continue  # the cache's own key helpers are fine to call
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for ref in self._cache_refs(module, arg):
                        spot = (ref.lineno, ref.col_offset)
                        if spot in seen:
                            continue
                        seen.add(spot)
                        yield self.finding(
                            module,
                            ref.lineno,
                            f"'{module.resolve(ref)}' feeds "
                            f"'{resolved}'; model-cache state is "
                            "per-process and must not reach cache keys, "
                            "digests, or seeds",
                            ref.col_offset,
                        )
