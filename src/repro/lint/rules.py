"""Rule framework for ``repro lint``.

A rule is a class with an ``id`` (``R001``...), a ``title``, a
``rationale`` (which shipped bug class it encodes), and a ``check``
generator over the :class:`~repro.lint.model.ProjectModel`.  Most rules
are per-module AST walks and only override :meth:`Rule.check_module`;
cross-file rules (registry coverage) override :meth:`Rule.check` and see
the whole project.

Rules self-register into :data:`RULES` via the :func:`register` decorator
at import time; :func:`all_rules` is the stable-ordered catalog the runner
and the docs use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Type

from repro.lint.model import ModuleInfo, ProjectModel


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # project-root-relative posix path
    line: int  # 1-based
    rule: str
    message: str
    col: int = 0

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Line numbers drift with unrelated edits, so grandfathered entries
        match on (rule, file, message) only.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class: per-module by default, override ``check`` to go cross-file."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(module, project)

    def check_module(
        self, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, module: ModuleInfo, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            path=module.relpath, line=line, rule=self.id, message=message, col=col
        )


#: Registry of rule id -> singleton instance, in registration order.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in catalog (rule-id) order.

    Sorted by id, not registration order: rules live in more than one
    module (per-module walks in :mod:`repro.lint.purity`, cross-file
    checks in :mod:`repro.lint.registry`), so import order would
    otherwise leak into reports.
    """
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def select_rules(ids: Optional[List[str]] = None) -> List[Rule]:
    """The rules for ``ids`` (``None`` = all), rejecting unknown ids."""
    if ids is None:
        return all_rules()
    unknown = [rule_id for rule_id in ids if rule_id not in RULES]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {unknown}; known rules: {sorted(RULES)}"
        )
    return [RULES[rule_id] for rule_id in ids]
