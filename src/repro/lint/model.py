"""Cross-file project model for ``repro lint``.

The linter parses every ``.py`` file under the lint roots once into a
:class:`ModuleInfo` (AST + source lines + per-line suppressions + an
import-alias map), and bundles them into a :class:`ProjectModel` that
rules consume.  Single-module rules walk one AST at a time; cross-file
rules (registry coverage) see the whole model, plus the repo docs
(``EXPERIMENTS.md``, ``README.md``) needed for documented-name checks.

Name resolution is import-based: ``ModuleInfo.resolve`` canonicalizes an
attribute chain like ``np.random.default_rng`` to
``numpy.random.default_rng`` using the module's own import statements, so
rules match *what a name means*, not what it is spelled as.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Suppression comment: ``# repro-lint: allow[R001]`` or ``allow[R001,R004]``.
#: On a code line it suppresses findings on that line; on a comment-only
#: line it also suppresses the line below it.
_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: Documentation files the cross-file rules may consult.
_DOC_NAMES = ("EXPERIMENTS.md", "README.md")


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        out.setdefault(i, set()).update(rules)
        if line.lstrip().startswith("#"):
            # A comment-only allow line covers the statement below it.
            out.setdefault(i + 1, set()).update(rules)
    return out


def _module_name(relpath: Path) -> str:
    """Dotted module name for a file path (anchored at the ``repro`` package).

    Files outside any package root fall back to their stem, which keeps the
    linter usable on loose fixture trees.
    """
    parts = list(relpath.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) if parts else relpath.stem


def _import_aliases(tree: ast.Module, package: str) -> Dict[str, str]:
    """Local name -> canonical dotted origin, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random import
    default_rng`` maps ``default_rng -> numpy.random.default_rng``; a bare
    ``import os.path`` binds the top package (``os -> os``).  Relative
    imports resolve against ``package``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix_parts = package.split(".") if package else []
                cut = len(prefix_parts) - (node.level - 1)
                prefix = ".".join(prefix_parts[: max(cut, 0)])
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path  # absolute location on disk
    relpath: str  # project-root-relative posix path (stable across cwds)
    module: str  # dotted module name, e.g. "repro.batch.cache"
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.path.name == "__init__.py":
            return self.module
        return self.module.rsplit(".", 1)[0] if "." in self.module else ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted origin of an expression, or ``None``.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module imported ``numpy as np``; unimported roots (local
        variables, builtins) resolve to the raw chain so rules can still
        match builtins like ``hash``.
        """
        raw = dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return raw
        return f"{origin}.{rest}" if rest else origin

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when an allow comment covers ``rule_id`` at ``line``."""
        rules = self.suppressions.get(line)
        return bool(rules) and (rule_id in rules or "*" in rules)


class ProjectModel:
    """All parsed modules plus the docs the cross-file rules consult."""

    def __init__(
        self,
        modules: List[ModuleInfo],
        root: Path,
        docs: Dict[str, str],
        parse_errors: List[Tuple[str, int, str]],
    ) -> None:
        self.modules = modules
        self.root = root
        self.docs = docs  # doc filename -> text (only files that exist)
        self.parse_errors = parse_errors  # (relpath, line, message)
        self._by_name = {mod.module: mod for mod in modules}

    def module_named(self, name: str) -> Optional[ModuleInfo]:
        return self._by_name.get(name)

    def doc(self, name: str) -> Optional[str]:
        return self.docs.get(name)

    @classmethod
    def from_paths(
        cls,
        paths: Sequence[Path | str],
        project_root: Optional[Path | str] = None,
    ) -> "ProjectModel":
        """Parse every ``.py`` file under ``paths``.

        ``project_root`` anchors finding paths (and is where docs are
        looked up); when omitted it is discovered by walking up from the
        first path looking for ``EXPERIMENTS.md`` or ``.git``, falling
        back to the current directory.
        """
        resolved = [Path(p).resolve() for p in paths]
        root = (
            Path(project_root).resolve()
            if project_root is not None
            else _discover_root(resolved)
        )
        files: List[Path] = []
        for path in resolved:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        modules: List[ModuleInfo] = []
        parse_errors: List[Tuple[str, int, str]] = []
        for file in files:
            try:
                relpath = file.relative_to(root).as_posix()
            except ValueError:
                relpath = file.as_posix()
            source = file.read_text(encoding="utf-8")
            lines = source.splitlines()
            try:
                tree = ast.parse(source, filename=str(file))
            except SyntaxError as exc:
                parse_errors.append((relpath, exc.lineno or 1, exc.msg or "syntax error"))
                continue
            module = _module_name(Path(relpath))
            info = ModuleInfo(
                path=file,
                relpath=relpath,
                module=module,
                tree=tree,
                lines=lines,
                suppressions=_suppressions(lines),
            )
            info.aliases = _import_aliases(tree, info.package)
            modules.append(info)
        docs = {}
        for name in _DOC_NAMES:
            doc_path = root / name
            if doc_path.is_file():
                docs[name] = doc_path.read_text(encoding="utf-8")
        return cls(modules, root, docs, parse_errors)


def _discover_root(paths: Sequence[Path]) -> Path:
    start = paths[0] if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in [start, *start.parents]:
        if (candidate / "EXPERIMENTS.md").is_file() or (candidate / ".git").exists():
            return candidate
    return Path.cwd()
