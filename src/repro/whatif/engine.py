"""The what-if sweep: batched, warm-started scenario evaluation.

One :func:`whatif_sweep` call answers a list of
:class:`~repro.whatif.scenarios.Scenario` capacity overlays against a fixed
(topology, TM) instance:

1. **Parent solve** — the unperturbed instance solves once with
   ``want_duals=True`` through the ambient :class:`~repro.batch.BatchSolver`
   (cached like any other solve, so a warm rerun costs zero solves).
2. **Hint** — the parent's value, capacity duals, and per-arc usage become a
   :class:`~repro.throughput.warmstart.SolveHint`.
3. **Children** — each scenario becomes an ``ArcGraph.with_caps`` overlay
   (structure digest shared with the parent; only the capacity vector is
   new) and a hinted ``SolveRequest`` through the same solver: the batch
   layer answers a child from the hint's bound interval alone when it closes
   to ``rtol`` (``skipped_by_bound`` in stats), and otherwise solves a
   bound-tightened LP — cached, pooled, and engine/backend-aware like every
   other batched solve.

The TM is **fixed across scenarios** — that is what makes the parent's duals
transferable (same demand pattern, different capacities).  Sweeps whose TM
adapts to each failed graph want :func:`repro.evaluation.failures.
failure_sweep`, which regenerates the matrix per draw and therefore can
share neither hints nor the parent baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.batch import BatchSolver, SolveRequest, get_solver
from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.throughput.warmstart import BOUND_SLACK, SolveHint
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.envknobs import knob_float
from repro.utils.numeric import safe_ratio
from repro.whatif.scenarios import Scenario


def default_rtol() -> float:
    """Bound-skip tolerance: ``REPRO_WHATIF_RTOL`` env var, else 1e-6.

    A scenario whose hint interval closes to within this relative width is
    answered without a solve; the reported value is then the certified
    feasible lower bound, at most ``rtol`` below the true optimum.
    """
    return knob_float("REPRO_WHATIF_RTOL", BOUND_SLACK)


@dataclass
class ScenarioOutcome:
    """One scenario's answer and how it was obtained."""

    name: str
    kind: str
    value: float
    relative: float  # value / parent value; NaN when both are 0
    skipped_by_bound: bool = False
    from_cache: bool = False
    error: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class WhatIfReport:
    """Every scenario's outcome plus the sweep's batch-stats delta."""

    topology_name: str
    parent_value: float
    outcomes: List[ScenarioOutcome]
    stats: Dict[str, Any]

    def relative_values(self, kind: Optional[str] = None) -> List[float]:
        """Sorted relative throughputs (one CDF's x-axis), optionally
        filtered to one scenario kind."""
        vals = [
            o.relative
            for o in self.outcomes
            if o.ok and (kind is None or o.kind == kind)
        ]
        return sorted(vals)

    @property
    def n_skipped_by_bound(self) -> int:
        return sum(1 for o in self.outcomes if o.skipped_by_bound)


def whatif_sweep(
    topology: Union[Topology, ArcGraph],
    tm: TrafficMatrix,
    scenarios: Sequence[Scenario],
    solver: Optional[BatchSolver] = None,
    rtol: Optional[float] = None,
    topology_name: Optional[str] = None,
) -> WhatIfReport:
    """Throughput of every scenario overlay, warm-started from the parent.

    Parameters
    ----------
    topology, tm:
        The unperturbed instance.  The TM is held fixed across scenarios
        (see module docstring).
    scenarios:
        Capacity overlays to evaluate (see :mod:`repro.whatif.scenarios`).
    solver:
        Batch solver to route solves through; ``None`` takes the ambient
        one (:func:`repro.batch.get_solver`) — under ``run_experiment``
        that is the session's cached, possibly multi-worker solver.
    rtol:
        Bound-skip tolerance; ``None`` reads :func:`default_rtol`.
    topology_name:
        Report label; defaults to the topology's own name when it has one.
    """
    if solver is None:
        solver = get_solver()
    if rtol is None:
        rtol = default_rtol()
    ag = as_arcgraph(topology)
    if topology_name is None:
        topology_name = getattr(topology, "name", "") or f"arcgraph/{ag.digest[:12]}"

    snap = solver.snapshot()
    parent = (
        solver.solve(
            SolveRequest(
                ag, tm, engine="lp", params={"want_duals": True}, tag="whatif:parent"
            )
        )
        .require()
    )
    hint = SolveHint.from_result(parent, ag.caps, rtol=rtol)

    child_graphs = [
        ag.with_caps(np.asarray(s.caps, dtype=np.float64)) for s in scenarios
    ]
    # The whole ensemble's bound screens compute as single vectorized
    # reductions over an (S, arcs) capacity stack — one matmul for the
    # dual upper bounds, one masked row-min for the flow-scaling lower
    # bounds — instead of a per-scenario Python loop.  Each verdict rides
    # on its request (advisory, never keyed) for the batch layer's
    # bound-skip check to consume.
    screens = (
        hint.screen_many(np.stack([g.caps for g in child_graphs]))
        if child_graphs
        else []
    )
    requests = [
        SolveRequest(
            graph,
            tm,
            engine="lp",
            hint=hint,
            screen=screen,
            tag=s.name,
        )
        for graph, screen, s in zip(child_graphs, screens, scenarios)
    ]
    outcomes: List[ScenarioOutcome] = []
    for scenario, outcome in zip(scenarios, solver.solve_many(requests)):
        if outcome.ok:
            result = outcome.result
            outcomes.append(
                ScenarioOutcome(
                    name=scenario.name,
                    kind=scenario.kind,
                    value=result.value,
                    relative=safe_ratio(result.value, parent.value),
                    skipped_by_bound=bool(
                        result.meta.get("skipped_by_bound", False)
                    ),
                    from_cache=outcome.from_cache,
                    meta=dict(scenario.meta),
                )
            )
        else:
            outcomes.append(
                ScenarioOutcome(
                    name=scenario.name,
                    kind=scenario.kind,
                    value=float("nan"),
                    relative=float("nan"),
                    error=outcome.error,
                    meta=dict(scenario.meta),
                )
            )
    return WhatIfReport(
        topology_name=topology_name,
        parent_value=parent.value,
        outcomes=outcomes,
        stats=solver.stats_since(snap),
    )
