"""Scenario generators for the what-if engine.

A :class:`Scenario` is nothing but a *capacity overlay*: a name, a kind,
and the child capacity vector in the parent's canonical arc order.  Failed
links are arcs with capacity zeroed (both directions of the cable);
degraded or draining links keep their arcs with scaled capacity.  The
instance structure — node count, arc list, CSR layout — never changes, so
every scenario shares the parent :class:`~repro.core.ArcGraph`'s structure
digest and costs one ``with_caps`` array copy to materialize
(:mod:`repro.whatif.engine` does that at solve time).

Three generators cover the failure families the robustness literature
sweeps (plus uniform degradation, the bound-skip calibration case):

* :func:`random_failures` — k uniformly random cable failures per draw,
  resampled until the surviving capacity keeps the graph connected.
* :func:`targeted_cut_failures` — adversarial failures concentrated on the
  sparsest cut found by the Appendix-C estimators (:mod:`repro.cuts`).
* :func:`maintenance_windows` — rolling windows draining a contiguous
  chunk of cables to a fraction of their capacity, the planned-works case.
* :func:`uniform_degradation` — every capacity scaled by one factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, ensure_rng, stable_seed


@dataclass(frozen=True)
class Scenario:
    """One what-if question: "what is throughput under these capacities?"

    Attributes
    ----------
    name:
        Unique label within a sweep; becomes the solve request's tag and
        the report row's key.
    kind:
        Generator family (``"random-failure"``, ``"targeted-cut"``,
        ``"maintenance"``, ``"degradation"``) — the CDF grouping axis.
    caps:
        Child capacity vector, canonical arc order of the parent
        :class:`~repro.core.ArcGraph`.
    meta:
        Generator-specific detail (failed link ids, drain factor, draw
        seed) for provenance in experiment rows.
    """

    name: str
    kind: str
    caps: np.ndarray
    meta: Dict[str, Any] = field(default_factory=dict)


def _compiled(topology: Union[Topology, ArcGraph]) -> ArcGraph:
    return as_arcgraph(topology)


def uniform_degradation(
    topology: Union[Topology, ArcGraph],
    factors: Sequence[float] = (0.9, 0.75, 0.5),
) -> List[Scenario]:
    """Every capacity scaled by each factor in ``factors``.

    Concurrent-flow throughput is positively homogeneous in the capacity
    vector, so the exact answer is ``factor * parent`` — which is precisely
    what the parent-dual upper bound and the flow-scaling lower bound both
    evaluate to.  These scenarios are therefore always answered by the
    bound alone (``skipped_by_bound``), making them the engine's
    calibration family and the CI smoke test's assertion target.
    """
    ag = _compiled(topology)
    scenarios = []
    for f in factors:
        f = float(f)
        if f < 0:
            raise ValueError(f"degradation factor must be >= 0, got {f}")
        scenarios.append(
            Scenario(
                name=f"degrade/{f:g}",
                kind="degradation",
                caps=ag.caps * f,
                meta={"factor": f},
            )
        )
    return scenarios


def random_failures(
    topology: Union[Topology, ArcGraph],
    n_fail: int,
    samples: int = 4,
    seed: SeedLike = 0,
    max_tries: int = 60,
) -> List[Scenario]:
    """``samples`` independent draws of ``n_fail`` random cable failures.

    Each draw gets its own child seed derived up front via
    :func:`~repro.utils.rng.stable_seed` — draw ``i`` reproduces
    bit-identically no matter how many other draws ran before it (the
    seed-order bug class fixed in ``failure_sweep``).  A draw is resampled
    (fresh sub-seed, up to ``max_tries``) until the surviving capacity
    keeps the graph connected; exhausting the budget raises ``ValueError``.
    """
    ag = _compiled(topology)
    links = ag.undirected_links()
    if not 0 <= n_fail < len(links):
        raise ValueError(
            f"n_fail must be in [0, {len(links)}), got {n_fail}"
        )
    scenarios = []
    for i in range(samples):
        draw_seed = stable_seed("whatif-random", seed, i)
        caps = None
        for attempt in range(max_tries):
            rng = ensure_rng(stable_seed(draw_seed, attempt))
            pick = rng.choice(len(links), size=n_fail, replace=False)
            child = ag.with_failed_arcs(links[np.sort(pick), 0])
            if child.capacity_connected():
                caps = child.caps
                picked = np.sort(pick)
                break
        if caps is None:
            raise ValueError(
                f"could not fail {n_fail} links and stay connected "
                f"after {max_tries} tries (draw {i})"
            )
        scenarios.append(
            Scenario(
                name=f"random/k={n_fail}/draw={i}",
                kind="random-failure",
                caps=caps,
                meta={"n_fail": n_fail, "draw": i, "links": picked.tolist()},
            )
        )
    return scenarios


def targeted_cut_failures(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    max_fail: Optional[int] = None,
    seed: SeedLike = 0,
) -> List[Scenario]:
    """Adversarial failures concentrated on the sparsest cut.

    Finds the best cut the Appendix-C estimators can (:func:`repro.cuts.
    find_sparse_cut`), then fails the first ``j`` cut-crossing cables for
    ``j = 1..max_fail`` — the worst place to lose capacity, since every
    crossing demand is bottlenecked there.  Scenarios that would disconnect
    the graph (``j`` equal to the full crossing set) are dropped.  Needs
    the full :class:`Topology` (cut search walks the graph), unlike the
    other generators.
    """
    from repro.cuts.heuristics import find_sparse_cut

    ag = _compiled(topology)
    report = find_sparse_cut(topology, tm=tm, seed=seed)
    side = report.best.side
    links = ag.undirected_links()
    tails, heads = ag.tails[links[:, 0]], ag.heads[links[:, 0]]
    crossing = np.flatnonzero(side[tails] != side[heads])
    if max_fail is None:
        max_fail = len(crossing)
    scenarios = []
    for j in range(1, min(max_fail, len(crossing)) + 1):
        child = ag.with_failed_arcs(links[crossing[:j], 0])
        if not child.capacity_connected():
            break
        scenarios.append(
            Scenario(
                name=f"cut/j={j}",
                kind="targeted-cut",
                caps=child.caps,
                meta={
                    "n_fail": j,
                    "cut_sparsity": float(report.best.sparsity),
                    "cut_found_by": report.best.found_by,
                },
            )
        )
    return scenarios


def maintenance_windows(
    topology: Union[Topology, ArcGraph],
    n_windows: int = 8,
    drain: float = 0.5,
) -> List[Scenario]:
    """Rolling maintenance: each window drains a contiguous chunk of cables.

    The canonical link order is partitioned into ``n_windows`` near-equal
    contiguous windows; window ``w``'s scenario scales those cables'
    capacities by ``drain`` (0 = taken fully offline, 0.5 = half-rate
    during works).  Together the windows cover every cable exactly once —
    the planned-works schedule question "which maintenance window hurts
    throughput most?".
    """
    if not 0.0 <= drain < 1.0:
        raise ValueError(f"drain must be in [0, 1), got {drain}")
    if n_windows < 1:
        raise ValueError(f"n_windows must be >= 1, got {n_windows}")
    ag = _compiled(topology)
    links = ag.undirected_links()
    n_windows = min(n_windows, len(links))
    rev = ag.reverse_permutation()
    scenarios = []
    for w, chunk in enumerate(np.array_split(np.arange(len(links)), n_windows)):
        caps = np.array(ag.caps)
        arc_ids = links[chunk, 0]
        caps[arc_ids] *= drain
        caps[rev[arc_ids]] *= drain
        scenarios.append(
            Scenario(
                name=f"maint/w={w}",
                kind="maintenance",
                caps=caps,
                meta={"window": w, "n_links": int(chunk.size), "drain": drain},
            )
        )
    return scenarios
