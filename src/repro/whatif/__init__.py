"""Incremental what-if engine: failure/degradation scenarios as overlays.

Scenarios are capacity overlays of one compiled instance
(:mod:`repro.whatif.scenarios`); the sweep engine solves them through the
ambient batch solver, warm-started from the unperturbed parent solve and
skipping scenarios the parent's dual bound already answers
(:mod:`repro.whatif.engine`).  See DESIGN.md ("What-if engine").
"""

from repro.whatif.engine import (
    ScenarioOutcome,
    WhatIfReport,
    default_rtol,
    whatif_sweep,
)
from repro.whatif.scenarios import (
    Scenario,
    maintenance_windows,
    random_failures,
    targeted_cut_failures,
    uniform_degradation,
)

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "WhatIfReport",
    "default_rtol",
    "maintenance_windows",
    "random_failures",
    "targeted_cut_failures",
    "uniform_degradation",
    "whatif_sweep",
]
