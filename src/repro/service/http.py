"""Minimal asyncio HTTP/1.1 plumbing for the throughput service.

Deliberately tiny: the service needs request parsing, JSON responses, and
server-sent events over ``asyncio`` streams — not a framework.  Stdlib
only (the repo's no-new-hard-deps rule), HTTP/1.1 with keep-alive, bodies
via ``Content-Length`` (chunked uploads are rejected with 501).

Server-sent events (SSE) frames are the classic two-field form::

    event: row
    data: {"experiment_id": "fig2", "index": 0, "row": [...]}

one blank line between frames, which is exactly what ``EventSource``
clients and :class:`repro.service.client.ServiceClient` parse.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upload ceiling: adjacency + TM payloads for a few thousand nodes fit
#: comfortably; anything larger is a mistake, not a workload.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Header-section ceiling (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request problem with a definite status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""
    keep_alive: bool = True

    @property
    def tenant(self) -> str:
        """The client-declared tenant label (``tenant`` header), or ``""``."""
        return self.headers.get("tenant", "").strip()

    def json(self) -> Any:
        """Parse the body as JSON (400 on syntax errors / wrong type)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed or oversized requests — the
    connection handler answers with the error status and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            n = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {n} bytes exceeds the upload cap")
        body = await reader.readexactly(n)

    split = urlsplit(target)
    query = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    connection = headers.get("connection", "").lower()
    keep_alive = version != "HTTP/1.0" and "close" not in connection
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete (non-streaming) HTTP response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    doc: Any,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """A JSON document as a complete response."""
    body = (json.dumps(doc) + "\n").encode("utf-8")
    return response_bytes(
        status, body, extra_headers=extra_headers, keep_alive=keep_alive
    )


def error_response(status: int, message: str, **extra: str) -> bytes:
    """The service's uniform error body (connection closes after it)."""
    return json_response(
        status,
        {"error": message, "status": status},
        extra_headers=dict(extra) or None,
        keep_alive=False,
    )


@dataclass
class SSEWriter:
    """Streams server-sent events over an established response.

    ``start`` writes the response head (no Content-Length — the stream
    ends when the connection does); ``send`` writes one frame and drains,
    so backpressure from a slow client propagates to the producer loop.
    """

    writer: asyncio.StreamWriter
    started: bool = field(default=False, init=False)

    async def start(self) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        self.writer.write(head.encode("latin-1"))
        await self.writer.drain()
        self.started = True

    async def send(self, event: str, data: Any) -> None:
        frame = f"event: {event}\ndata: {json.dumps(data)}\n\n"
        self.writer.write(frame.encode("utf-8"))
        await self.writer.drain()


def parse_sse_stream(lines: Iterable[str]) -> Iterator[Tuple[str, Any]]:
    """Parse an iterable of text lines into ``(event, data)`` tuples.

    Shared by the blocking client and tests; tolerant of comment lines
    (``: ...``) and extra blank lines.
    """
    event: Optional[str] = None
    data_parts = []
    for raw in lines:
        line = raw.rstrip("\n").rstrip("\r")
        if line.startswith(":"):
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_parts.append(line[len("data:"):].strip())
        elif line == "":
            if event is not None or data_parts:
                payload = json.loads("\n".join(data_parts)) if data_parts else None
                yield (event or "message", payload)
            event, data_parts = None, []
    if event is not None or data_parts:
        payload = json.loads("\n".join(data_parts)) if data_parts else None
        yield (event or "message", payload)


__all__ = [
    "HttpError",
    "Request",
    "SSEWriter",
    "MAX_BODY_BYTES",
    "error_response",
    "json_response",
    "parse_sse_stream",
    "read_request",
    "response_bytes",
]
