"""Throughput-as-a-service: asyncio HTTP front-end over one shared Session.

The ROADMAP's "millions of users" story: a long-lived service multiplexes
many concurrent clients onto **one** :class:`~repro.api.Session` — one
:class:`~repro.batch.BatchSolver`, one persistent content-addressed cache
— so popular topologies are solved once and then served as cache hits.

Endpoints
---------
``GET/POST /throughput``
    Synchronous query: a named topology (``{"family": "jellyfish"}``) or
    an uploaded adjacency/TM payload, plus engine/params; answers with the
    throughput value, cache provenance, and the content key.
``POST /jobs`` / ``GET /jobs/<id>`` / ``GET /jobs/<id>/events``
    Submit a query *or a whole experiment* as a job; stream its typed
    events (``row`` / ``progress`` / ``batch`` / ``shard`` / ``result``)
    back as server-sent events, 1:1 with :mod:`repro.api.events`.
``GET /healthz`` / ``GET /stats``
    Liveness, and solver + cache + admission counters with per-tenant
    attribution (clients declare themselves via a ``Tenant`` header).

Admission control bounds in-flight solves (``429`` + ``Retry-After`` when
saturated, per-tenant caps, ``503`` while draining on SIGTERM); see
:mod:`repro.service.app` for the threading architecture and DESIGN.md
("Throughput-as-a-service") for the rationale.

Start one with ``repro serve`` or programmatically::

    with Session(workers=2, cache_dir=...) as session:
        serve(session, ServiceConfig(port=8432))
"""

from repro.service.app import (
    DEFAULT_PORT,
    ServiceConfig,
    ThroughputService,
    event_frame,
    resolve_max_inflight,
    resolve_tenant_cap,
    serve,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import HttpError, Request, SSEWriter, parse_sse_stream
from repro.service.jobs import Admission, Job, JobTable
from repro.service.loadgen import run_load
from repro.service.queries import InstanceCache, QuerySpec, parse_query

__all__ = [
    "DEFAULT_PORT",
    "Admission",
    "HttpError",
    "InstanceCache",
    "Job",
    "JobTable",
    "QuerySpec",
    "Request",
    "SSEWriter",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ThroughputService",
    "event_frame",
    "parse_query",
    "parse_sse_stream",
    "resolve_max_inflight",
    "resolve_tenant_cap",
    "run_load",
    "serve",
]
