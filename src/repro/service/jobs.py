"""Job records and admission control for the throughput service.

**Admission** is the service's backpressure: a bounded budget of in-flight
jobs (derived from the solver's worker count unless configured), plus a
per-tenant concurrency cap so one chatty client cannot starve the rest.
All admission state lives on the asyncio event-loop thread and is mutated
*only* there — handlers run on the loop, and job threads release their
slots by scheduling :meth:`Admission.release` back onto the loop with
``call_soon_threadsafe`` — so no lock is needed and counts can never tear.

A rejected request gets ``429`` with a ``Retry-After`` hint (or ``503``
while draining).  Release is idempotent per admit: whichever of
"job finished", "job cancelled before starting", or "client gave up and
the job errored out" happens, the slot is returned exactly once.

**Jobs** are the unit of streaming: one submitted query or experiment,
with an ``asyncio.Queue`` of SSE-ready ``(event, payload)`` frames fed
from the job's worker thread.  Completed jobs keep their frames so a
late-connecting consumer replays the full stream.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Sentinel closing a job's event queue.
STREAM_END = ("__end__", None)

#: Completed jobs retained for late status/event reads.
MAX_FINISHED_JOBS = 256


class Admission:
    """Loop-thread-only in-flight accounting with per-tenant caps."""

    def __init__(self, max_inflight: int, tenant_cap: int) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if tenant_cap < 1:
            raise ValueError(f"tenant_cap must be >= 1, got {tenant_cap}")
        self.max_inflight = max_inflight
        self.tenant_cap = tenant_cap
        self.inflight = 0
        self.per_tenant: Dict[str, int] = {}
        self.admitted = 0
        self.rejected = 0

    def try_admit(self, tenant: str) -> Tuple[bool, str]:
        """Claim one slot, or explain the refusal (loop thread only)."""
        if self.inflight >= self.max_inflight:
            self.rejected += 1
            return False, (
                f"service saturated: {self.inflight} of "
                f"{self.max_inflight} solve slots in flight"
            )
        if tenant and self.per_tenant.get(tenant, 0) >= self.tenant_cap:
            self.rejected += 1
            return False, (
                f"tenant {tenant!r} at its concurrency cap "
                f"({self.tenant_cap})"
            )
        self.inflight += 1
        if tenant:
            self.per_tenant[tenant] = self.per_tenant.get(tenant, 0) + 1
        self.admitted += 1
        return True, ""

    def release(self, tenant: str) -> None:
        """Return one slot (loop thread only; callers guard idempotence)."""
        self.inflight = max(0, self.inflight - 1)
        if tenant:
            left = self.per_tenant.get(tenant, 0) - 1
            if left > 0:
                self.per_tenant[tenant] = left
            else:
                self.per_tenant.pop(tenant, None)

    def stats(self) -> Dict[str, Any]:
        return {
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "tenant_cap": self.tenant_cap,
            "per_tenant": dict(self.per_tenant),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


_job_ids = itertools.count(1)


@dataclass
class Job:
    """One admitted unit of work and its event stream.

    ``frames`` accumulates every SSE frame ever published (rows, progress,
    batch stats, the terminal result or error), and ``queue`` wakes the
    live consumer; a consumer that attaches after completion replays
    ``frames`` and sees the identical stream.
    """

    kind: str  # "query" | "experiment"
    tenant: str
    detail: str
    id: str = field(default_factory=lambda: f"job-{next(_job_ids)}")
    status: str = "running"  # running | done | error | cancelled
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    frames: List[Tuple[str, Any]] = field(default_factory=list)
    queue: "asyncio.Queue[Tuple[str, Any]]" = field(
        default_factory=asyncio.Queue
    )
    done: asyncio.Event = field(default_factory=asyncio.Event)
    _released: bool = field(default=False, repr=False)

    def publish(self, event: str, payload: Any) -> None:
        """Record one frame and wake the consumer (loop thread only)."""
        self.frames.append((event, payload))
        self.queue.put_nowait((event, payload))

    def finish(self, status: str, error: Optional[str] = None) -> None:
        """Terminal transition; closes the event stream (loop thread only)."""
        self.status = status
        self.error = error
        self.done.set()
        self.queue.put_nowait(STREAM_END)

    def describe(self) -> Dict[str, Any]:
        doc = {
            "job": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "detail": self.detail,
            "status": self.status,
            "events": len(self.frames),
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["result"] = self.result
        return doc


class JobTable:
    """Loop-thread-only registry of live + recently finished jobs."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self.total = 0

    def add(self, job: Job) -> None:
        self.jobs[job.id] = job
        self.total += 1
        # Evict oldest *finished* jobs beyond the retention cap.
        finished = [
            j for j in self.jobs.values() if j.status != "running"
        ]
        for stale in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            self.jobs.pop(stale.id, None)

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def running(self) -> List[Job]:
        return [j for j in self.jobs.values() if j.status == "running"]

    def stats(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {"total": self.total, "by_status": by_status}


__all__ = ["Admission", "Job", "JobTable", "STREAM_END", "MAX_FINISHED_JOBS"]
