"""Blocking HTTP client for the throughput service.

Stdlib ``http.client`` only — this is the smoke/CLI/benchmark client, not
an SDK.  One :class:`ServiceClient` holds one keep-alive connection and is
**not** thread-safe; the load generator gives each simulated client its
own instance (that is the point of a load test).

``query_with_retry`` implements the polite saturation dance the service's
admission control expects: on ``429`` sleep ``Retry-After`` seconds and
try again, up to a deadline.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.service.http import parse_sse_stream


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str, retry_after: float = 0.0):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """One keep-alive connection to a running throughput service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8432,
        tenant: str = "",
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------- plumbing
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        stream: bool = False,
    ):
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers["Tenant"] = self.tenant
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection: reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
        if stream:
            return response
        raw = response.read()
        if response.status >= 400:
            self._raise(response, raw)
        return json.loads(raw.decode("utf-8"))

    def _raise(self, response, raw: bytes) -> None:
        try:
            message = json.loads(raw.decode("utf-8")).get("error", "")
        except (ValueError, UnicodeDecodeError):
            message = raw.decode("latin-1", "replace")[:200]
        retry_after = 0.0
        header = response.getheader("Retry-After")
        if header:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        # Error responses close the connection server-side.
        self.close()
        raise ServiceError(response.status, message, retry_after)

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def throughput(
        self, doc: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Synchronous query: POST the spec, get the value (or raise)."""
        path = "/throughput"
        if timeout is not None:
            path += f"?timeout={timeout}"
        return self._request("POST", path, body=doc)

    def query_with_retry(
        self,
        doc: Dict[str, Any],
        deadline_seconds: float = 60.0,
        backoff: float = 0.2,
    ) -> Dict[str, Any]:
        """``throughput`` with polite 429 retries until the deadline."""
        deadline = time.monotonic() + deadline_seconds
        while True:
            try:
                return self.throughput(doc)
            except ServiceError as exc:
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                time.sleep(max(exc.retry_after, backoff))

    def submit(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``: returns ``{"job": id, "events": path, ...}``."""
        return self._request("POST", "/jobs", body=doc)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> Iterator[Tuple[str, Any]]:
        """Stream a job's SSE frames as ``(event, payload)`` tuples.

        The generator ends after the server's terminal ``end`` frame.  The
        connection is dedicated to the stream and closed afterwards.
        """
        response = self._request("GET", f"/jobs/{job_id}/events", stream=True)
        if response.status >= 400:
            self._raise(response, response.read())
        try:
            lines = (line.decode("utf-8") for line in response)
            for event, payload in parse_sse_stream(lines):
                yield event, payload
                if event == "end":
                    return
        finally:
            self.close()


__all__ = ["ServiceClient", "ServiceError"]
