"""The throughput service: asyncio front-end over one shared Session.

Architecture (see docs/architecture.md, "Service layer"):

* The **event loop** owns every piece of mutable service state —
  admission counts, the job table, job event queues.  Handlers run on the
  loop; worker threads never touch that state directly, they schedule
  mutations back with ``call_soon_threadsafe``.
* **Jobs** execute on a thread pool sized to the admission budget.  A
  query job tags its thread with the client's tenant
  (:func:`repro.batch.use_tenant`), resolves the instance spec through
  the bounded :class:`~repro.service.queries.InstanceCache`, and calls
  :meth:`Session.query <repro.api.Session.query>` — the thread-safe,
  single-flight-deduped primitive, so N clients asking one topology cost
  one solve.  An experiment job drives :meth:`Session.stream
  <repro.api.Session.stream>` and forwards each typed event to the loop.
* **SSE** maps the stream's event types 1:1 onto frames — ``row``,
  ``progress``, ``batch``, ``shard``, ``result`` (plus ``error``) — and a
  job retains its frames, so a consumer attaching late replays the
  identical stream.
* **Backpressure**: a full admission budget answers ``429`` with
  ``Retry-After``; a tenant over its cap likewise; a draining service
  answers ``503``.  Slots are released by job *completion* (scheduled
  from the job thread's ``finally``), so a client that times out or
  disconnects cannot leak a slot: the solve finishes, warms the cache,
  and frees the budget.
* **Drain**: SIGTERM/SIGINT stops admission, waits up to the grace
  period for running jobs, then closes the listener and the session.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.api.events import (
    BatchStatsEvent,
    ExperimentEvent,
    ProgressEvent,
    ResultEvent,
    RowEvent,
    ShardProgressEvent,
)
from repro.api.session import Session
from repro.batch import use_tenant
from repro.service.http import (
    HttpError,
    Request,
    SSEWriter,
    error_response,
    json_response,
    read_request,
)
from repro.service.jobs import STREAM_END, Admission, Job, JobTable
from repro.service.queries import InstanceCache, QuerySpec, parse_query
from repro.throughput.modelcache import model_cache
from repro.utils.envknobs import knob_int
from repro.utils.serialization import _coerce

#: Default service port (``REPRO_SERVICE_PORT`` overrides, flags trump both).
DEFAULT_PORT = 8432

#: Wall-clock budget for one synchronous ``/throughput`` call.
DEFAULT_REQUEST_TIMEOUT = 300.0

#: How long ``drain`` waits for running jobs before giving up on them.
DEFAULT_DRAIN_GRACE = 30.0


def resolve_max_inflight(workers: int, value: Optional[int] = None) -> int:
    """Admission budget: flag > ``REPRO_SERVICE_MAX_INFLIGHT`` > derived.

    The derived default is ``2x`` the solver's worker processes (so the
    pool stays saturated while cache hits fly past it) with a floor of 8
    (cache-hit traffic needs no workers at all).
    """
    if value is None:
        value = knob_int("REPRO_SERVICE_MAX_INFLIGHT")
    if value is None:
        value = max(8, 2 * max(1, workers))
    if value < 1:
        raise ValueError(f"max_inflight must be >= 1, got {value}")
    return value


def resolve_tenant_cap(max_inflight: int, value: Optional[int] = None) -> int:
    """Per-tenant cap: flag > ``REPRO_SERVICE_TENANT_CAP`` > half the budget."""
    if value is None:
        value = knob_int("REPRO_SERVICE_TENANT_CAP")
    if value is None:
        value = max(1, max_inflight // 2)
    if value < 1:
        raise ValueError(f"tenant_cap must be >= 1, got {value}")
    return value


@dataclass
class ServiceConfig:
    """Resolved service knobs (see the envknobs table in the README)."""

    host: str = "127.0.0.1"
    port: Optional[int] = None
    max_inflight: Optional[int] = None
    tenant_cap: Optional[int] = None
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    drain_grace: float = DEFAULT_DRAIN_GRACE

    def resolved_port(self) -> int:
        port = self.port
        if port is None:
            port = knob_int("REPRO_SERVICE_PORT", DEFAULT_PORT)
        assert port is not None
        return port


def event_frame(event: ExperimentEvent) -> Tuple[str, Dict[str, Any]]:
    """Map one typed stream event onto its SSE ``(name, payload)`` frame."""
    if isinstance(event, RowEvent):
        return "row", {
            "experiment_id": event.experiment_id,
            "index": event.index,
            "row": _coerce(list(event.row)),
        }
    if isinstance(event, ProgressEvent):
        return "progress", {
            "experiment_id": event.experiment_id,
            "done": event.done,
            "total": event.total,
        }
    if isinstance(event, BatchStatsEvent):
        return "batch", {
            "experiment_id": event.experiment_id,
            "stats": _coerce(event.stats),
        }
    if isinstance(event, ShardProgressEvent):
        return "shard", {
            "experiment_id": event.experiment_id,
            "blocks": event.blocks,
            "round": event.round,
            "max_rounds": event.max_rounds,
            "lower_bound": event.lower_bound,
            "upper_bound": event.upper_bound,
            "relative_gap": event.relative_gap,
        }
    if isinstance(event, ResultEvent):
        result = event.result
        return "result", {
            "experiment_id": event.experiment_id,
            "elapsed_seconds": event.elapsed_seconds,
            "title": result.title,
            "headers": list(result.headers),
            "rows": _coerce([list(row) for row in result.rows]),
            "checks": dict(result.checks),
            "notes": result.notes,
            "batch": _coerce(result.extras.get("batch", {})),
        }
    raise TypeError(f"unmapped stream event {type(event).__name__}")


class ThroughputService:
    """One shared :class:`Session` behind an asyncio HTTP front-end."""

    def __init__(
        self, session: Session, config: Optional[ServiceConfig] = None
    ) -> None:
        self.session = session
        self.config = config or ServiceConfig()
        budget = resolve_max_inflight(
            session.solver.workers, self.config.max_inflight
        )
        self.admission = Admission(
            max_inflight=budget,
            tenant_cap=resolve_tenant_cap(budget, self.config.tenant_cap),
        )
        self.jobs = JobTable()
        self.instances = InstanceCache()
        self.executor = ThreadPoolExecutor(
            max_workers=budget, thread_name_prefix="repro-service"
        )
        self.draining = False
        self.started_at = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drained = asyncio.Event()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.resolved_port(),
        )
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (POSIX loops only)."""
        assert self._loop is not None
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def drain(self) -> None:
        """Stop admitting, wait for running jobs (bounded), then shut down."""
        if self.draining:
            return
        self.draining = True
        running = self.jobs.running()
        if running:
            waits = [job.done.wait() for job in running]
            try:
                await asyncio.wait_for(
                    asyncio.gather(*waits), timeout=self.config.drain_grace
                )
            except asyncio.TimeoutError:
                pass  # grace expired; abandon stragglers
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.executor.shutdown(wait=False, cancel_futures=True)
        self._drained.set()

    # ----------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(error_response(exc.status, exc.message))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    done = await self._dispatch(request, writer)
                except HttpError as exc:
                    extra = (
                        {"Retry-After": exc.retry_after}
                        if getattr(exc, "retry_after", None)
                        else {}
                    )
                    writer.write(
                        error_response(exc.status, exc.message, **extra)
                    )
                    await writer.drain()
                    break
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    writer.write(error_response(500, f"internal error: {exc}"))
                    await writer.drain()
                    break
                if done or not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request.  Returns True when the connection must close
        (streaming responses own the socket until the stream ends)."""
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            await self._write(writer, self._healthz())
            return False
        if path == "/stats" and method == "GET":
            await self._write(writer, json_response(200, self.stats()))
            return False
        if path == "/throughput" and method in ("GET", "POST"):
            await self._write(writer, await self._throughput(request))
            return False
        if path == "/jobs" and method == "POST":
            await self._write(writer, self._submit(request))
            return False
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_events(rest[: -len("/events")], writer)
                return True
            job = self.jobs.get(rest)
            if job is None:
                raise HttpError(404, f"unknown job {rest!r}")
            await self._write(writer, json_response(200, job.describe()))
            return False
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    # -------------------------------------------------------------- handlers
    def _healthz(self) -> bytes:
        status = "draining" if self.draining else "ok"
        return json_response(
            200 if not self.draining else 503,
            {
                "status": status,
                "inflight": self.admission.inflight,
                "uptime_seconds": time.time() - self.started_at,
            },
        )

    def stats(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "service": {
                "draining": self.draining,
                "uptime_seconds": time.time() - self.started_at,
                "admission": self.admission.stats(),
                "jobs": self.jobs.stats(),
                "instance_cache": self.instances.stats(),
                # The service process's compiled-LP-model cache (inline
                # solves); pool workers hold their own, visible instead
                # through the solver's skeleton hit/miss counters.
                "model_cache": model_cache().stats(),
            },
            "solver": _coerce(self.session.stats()),
        }
        if self.session.cache is not None:
            doc["cache"] = _coerce(self.session.cache.stats())
        return doc

    def _admit(self, tenant: str) -> None:
        if self.draining:
            raise HttpError(503, "service is draining")
        ok, why = self.admission.try_admit(tenant)
        if not ok:
            exc = HttpError(429, why)
            exc.retry_after = "1"  # type: ignore[attr-defined]
            raise exc

    def _launch(self, job: Job, fn, *args) -> None:
        """Admitted -> tracked -> running; the slot frees on completion."""
        assert self._loop is not None
        self.jobs.add(job)
        loop = self._loop

        def release_once() -> None:
            if not job._released:
                job._released = True
                self.admission.release(job.tenant)

        job.release_once = release_once  # type: ignore[attr-defined]
        try:
            future = self.executor.submit(fn, job, loop, *args)
        except RuntimeError as exc:  # executor shut down mid-drain
            job.finish("error", f"service shutting down: {exc}")
            release_once()
            return
        job.future = future  # type: ignore[attr-defined]

    def _finish_job(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]],
        error: Optional[str],
    ) -> None:
        """Terminal bookkeeping, always on the loop thread."""
        if job.status != "running":
            return
        if result is not None:
            job.result = result
            # Experiment streams already emitted their ResultEvent frame;
            # only query jobs need the terminal result published here.
            if not any(name == "result" for name, _ in job.frames):
                job.publish("result", result)
        if error is not None:
            job.publish("error", {"error": error})
        job.finish(status, error)
        release = getattr(job, "release_once", None)
        if release is not None:
            release()

    # ----------------------------------------------------------------- query
    async def _throughput(self, request: Request) -> bytes:
        """Synchronous query: admit, solve (or hit the cache), answer."""
        doc = request.json() if request.method == "POST" else _doc_from_query(
            request.query
        )
        spec = parse_query(doc)
        tenant = request.tenant
        self._admit(tenant)
        job = Job(kind="query", tenant=tenant, detail=spec.canonical()[:120])
        self._launch(job, self._run_query, spec)
        timeout = _timeout_of(request, self.config.request_timeout)
        try:
            await asyncio.wait_for(job.done.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            future = getattr(job, "future", None)
            if future is not None and future.cancel():
                # Never started: give the slot back immediately.
                self._finish_job(job, "cancelled", None, "timed out queued")
                raise HttpError(
                    429, f"query queued longer than {timeout:.0f}s; retry"
                )
            raise HttpError(
                504,
                f"query exceeded {timeout:.0f}s; it continues in job "
                f"{job.id} and will warm the cache",
            )
        if job.status != "done" or job.result is None:
            raise HttpError(500, job.error or "query failed")
        return json_response(200, dict(job.result, job=job.id))

    def _run_query(
        self, job: Job, loop: asyncio.AbstractEventLoop, spec: QuerySpec
    ) -> None:
        """Job-thread body of one query (sync or submitted)."""
        try:
            with use_tenant(job.tenant):
                topology, tm = self.instances.resolve(spec)
                t0 = time.perf_counter()
                outcome = self.session.query(
                    topology,
                    tm,
                    engine=spec.engine,
                    params=spec.params,
                    tag=f"service:{job.id}",
                )
                elapsed = time.perf_counter() - t0
            result = outcome.require()
            doc = {
                "value": result.value,
                "engine": result.engine,
                "from_cache": outcome.from_cache,
                "skipped_by_bound": bool(result.meta.get("skipped_by_bound")),
                "solve_seconds": result.solve_seconds,
                "elapsed_seconds": elapsed,
                "n_variables": result.n_variables,
                "n_constraints": result.n_constraints,
                "key": outcome.key,
            }
            loop.call_soon_threadsafe(self._finish_job, job, "done", doc, None)
        except HttpError as exc:
            loop.call_soon_threadsafe(
                self._finish_job, job, "error", None, exc.message
            )
        except BaseException as exc:  # noqa: BLE001 - surfaces as job error
            loop.call_soon_threadsafe(
                self._finish_job, job, "error", None, str(exc)
            )

    # ------------------------------------------------------------------ jobs
    def _submit(self, request: Request) -> bytes:
        """``POST /jobs``: admit a query or experiment job, return its id."""
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "job document must be a JSON object")
        tenant = request.tenant
        if "experiment" in doc:
            experiment_id = doc["experiment"]
            try:
                self.session.spec(experiment_id)
            except KeyError as exc:
                raise HttpError(
                    400, f"unknown experiment {experiment_id!r}"
                ) from exc
            seed = doc.get("seed")
            if seed is not None and not isinstance(seed, int):
                raise HttpError(400, "'seed' must be an integer")
            self._admit(tenant)
            job = Job(kind="experiment", tenant=tenant, detail=experiment_id)
            self._launch(job, self._run_experiment, experiment_id, seed)
        else:
            spec = parse_query(doc)
            self._admit(tenant)
            job = Job(kind="query", tenant=tenant, detail=spec.canonical()[:120])
            self._launch(job, self._run_query, spec)
        return json_response(
            202,
            {
                "job": job.id,
                "kind": job.kind,
                "status": job.status,
                "events": f"/jobs/{job.id}/events",
            },
        )

    def _run_experiment(
        self,
        job: Job,
        loop: asyncio.AbstractEventLoop,
        experiment_id: str,
        seed: Optional[int],
    ) -> None:
        """Job-thread body of one experiment stream.

        ``Session.stream`` serializes experiments on the session's
        executive lock, so concurrent experiment jobs queue here (their
        admission slots stay claimed — deliberate: an experiment *is* a
        big chunk of the budget) while query jobs keep flowing.
        """
        try:
            with use_tenant(job.tenant):
                summary: Optional[Dict[str, Any]] = None
                for event in self.session.stream(experiment_id, seed=seed):
                    name, payload = event_frame(event)
                    if name == "result":
                        summary = {
                            "experiment_id": payload["experiment_id"],
                            "elapsed_seconds": payload["elapsed_seconds"],
                            "rows": len(payload["rows"]),
                            "checks": payload["checks"],
                        }
                    loop.call_soon_threadsafe(job.publish, name, payload)
            loop.call_soon_threadsafe(
                self._finish_job, job, "done", summary, None
            )
        except BaseException as exc:  # noqa: BLE001 - surfaces as job error
            loop.call_soon_threadsafe(
                self._finish_job, job, "error", None, str(exc)
            )

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /jobs/<id>/events``: SSE replay + live tail of one job."""
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        sse = SSEWriter(writer)
        await sse.start()
        sent = 0
        # Replay everything already published, then chase the live queue.
        while True:
            while sent < len(job.frames):
                name, payload = job.frames[sent]
                await sse.send(name, payload)
                sent += 1
            if job.status != "running":
                await sse.send("end", {"job": job.id, "status": job.status})
                return
            item = await job.queue.get()
            if item == STREAM_END:
                continue  # terminal status lands on the next loop turn


def _doc_from_query(query: Dict[str, str]) -> Dict[str, Any]:
    """Build a query document from ``GET /throughput`` URL parameters."""
    doc: Dict[str, Any] = {}
    topo: Dict[str, Any] = {}
    for name in ("family", "seed", "ladder", "max_servers"):
        if name in query:
            topo[name] = query[name]
    if topo:
        doc["topology"] = topo
    if "tm" in query:
        doc["tm"] = {"kind": query["tm"]}
    if "engine" in query:
        doc["engine"] = query["engine"]
    if "params" in query:
        try:
            doc["params"] = json.loads(query["params"])
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"'params' is not JSON: {exc}") from exc
    return doc


def _timeout_of(request: Request, default: float) -> float:
    raw = request.query.get("timeout")
    if raw is None:
        return default
    try:
        timeout = float(raw)
    except ValueError as exc:
        raise HttpError(400, "'timeout' must be a number") from exc
    if timeout <= 0:
        raise HttpError(400, "'timeout' must be positive")
    return min(timeout, default)


async def _serve_async(
    session: Session, config: ServiceConfig, ready=None
) -> None:
    service = ThroughputService(session, config)
    host, port = await service.start()
    service.install_signal_handlers()
    if ready is not None:
        ready(service, host, port)
    print(f"repro service listening on http://{host}:{port}", flush=True)
    await service.wait_drained()
    print("repro service drained; bye", flush=True)


def serve(session: Session, config: Optional[ServiceConfig] = None) -> None:
    """Blocking entry point: serve until SIGTERM/SIGINT, then drain."""
    try:
        asyncio.run(_serve_async(session, config or ServiceConfig()))
    except KeyboardInterrupt:
        # The signal handler normally drains first; a second Ctrl-C lands
        # here and just exits.
        pass


__all__ = [
    "DEFAULT_PORT",
    "ServiceConfig",
    "ThroughputService",
    "event_frame",
    "resolve_max_inflight",
    "resolve_tenant_cap",
    "serve",
]
