"""In-process load generator for the throughput service.

Drives N concurrent simulated clients — each its own thread, its own
keep-alive connection, its own tenant label — through a shared work queue
of query documents, and reports queries/sec plus latency percentiles.
Used by ``benchmarks/test_service_load.py`` (cold-vs-warm comparison for
``BENCH_service.json``) and the CI ``service-smoke`` job; it lives in the
package so `repro serve` deployments can reuse it against a live host.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Sequence

from repro.service.client import ServiceClient, ServiceError


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def run_load(
    host: str,
    port: int,
    docs: Sequence[Dict[str, Any]],
    n_clients: int = 8,
    repeat: int = 1,
    tenant_prefix: str = "client",
    deadline_seconds: float = 120.0,
) -> Dict[str, Any]:
    """Fan ``docs`` (x ``repeat``) across ``n_clients`` concurrent clients.

    Every request retries politely on 429, so a saturated service slows
    the generator down instead of failing it — exactly the admission
    contract.  Returns aggregate stats::

        {"queries": n, "errors": n, "seconds": s, "qps": q,
         "latency": {"p50": s, "p90": s, "p99": s, "max": s},
         "from_cache": n, "solved": n, "per_tenant": {...}}
    """
    work: "queue.Queue[Dict[str, Any]]" = queue.Queue()
    for _ in range(repeat):
        for doc in docs:
            work.put(doc)
    n_total = work.qsize()

    latencies: List[float] = []
    outcomes: List[Dict[str, Any]] = []
    errors: List[str] = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        tenant = f"{tenant_prefix}-{index}"
        with ServiceClient(host, port, tenant=tenant) as client:
            while True:
                try:
                    doc = work.get_nowait()
                except queue.Empty:
                    return
                t0 = time.perf_counter()
                try:
                    answer = client.query_with_retry(
                        doc, deadline_seconds=deadline_seconds
                    )
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                        outcomes.append(answer)
                except ServiceError as exc:
                    with lock:
                        errors.append(f"{tenant}: {exc}")
                finally:
                    work.task_done()

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - t0

    n_ok = len(outcomes)
    return {
        "clients": n_clients,
        "queries": n_ok,
        "requested": n_total,
        "errors": len(errors),
        "error_samples": errors[:5],
        "seconds": seconds,
        "qps": (n_ok / seconds) if seconds > 0 else 0.0,
        "latency": {
            "p50": percentile(latencies, 50),
            "p90": percentile(latencies, 90),
            "p99": percentile(latencies, 99),
            "max": max(latencies, default=0.0),
        },
        "from_cache": sum(1 for o in outcomes if o.get("from_cache")),
        "values": sorted({round(o["value"], 12) for o in outcomes}),
    }


__all__ = ["percentile", "run_load"]
