"""Query specs: JSON documents naming (or carrying) one throughput instance.

The service accepts two instance shapes:

* **Named topology** — ``{"family": "jellyfish"}`` resolves the family's
  registry representative; add ``"ladder": i, "max_servers": m`` to pick
  rung ``i`` of the family's scale ladder instead.  ``"seed"`` feeds the
  randomized families (default 0, so two clients naming the same spec get
  the *same* instance and therefore the same cache key).
* **Uploaded adjacency** — ``{"adjacency": [[...], ...]}``: a square
  capacity matrix (``adjacency[u][v]`` = directed capacity, 0 = no arc),
  compiled straight into an :class:`~repro.core.ArcGraph` without ever
  touching networkx.

Traffic matrices: ``{"tm": {"kind": "all_to_all"}}`` (default; named
topologies only — it needs server placements), ``{"kind": "uniform"}``
(all-pairs ``1/(n-1)``, the upload-friendly hose-feasible default), or an
uploaded dense ``{"demand": [[...], ...]}``.

Resolved instances are memoized process-wide (bounded, LRU): topology
construction + arc compilation costs milliseconds — enough to dominate a
warm cache hit — and the memo key is the canonical spec JSON, so repeat
queries for popular topologies skip straight to the solver's
content-addressed cache.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core import ArcGraph
from repro.service.http import HttpError
from repro.topologies import FAMILY_ORDER, representative, scale_ladder
from repro.topologies.base import Topology
from repro.traffic import TrafficMatrix, all_to_all

#: Resolved-instance memo size (specs, not solve results — those live in
#: the persistent content-addressed cache).
INSTANCE_CACHE_SIZE = 128

#: Engines a query may name (mirrors repro.batch.DEFAULT_ENGINE_CHOICES).
#: ``sim`` works on uploaded adjacencies too — its route compiler runs
#: directly on the bare :class:`~repro.core.ArcGraph`.
QUERY_ENGINES = ("lp", "mwu", "sharded", "auto", "sim")


@dataclass(frozen=True)
class QuerySpec:
    """One validated throughput query (instance + engine + params)."""

    topology_doc: Dict[str, Any]
    tm_doc: Dict[str, Any]
    engine: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        """Stable JSON identity of the *instance* part (memo key)."""
        return json.dumps(
            {"topology": self.topology_doc, "tm": self.tm_doc}, sort_keys=True
        )


def parse_query(doc: Any) -> QuerySpec:
    """Validate a request document into a :class:`QuerySpec` (400 on junk)."""
    if not isinstance(doc, dict):
        raise HttpError(400, "query document must be a JSON object")
    topo_doc = doc.get("topology", doc)  # flat or nested form
    if not isinstance(topo_doc, dict):
        raise HttpError(400, "'topology' must be a JSON object")
    topo: Dict[str, Any] = {}
    if "adjacency" in topo_doc:
        adjacency = topo_doc["adjacency"]
        if not isinstance(adjacency, list) or not adjacency:
            raise HttpError(400, "'adjacency' must be a non-empty 2-D list")
        topo["adjacency"] = adjacency
    elif "family" in topo_doc:
        family = topo_doc["family"]
        if family not in FAMILY_ORDER:
            raise HttpError(
                400,
                f"unknown family {family!r}; known: {', '.join(FAMILY_ORDER)}",
            )
        topo["family"] = family
        topo["seed"] = _as_int(topo_doc.get("seed", 0), "seed")
        if "ladder" in topo_doc:
            topo["ladder"] = _as_int(topo_doc["ladder"], "ladder")
            topo["max_servers"] = _as_int(
                topo_doc.get("max_servers", 256), "max_servers"
            )
    else:
        raise HttpError(400, "topology needs either 'family' or 'adjacency'")

    tm_doc = doc.get("tm", {})
    if not isinstance(tm_doc, dict):
        raise HttpError(400, "'tm' must be a JSON object")
    tm: Dict[str, Any] = {}
    if "demand" in tm_doc:
        if not isinstance(tm_doc["demand"], list) or not tm_doc["demand"]:
            raise HttpError(400, "'demand' must be a non-empty 2-D list")
        tm["demand"] = tm_doc["demand"]
    else:
        kind = tm_doc.get("kind", "all_to_all" if "family" in topo else "uniform")
        if kind not in ("all_to_all", "uniform"):
            raise HttpError(
                400, f"unknown tm kind {kind!r}; expected all_to_all | uniform"
            )
        if kind == "all_to_all" and "adjacency" in topo:
            raise HttpError(
                400,
                "tm kind 'all_to_all' needs server placements; uploaded "
                "adjacencies have none — use kind 'uniform' or upload 'demand'",
            )
        tm["kind"] = kind

    engine = doc.get("engine")
    if engine is not None and engine not in QUERY_ENGINES:
        raise HttpError(
            400, f"unknown engine {engine!r}; expected one of {QUERY_ENGINES}"
        )
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise HttpError(400, "'params' must be a JSON object")
    return QuerySpec(
        topology_doc=topo, tm_doc=tm, engine=engine, params=dict(params)
    )


def _as_int(value: Any, name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise HttpError(400, f"{name!r} must be an integer") from exc


# --------------------------------------------------------------- resolution
def _build_topology(doc: Dict[str, Any]) -> Union[Topology, ArcGraph]:
    if "adjacency" in doc:
        return _arcgraph_from_adjacency(doc["adjacency"])
    family, seed = doc["family"], doc["seed"]
    if "ladder" in doc:
        ladder = scale_ladder(family, doc["max_servers"], seed=seed)
        if not ladder:
            raise HttpError(
                400,
                f"family {family!r} has no instance under "
                f"{doc['max_servers']} servers",
            )
        index = doc["ladder"]
        if not 0 <= index < len(ladder):
            raise HttpError(
                400,
                f"ladder index {index} out of range; family {family!r} has "
                f"{len(ladder)} rung(s) under {doc['max_servers']} servers",
            )
        return ladder[index]
    return representative(family, seed=seed)


def _arcgraph_from_adjacency(adjacency: Any) -> ArcGraph:
    try:
        dense = np.asarray(adjacency, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise HttpError(400, f"adjacency is not numeric: {exc}") from exc
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise HttpError(400, f"adjacency must be square, got shape {dense.shape}")
    if np.any(dense < 0):
        raise HttpError(400, "adjacency capacities must be non-negative")
    tails, heads = np.nonzero(dense)
    if tails.size == 0:
        raise HttpError(400, "adjacency has no arcs")
    try:
        return ArcGraph(dense.shape[0], tails, heads, dense[tails, heads])
    except ValueError as exc:
        raise HttpError(400, f"bad adjacency: {exc}") from exc


def _build_tm(
    doc: Dict[str, Any], topology: Union[Topology, ArcGraph]
) -> TrafficMatrix:
    if "demand" in doc:
        try:
            tm = TrafficMatrix(
                demand=np.asarray(doc["demand"], dtype=np.float64), kind="uploaded"
            )
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad demand matrix: {exc}") from exc
        n = topology.n_nodes if isinstance(topology, ArcGraph) else len(
            topology.servers
        )
        if tm.n_nodes != n:
            raise HttpError(
                400,
                f"demand is {tm.n_nodes}x{tm.n_nodes} but the topology has "
                f"{n} nodes",
            )
        return tm
    if doc["kind"] == "all_to_all":
        assert isinstance(topology, Topology)  # parse_query rejected uploads
        return all_to_all(topology)
    n = topology.n_nodes if isinstance(topology, ArcGraph) else len(topology.servers)
    if n < 2:
        raise HttpError(400, "uniform tm needs at least 2 nodes")
    demand = np.full((n, n), 1.0 / (n - 1))
    np.fill_diagonal(demand, 0.0)
    return TrafficMatrix(demand=demand, kind="uniform", meta={"n_nodes": n})


class InstanceCache:
    """Bounded, thread-safe memo ``canonical spec -> (topology, tm)``.

    Hit rate is the service's warm-path speedup: repeat queries skip
    topology construction and arc compilation and go straight to the
    solver's content-addressed result cache.
    """

    def __init__(self, max_entries: int = INSTANCE_CACHE_SIZE) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._mem: Dict[str, Tuple[Union[Topology, ArcGraph], TrafficMatrix]] = {}

    def resolve(
        self, spec: QuerySpec
    ) -> Tuple[Union[Topology, ArcGraph], TrafficMatrix]:
        key = spec.canonical()
        with self._lock:
            if key in self._mem:
                self.hits += 1
                self._mem[key] = self._mem.pop(key)  # LRU refresh
                return self._mem[key]
            self.misses += 1
        # Build outside the lock: ladder construction can take a while and
        # concurrent distinct specs should not serialize on it.  A racing
        # duplicate build is benign (same spec -> same instance).
        topology = _build_topology(spec.topology_doc)
        tm = _build_tm(spec.tm_doc, topology)
        with self._lock:
            self._mem[key] = (topology, tm)
            while len(self._mem) > self.max_entries:
                self._mem.pop(next(iter(self._mem)))
        return topology, tm

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._mem),
                "hits": self.hits,
                "misses": self.misses,
            }


__all__ = [
    "InstanceCache",
    "QuerySpec",
    "QUERY_ENGINES",
    "parse_query",
]
