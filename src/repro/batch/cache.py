"""Persistent content-addressed cache of throughput results.

Storage is an append-only JSON-lines file (``results.jsonl``) under the
cache directory — human-inspectable, diff-friendly, and safe to append to
from a single writer process (the :class:`~repro.batch.solver.BatchSolver`
parent; workers never touch the file).  Keys are the digests produced by
:func:`repro.batch.jobs.instance_key`, so a cache hit is guaranteed to be
the same numerical instance regardless of which experiment or run produced
it.

The cache directory resolves, in order: the explicit ``cache_dir``
argument, the ``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro``.

Values persist everything of a :class:`ThroughputResult` except ``flows``
(per-source arc-flow arrays are huge and only requested explicitly; those
requests bypass the cache entirely — see ``SolveRequest.cacheable``).
Floats round-trip exactly through JSON (``repr`` is shortest-exact), so a
warm-cache rerun reproduces bit-identical experiment rows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.throughput.lp import ThroughputResult
from repro.utils.serialization import _coerce

#: Default cache location when neither argument nor env var is given.
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: JSON-lines file holding one {"key": ..., "result": ...} record per line.
CACHE_FILENAME = "results.jsonl"


def resolve_cache_dir(cache_dir: Optional[os.PathLike | str] = None) -> Path:
    """Resolve the cache directory (argument > ``REPRO_CACHE_DIR`` > default)."""
    raw = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return Path(raw).expanduser()


def _result_to_doc(result: ThroughputResult) -> Dict[str, Any]:
    return {
        "value": float(result.value),
        "engine": result.engine,
        "n_variables": int(result.n_variables),
        "n_constraints": int(result.n_constraints),
        "solve_seconds": float(result.solve_seconds),
        "meta": _coerce(result.meta),
    }


def _result_from_doc(doc: Dict[str, Any]) -> ThroughputResult:
    return ThroughputResult(
        value=float(doc["value"]),
        engine=doc.get("engine", "lp"),
        n_variables=int(doc.get("n_variables", 0)),
        n_constraints=int(doc.get("n_constraints", 0)),
        solve_seconds=float(doc.get("solve_seconds", 0.0)),
        flows=None,
        meta=dict(doc.get("meta", {})),
    )


class ResultCache:
    """On-disk memo of ``instance key -> ThroughputResult``.

    The JSONL file is read once, lazily; later ``put`` calls update the
    in-memory map and append a line.  Duplicate keys are harmless — the
    last line wins on load, and ``put`` skips keys already present.
    """

    def __init__(self, cache_dir: Optional[os.PathLike | str] = None) -> None:
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.path = self.cache_dir / CACHE_FILENAME
        self._mem: Optional[Dict[str, ThroughputResult]] = None
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------ I/O
    def _load(self) -> Dict[str, ThroughputResult]:
        if self._mem is None:
            self._mem = {}
            if self.path.exists():
                with self.path.open("r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            doc = json.loads(line)
                            self._mem[doc["key"]] = _result_from_doc(doc["result"])
                        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                            continue  # tolerate a torn/corrupt trailing line
        return self._mem

    def get(self, key: str) -> Optional[ThroughputResult]:
        """Cached result for ``key``, or None.  Counts hit/miss stats."""
        result = self._load().get(key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def contains(self, key: str) -> bool:
        """Membership test that does not disturb hit/miss counters."""
        return key in self._load()

    def put(self, key: str, result: ThroughputResult) -> None:
        """Persist one result (no-op if the key is already stored)."""
        mem = self._load()
        if key in mem:
            return
        mem[key] = result
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps({"key": key, "result": _result_to_doc(result)}) + "\n"
            )
        self.puts += 1

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        n = len(self)
        if self.path.exists():
            self.path.unlink()
        self._mem = {}
        return n

    # ---------------------------------------------------------------- stats
    def __len__(self) -> int:
        return len(self._load())

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
        }
