"""Persistent content-addressed caches of throughput results.

Two interchangeable backends implement the :class:`BaseResultCache`
interface the :class:`~repro.batch.solver.BatchSolver` consumes:

* :class:`ResultCache` — an append-only JSON-lines file
  (``results.jsonl``): human-inspectable, diff-friendly, and safe to
  append to from a single writer process (the solver parent; workers
  never touch the file).
* :class:`SqliteResultCache` — a sqlite database (``results.sqlite``) in
  WAL mode with a busy timeout, safe for *concurrent writer processes*
  (several sweeps sharing one cache directory).

Keys are the digests produced by :func:`repro.batch.jobs.instance_key`,
so a cache hit is guaranteed to be the same numerical instance regardless
of which experiment or run produced it.

Both backends honor optional size caps (``max_entries`` entries /
``max_mb`` megabytes on disk) with LRU-ish eviction: entries are aged by
last use, and when a ``put`` pushes the store over a cap the least
recently used entries are dropped — the JSONL backend by compacting the
file (rewriting it without the evicted or corrupt lines), the sqlite
backend by deleting rows.

The cache directory resolves, in order: the explicit ``cache_dir``
argument, the ``REPRO_CACHE_DIR`` environment variable, then
``~/.cache/repro``.  The backend resolves: explicit argument, the
``REPRO_CACHE_BACKEND`` environment variable (``jsonl`` | ``sqlite``),
then ``jsonl``.  :func:`make_cache` applies both rules.

Values persist everything of a :class:`ThroughputResult` except ``flows``
(per-source arc-flow arrays are huge and only requested explicitly; those
requests bypass the cache entirely — see ``SolveRequest.cacheable``).
Floats round-trip exactly through JSON (``repr`` is shortest-exact), so a
warm-cache rerun reproduces bit-identical experiment rows.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.batch.tenancy import current_tenant
from repro.throughput.lp import ThroughputResult
from repro.utils.envknobs import knob_str
from repro.utils.serialization import _coerce

#: Default cache location when neither argument nor env var is given.
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: JSON-lines file holding one {"key": ..., "result": ...} record per line.
CACHE_FILENAME = "results.jsonl"

#: Sqlite database file used by the ``sqlite`` backend.
SQLITE_FILENAME = "results.sqlite"

#: Known backend names (the value space of ``REPRO_CACHE_BACKEND``).
CACHE_BACKENDS = ("jsonl", "sqlite")


def resolve_cache_dir(cache_dir: Optional[os.PathLike | str] = None) -> Path:
    """Resolve the cache directory (argument > ``REPRO_CACHE_DIR`` > default)."""
    raw = cache_dir or knob_str("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return Path(raw).expanduser()


def resolve_cache_backend(backend: Optional[str] = None) -> str:
    """Resolve the backend name (argument > ``REPRO_CACHE_BACKEND`` > jsonl)."""
    name = (backend or knob_str("REPRO_CACHE_BACKEND") or "jsonl").lower()
    if name not in CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {name!r}; expected one of {CACHE_BACKENDS}"
        )
    return name


def _result_to_doc(result: ThroughputResult) -> Dict[str, Any]:
    return {
        "value": float(result.value),
        "engine": result.engine,
        "n_variables": int(result.n_variables),
        "n_constraints": int(result.n_constraints),
        "solve_seconds": float(result.solve_seconds),
        "meta": _coerce(result.meta),
    }


#: Fields a stored record must carry to deserialize without invention.
_REQUIRED_DOC_FIELDS = ("value", "engine", "n_variables", "n_constraints", "solve_seconds")


def _result_from_doc(doc: Dict[str, Any]) -> ThroughputResult:
    """Rebuild a result from its stored document.

    Strict: a record missing any required field is *corrupt* (raises
    ``KeyError``) rather than silently deserialized with fabricated engine
    or solver stats — loaders count it and move on.
    """
    missing = [f for f in _REQUIRED_DOC_FIELDS if f not in doc]
    if missing:
        raise KeyError(f"cache record missing fields {missing}")
    return ThroughputResult(
        value=float(doc["value"]),
        engine=str(doc["engine"]),
        n_variables=int(doc["n_variables"]),
        n_constraints=int(doc["n_constraints"]),
        solve_seconds=float(doc["solve_seconds"]),
        flows=None,
        meta=dict(doc.get("meta", {})),
    )


class BaseResultCache:
    """Interface of an on-disk memo ``instance key -> ThroughputResult``.

    Concrete backends provide :meth:`get` / :meth:`contains` / :meth:`put`
    / :meth:`clear` / :meth:`__len__` plus the shared counters below; the
    :class:`~repro.batch.solver.BatchSolver` is backend-agnostic and only
    touches this interface.

    Attributes
    ----------
    path:
        The backing file (jsonl or sqlite database).
    hits, misses, puts:
        Lifetime counters, reset by :meth:`clear`.
    corrupt_lines:
        Stored records that failed to deserialize and were skipped.
    evictions:
        Entries dropped by size-cap enforcement.
    """

    #: Short backend name reported by :meth:`stats`.
    backend = "base"

    def __init__(
        self,
        cache_dir: Optional[os.PathLike | str] = None,
        max_entries: Optional[int] = None,
        max_mb: Optional[float] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_mb is not None and max_mb <= 0:
            raise ValueError(f"max_mb must be > 0, got {max_mb}")
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.max_entries = max_entries
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb is not None else None
        self.path: Path = self.cache_dir  # concrete classes point at a file
        # Re-entrant: ``put`` -> ``_enforce_caps`` -> ``__len__`` nests, and
        # the service front-end probes one shared cache from many threads.
        self._lock = threading.RLock()
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_lines = 0
        self.evictions = 0
        #: Per-tenant ``{"hits": n, "misses": n}`` maps (see repro.batch.tenancy).
        self.tenant_counts: Dict[str, Dict[str, int]] = {}
        self._warned_corrupt = False

    def _count_access(self, hit: bool) -> None:
        """Count one probe globally and, when tagged, against the tenant."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        tenant = current_tenant()
        if tenant:
            counts = self.tenant_counts.setdefault(tenant, {"hits": 0, "misses": 0})
            counts["hits" if hit else "misses"] += 1

    def _warn_corrupt(self) -> None:
        """One warning per cache instance when corrupt records were skipped."""
        if self.corrupt_lines and not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"result cache {self.path} skipped {self.corrupt_lines} "
                "corrupt record(s); 'repro cache' shows the running count",
                RuntimeWarning,
                stacklevel=3,
            )

    # -------------------------------------------------------- backend API
    def get(self, key: str) -> Optional[ThroughputResult]:
        """Cached result for ``key``, or None.  Counts hit/miss stats."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        """Membership test that does not disturb hit/miss counters."""
        raise NotImplementedError

    def put(self, key: str, result: ThroughputResult) -> None:
        """Persist one result (no-op if the key is already stored)."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete all entries and reset counters; returns how many removed."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Current on-disk footprint of the backing file."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {
                "backend": self.backend,
                "path": str(self.path),
                "entries": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt_lines": self.corrupt_lines,
                "evictions": self.evictions,
                "size_bytes": self.size_bytes(),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }
            if self.tenant_counts:
                out["tenants"] = {t: dict(c) for t, c in self.tenant_counts.items()}
        return out


class ResultCache(BaseResultCache):
    """JSONL-backed cache (single writer process).

    The file is read once, lazily; later ``put`` calls update the
    in-memory map and append a line.  Duplicate keys are harmless — the
    last line wins on load, and ``put`` skips keys already present.  The
    in-memory dict is kept in least-recently-used order (hits re-append),
    so cap enforcement compacts the file down to the most recently used
    entries.
    """

    backend = "jsonl"

    def __init__(
        self,
        cache_dir: Optional[os.PathLike | str] = None,
        max_entries: Optional[int] = None,
        max_mb: Optional[float] = None,
    ) -> None:
        super().__init__(cache_dir, max_entries=max_entries, max_mb=max_mb)
        self.path = self.cache_dir / CACHE_FILENAME
        self._mem: Optional[Dict[str, ThroughputResult]] = None

    # ------------------------------------------------------------------ I/O
    def _load(self) -> Dict[str, ThroughputResult]:
        if self._mem is None:
            self._mem = {}
            if self.path.exists():
                with self.path.open("r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            doc = json.loads(line)
                            self._mem[doc["key"]] = _result_from_doc(doc["result"])
                        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                            # Skipped, but *counted*: a torn trailing line is
                            # benign, a growing count is data loss.
                            self.corrupt_lines += 1
                self._warn_corrupt()
        return self._mem

    def get(self, key: str) -> Optional[ThroughputResult]:
        with self._lock:
            mem = self._load()
            result = mem.get(key)
            if result is None:
                self._count_access(hit=False)
                return None
            mem[key] = mem.pop(key)  # refresh LRU position
            self._count_access(hit=True)
            return result

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._load()

    def put(self, key: str, result: ThroughputResult) -> None:
        with self._lock:
            mem = self._load()
            if key in mem:
                return
            mem[key] = result
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps({"key": key, "result": _result_to_doc(result)}) + "\n"
                )
            self.puts += 1
            self._enforce_caps()

    # ------------------------------------------------------------- eviction
    def _over_caps(self, n_entries: int, n_bytes: int) -> bool:
        if self.max_entries is not None and n_entries > self.max_entries:
            return True
        if self.max_bytes is not None and n_bytes > self.max_bytes:
            return True
        return False

    def _enforce_caps(self) -> None:
        """Evict LRU entries and compact the file when a cap is exceeded.

        Eviction has hysteresis: once a cap is exceeded the store shrinks
        to ~90% of it, so a cache at steady state compacts once per ~10%
        of fresh inserts instead of rewriting the whole file on every put.
        Compaction also drops duplicate and corrupt lines as a side effect
        (the rewrite serializes only the live in-memory entries).
        """
        if self.max_entries is None and self.max_bytes is None:
            return
        mem = self._load()
        if not self._over_caps(len(mem), self.size_bytes()):
            return
        target_entries = (
            max(1, self.max_entries * 9 // 10) if self.max_entries is not None else None
        )
        target_bytes = (
            max(1, self.max_bytes * 9 // 10) if self.max_bytes is not None else None
        )
        lines = {
            key: json.dumps({"key": key, "result": _result_to_doc(res)}) + "\n"
            for key, res in mem.items()
        }
        total = sum(len(line.encode("utf-8")) for line in lines.values())
        for key in list(mem):  # LRU order: oldest first
            over = (target_entries is not None and len(mem) > target_entries) or (
                target_bytes is not None and total > target_bytes
            )
            if not over or len(mem) <= 1:
                break
            total -= len(lines.pop(key).encode("utf-8"))
            del mem[key]
            self.evictions += 1
        tmp = self.path.with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.writelines(lines.values())
        os.replace(tmp, self.path)

    def clear(self) -> int:
        with self._lock:
            n = len(self)
            if self.path.exists():
                self.path.unlink()
            self._mem = {}
            self._reset_counters()
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())


class SqliteResultCache(BaseResultCache):
    """Sqlite-backed cache, safe for concurrent writer processes.

    WAL journaling plus a generous busy timeout lets several sweeps share
    one cache directory: each ``put`` is a single ``INSERT OR IGNORE``
    statement (its own transaction), so two processes solving overlapping
    instances race benignly — one insert wins, none is lost, and no key is
    duplicated (``key`` is the primary key).

    A monotonically increasing ``seq`` column orders entries by last use;
    cap enforcement deletes the lowest-``seq`` rows.
    """

    backend = "sqlite"

    def __init__(
        self,
        cache_dir: Optional[os.PathLike | str] = None,
        max_entries: Optional[int] = None,
        max_mb: Optional[float] = None,
    ) -> None:
        super().__init__(cache_dir, max_entries=max_entries, max_mb=max_mb)
        self.path = self.cache_dir / SQLITE_FILENAME
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------ plumbing
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            # check_same_thread=False: the service front-end shares one
            # cache across job threads; our RLock serializes all access.
            conn = sqlite3.connect(
                str(self.path),
                timeout=30.0,
                isolation_level=None,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  key TEXT PRIMARY KEY,"
                "  doc TEXT NOT NULL,"
                "  seq INTEGER NOT NULL"
                ")"
            )
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the sqlite connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------- backend API
    def get(self, key: str) -> Optional[ThroughputResult]:
        with self._lock:
            conn = self._connect()
            row = conn.execute(
                "SELECT doc FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self._count_access(hit=False)
                return None
            try:
                result = _result_from_doc(json.loads(row[0]))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Treat an unreadable row as absent: count it, drop it, re-solve.
                self.corrupt_lines += 1
                conn.execute("DELETE FROM results WHERE key = ?", (key,))
                self._warn_corrupt()
                self._count_access(hit=False)
                return None
            conn.execute(
                "UPDATE results SET seq ="
                " (SELECT COALESCE(MAX(seq), 0) + 1 FROM results)"
                " WHERE key = ?",
                (key,),
            )
            self._count_access(hit=True)
            return result

    def contains(self, key: str) -> bool:
        with self._lock:
            row = self._connect().execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone()
            return row is not None

    def put(self, key: str, result: ThroughputResult) -> None:
        with self._lock:
            conn = self._connect()
            cur = conn.execute(
                "INSERT OR IGNORE INTO results (key, doc, seq) VALUES ("
                "  ?, ?, (SELECT COALESCE(MAX(seq), 0) + 1 FROM results)"
                ")",
                (key, json.dumps(_result_to_doc(result))),
            )
            if cur.rowcount > 0:
                self.puts += 1
                self._enforce_caps(conn)

    def size_bytes(self) -> int:
        """On-disk footprint including the WAL and shared-memory files.

        The main database file stays small while writes accumulate in the
        WAL, so a byte cap that ignored it would never trigger.
        """
        total = 0
        for path in (
            self.path,
            Path(str(self.path) + "-wal"),
            Path(str(self.path) + "-shm"),
        ):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _enforce_caps(self, conn: sqlite3.Connection) -> None:
        # Hysteresis on both caps (shrink to ~90%): steady-state puts must
        # not pay an eviction round — let alone a checkpoint/VACUUM — each.
        if self.max_entries is not None:
            n = len(self)
            if n > self.max_entries:
                cur = conn.execute(
                    "DELETE FROM results WHERE key IN ("
                    "  SELECT key FROM results ORDER BY seq ASC LIMIT ?"
                    ")",
                    (n - max(1, self.max_entries * 9 // 10),),
                )
                self.evictions += max(cur.rowcount, 0)
        if self.max_bytes is not None and self.size_bytes() > self.max_bytes:
            # Only a store over its byte cap pays for checkpoints/VACUUM;
            # the WAL usually holds most of the excess, so truncate it
            # first, then drop LRU rows until comfortably under the cap.
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            target = max(1, self.max_bytes * 9 // 10)
            while self.size_bytes() > target and len(self) > 1:
                cur = conn.execute(
                    "DELETE FROM results WHERE key IN ("
                    "  SELECT key FROM results ORDER BY seq ASC LIMIT ?"
                    ")",
                    (max(1, len(self) // 10),),
                )
                self.evictions += max(cur.rowcount, 0)
                conn.execute("VACUUM")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def clear(self) -> int:
        with self._lock:
            n = len(self)
            conn = self._connect()
            conn.execute("DELETE FROM results")
            conn.execute("VACUUM")
            self._reset_counters()
            return n

    def __len__(self) -> int:
        with self._lock:
            row = self._connect().execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            return int(row[0])


def make_cache(
    cache_dir: Optional[os.PathLike | str] = None,
    backend: Optional[str] = None,
    max_entries: Optional[int] = None,
    max_mb: Optional[float] = None,
) -> Union[ResultCache, SqliteResultCache]:
    """Build the configured cache backend.

    ``backend`` falls back to ``REPRO_CACHE_BACKEND`` then ``"jsonl"``;
    ``cache_dir`` falls back to ``REPRO_CACHE_DIR`` then ``~/.cache/repro``.
    """
    name = resolve_cache_backend(backend)
    cls = SqliteResultCache if name == "sqlite" else ResultCache
    return cls(cache_dir, max_entries=max_entries, max_mb=max_mb)
