"""Ambient batch solver for experiment code.

Experiment functions keep their ``(scale, seed)`` signatures; the runner
installs a :class:`~repro.batch.solver.BatchSolver` for the duration of a
run via :func:`use_solver`, and sweep helpers pick it up with
:func:`get_solver`.  Outside any run, :func:`get_solver` returns a fresh
inline solver (``workers=1``, no cache), which behaves exactly like the
historical call-``throughput()``-in-a-loop code path.

A :class:`contextvars.ContextVar` (not a bare module global) keeps nested
or threaded experiment runs from clobbering each other's solver.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.batch.jobs import SolveRequest
from repro.batch.solver import BatchSolver

_current_solver: ContextVar[Optional[BatchSolver]] = ContextVar(
    "repro_batch_solver", default=None
)


def get_solver() -> BatchSolver:
    """The ambient solver, or a default inline (serial, uncached) one."""
    solver = _current_solver.get()
    if solver is None:
        solver = BatchSolver(workers=1, cache=None)
    return solver


@contextmanager
def use_solver(solver: BatchSolver) -> Iterator[BatchSolver]:
    """Install ``solver`` as the ambient solver within the ``with`` block."""
    token = _current_solver.set(solver)
    try:
        yield solver
    finally:
        _current_solver.reset(token)


def solve_values(requests: Sequence[SolveRequest]) -> List[float]:
    """Throughput values for ``requests`` via the ambient solver.

    One call replaces a historical value-in-a-loop sweep: under
    ``run_experiment`` the batch parallelizes over ``--workers`` and
    memoizes in the result cache; outside any run it degrades to the
    inline serial path with identical values.
    """
    return get_solver().solve_values(requests)


def iter_outcome_values(
    requests: Sequence[SolveRequest], solver: Optional[BatchSolver] = None
) -> Iterator[float]:
    """Submit ``requests`` and yield each value as it resolves, in order.

    The streaming analogue of :func:`solve_values`: values become available
    incrementally (so callers can emit sweep rows while later instances are
    still solving) and any not-yet-consumed jobs are drained on early exit,
    keeping the solver's stream queue consistent.  ``solver`` defaults to
    the ambient one.

    Streams on one solver cannot nest: the solver's outcome queue is a
    single FIFO, so consuming a second stream inside another's loop would
    silently cross-wire their values — detected and rejected here.
    """
    solver = solver if solver is not None else get_solver()
    if solver.pending_outcomes:
        raise RuntimeError(
            f"ambient solver already has {solver.pending_outcomes} unconsumed "
            "streamed outcome(s); nested streaming on one solver is not "
            "supported — finish (or drain) the outer stream first"
        )
    for request in requests:
        solver.submit(request)
    try:
        for outcome in solver.iter_outcomes():
            yield outcome.require().value
    finally:
        # require() raising (or the consumer abandoning the generator) must
        # not leave unconsumed outcomes queued for the next batch.
        solver.drain()


def iter_solve_instances(
    instances: Sequence[Tuple[Any, Any]],
    tm_factory: Callable[[Any], Any],
    engine: Optional[str] = None,
) -> Iterator[Tuple[Any, Any, Any, float]]:
    """Stream throughput of one TM per ``(label, topology)`` pair.

    The common shape of the cut/theorem sweeps: build each topology's
    matrix eagerly in instance order (preserving historical construction
    order), submit the whole list through the ambient solver, and yield
    ``(label, topology, tm, value)`` tuples as each solve completes — the
    caller's per-instance work (cut search, row emission) overlaps the
    remaining solves.  ``engine=None`` defers to the ambient default
    (:func:`repro.batch.jobs.default_engine`), so ``--engine`` overrides
    reach these sweeps.
    """
    instances = list(instances)
    tms = [tm_factory(topo) for _, topo in instances]
    values = iter_outcome_values(
        [
            SolveRequest(topo, tm, engine=engine, tag=topo.name)
            for (_, topo), tm in zip(instances, tms)
        ]
    )
    for (label, topo), tm, value in zip(instances, tms, values):
        yield label, topo, tm, value


def solve_instances(
    instances: Sequence[Tuple[Any, Any]],
    tm_factory: Callable[[Any], Any],
    engine: Optional[str] = None,
) -> List[Tuple[Any, Any, Any, float]]:
    """All-at-once form of :func:`iter_solve_instances` (values in a list)."""
    return list(iter_solve_instances(instances, tm_factory, engine=engine))
