"""Ambient batch solver for experiment code.

Experiment functions keep their ``(scale, seed)`` signatures; the runner
installs a :class:`~repro.batch.solver.BatchSolver` for the duration of a
run via :func:`use_solver`, and sweep helpers pick it up with
:func:`get_solver`.  Outside any run, :func:`get_solver` returns a fresh
inline solver (``workers=1``, no cache), which behaves exactly like the
historical call-``throughput()``-in-a-loop code path.

A :class:`contextvars.ContextVar` (not a bare module global) keeps nested
or threaded experiment runs from clobbering each other's solver.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.batch.solver import BatchSolver

_current_solver: ContextVar[Optional[BatchSolver]] = ContextVar(
    "repro_batch_solver", default=None
)


def get_solver() -> BatchSolver:
    """The ambient solver, or a default inline (serial, uncached) one."""
    solver = _current_solver.get()
    if solver is None:
        solver = BatchSolver(workers=1, cache=None)
    return solver


@contextmanager
def use_solver(solver: BatchSolver) -> Iterator[BatchSolver]:
    """Install ``solver`` as the ambient solver within the ``with`` block."""
    token = _current_solver.set(solver)
    try:
        yield solver
    finally:
        _current_solver.reset(token)
