"""Parallel batch execution of throughput solves.

:class:`BatchSolver` takes a list of :class:`~repro.batch.jobs.SolveRequest`
and returns one :class:`~repro.batch.jobs.SolveOutcome` per request, in
request order, regardless of completion order — so ``workers=N`` is
bit-identical to ``workers=1``.  Three layers:

1. **Cache probe** — requests whose key is already in the
   :class:`~repro.batch.cache.ResultCache` never reach a solver.
2. **Execution** — ``workers=1`` solves inline in the calling process (the
   deterministic CI path, zero pickling); ``workers>1`` fans out over a
   ``ProcessPoolExecutor`` (``workers="auto"`` → ``os.cpu_count()``).
   Independent LP instances parallelize embarrassingly well: HiGHS holds
   the GIL, so threads would not help.
3. **Capture** — each job's exception (or pool timeout) is recorded on its
   own outcome; one infeasible or crashing instance cannot kill a sweep.

Freshly solved cacheable results are written back to the cache by the
parent process only, so there are no concurrent writers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FuturesTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.batch.cache import BaseResultCache
from repro.batch.jobs import BATCH_ENGINES, SolveOutcome, SolveRequest
from repro.throughput.lp import ThroughputResult
from repro.throughput.mcf import throughput


def _dispatch(request: SolveRequest) -> ThroughputResult:
    """Solve one request with the engine it names."""
    if request.engine not in BATCH_ENGINES:
        raise ValueError(
            f"batch layer cannot dispatch engine {request.engine!r}; "
            f"expected one of {BATCH_ENGINES}"
        )
    if request.engine == "paths":
        # Imported here: llskr pulls in networkx path machinery that the
        # plain LP path never needs.
        from repro.throughput.llskr import llskr_exact_throughput

        return llskr_exact_throughput(request.topology, request.tm, **request.params)
    return throughput(
        request.topology, request.tm, engine=request.engine, **request.params
    )


def _solve_captured(request: SolveRequest) -> Tuple[Optional[ThroughputResult], Optional[str]]:
    """Worker entry point: solve, converting any exception into a string.

    Must stay a module-level function (pickled by the process pool).
    """
    try:
        return _dispatch(request), None
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        return None, f"{type(exc).__name__}: {exc}"


def _available_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Union[int, str]) -> int:
    """Normalize the ``workers`` knob: ``"auto"`` → CPU count, else int >= 1.

    ``"auto"`` honors CPU affinity / cgroup limits, so a container allotted
    2 cores on a 64-core host gets 2 workers, not 64.
    """
    if workers == "auto":
        return _available_cpus()
    n = int(workers)
    if n < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return n


class BatchSolver:
    """Fan a batch of throughput solves over workers, memoized by a cache.

    Parameters
    ----------
    workers:
        ``1`` (inline, deterministic, no subprocesses), an int > 1, or
        ``"auto"`` for ``os.cpu_count()``.
    cache:
        Optional :class:`BaseResultCache` backend (JSONL or sqlite — see
        :func:`repro.batch.cache.make_cache`); ``None`` disables
        memoization.
    timeout:
        Optional wall-clock limit in seconds, measured from batch
        submission and applied to every job (pool mode only; the inline
        path runs jobs to completion).  A job that has not finished
        ``timeout`` seconds after its batch was submitted yields an error
        outcome and the rest of the batch proceeds; since all jobs are
        submitted together, this bounds the whole batch wait without one
        slow job consuming a later job's budget.
    """

    def __init__(
        self,
        workers: Union[int, str] = 1,
        cache: Optional[BaseResultCache] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.timeout = timeout
        self._pool: Optional[ProcessPoolExecutor] = None
        self.n_requests = 0
        self.n_solved = 0
        self.n_cache_hits = 0
        self.n_errors = 0
        # Cache counters are cache-lifetime; remember where they stood when
        # this solver started so stats() can report per-solver deltas.
        self._cache_base = (
            (cache.hits, cache.misses, cache.puts) if cache is not None else (0, 0, 0)
        )

    # ------------------------------------------------------------- lifecycle
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _recycle_pool(self) -> None:
        """Discard the pool after a timeout or worker death.

        ``shutdown(wait=False)`` alone would leave a timed-out LP occupying
        a worker (and a later ``close()`` blocking on it), so remaining
        worker processes are terminated best-effort; the next batch gets a
        fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- solving
    def solve(self, request: SolveRequest) -> SolveOutcome:
        """Convenience wrapper: solve a single request."""
        return self.solve_many([request])[0]

    def solve_values(self, requests: Sequence[SolveRequest]) -> List[float]:
        """Throughput values for ``requests``, in request order.

        The mechanical migration path for historical value-in-a-loop code:
        a failed job raises :class:`~repro.batch.jobs.BatchSolveError`
        exactly where the historical serial call would have raised.
        """
        return [o.require().value for o in self.solve_many(requests)]

    def solve_many(self, requests: Sequence[SolveRequest]) -> List[SolveOutcome]:
        """Solve every request; outcomes are returned in request order."""
        outcomes: List[Optional[SolveOutcome]] = [None] * len(requests)
        pending: List[Tuple[int, SolveRequest]] = []
        self.n_requests += len(requests)

        for i, req in enumerate(requests):
            # Only the cached path pays for the content digest; inline
            # uncached solves stay zero-overhead.
            use_cache = self.cache is not None and req.cacheable
            cached = self.cache.get(req.key) if use_cache else None
            if cached is not None:
                self.n_cache_hits += 1
                outcomes[i] = SolveOutcome(
                    key=req.key, tag=req.tag, result=cached, from_cache=True
                )
            else:
                pending.append((i, req))

        if pending:
            # Within-batch dedupe: identical cacheable instances (same
            # content key) are solved once and share the result.  Keys are
            # only consulted when a cache is attached, so the uncached
            # inline path still pays no digest cost.
            unique: List[Tuple[int, SolveRequest]] = []
            alias: List[int] = []  # pending position -> unique position
            first_by_key: Dict[str, int] = {}
            for i, req in pending:
                if self.cache is not None and req.cacheable:
                    u = first_by_key.get(req.key)
                    if u is not None:
                        alias.append(u)
                        continue
                    first_by_key[req.key] = len(unique)
                alias.append(len(unique))
                unique.append((i, req))
            if self.workers == 1:
                solved = [_solve_captured(req) for _, req in unique]
            else:
                solved = self._solve_in_pool([req for _, req in unique])
            primaries = {u: False for u in range(len(unique))}
            for (i, req), u in zip(pending, alias):
                result, error = solved[u]
                use_cache = self.cache is not None and req.cacheable
                is_duplicate = primaries.get(u, False)
                primaries[u] = True
                if error is None and result is not None:
                    if is_duplicate:
                        # Served from the in-batch memo, not a fresh solve.
                        self.n_cache_hits += 1
                    else:
                        self.n_solved += 1
                        if use_cache:
                            self.cache.put(req.key, result)
                else:
                    self.n_errors += 1
                outcomes[i] = SolveOutcome(
                    key=req.key if use_cache else "",
                    tag=req.tag,
                    result=result,
                    error=error,
                    from_cache=is_duplicate and error is None,
                )

        return [o for o in outcomes if o is not None]

    def _solve_in_pool(
        self, requests: Sequence[SolveRequest]
    ) -> List[Tuple[Optional[ThroughputResult], Optional[str]]]:
        pool = self._ensure_pool()
        futures = []
        submit_error: Optional[str] = None
        for req in requests:
            if submit_error is not None:
                futures.append(None)
                continue
            try:
                futures.append(pool.submit(_solve_captured, req))
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                submit_error = f"{type(exc).__name__}: {exc}"
                futures.append(None)
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        results: List[Tuple[Optional[ThroughputResult], Optional[str]]] = []
        needs_recycle = submit_error is not None
        for fut in futures:
            if fut is None:
                results.append((None, submit_error))
                continue
            try:
                remaining = (
                    max(0.0, deadline - time.monotonic())
                    if deadline is not None
                    else None
                )
                results.append(fut.result(timeout=remaining))
            except FuturesTimeout:
                needs_recycle = True
                results.append(
                    (
                        None,
                        f"TimeoutError: job not finished within {self.timeout}s "
                        "of batch submission",
                    )
                )
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                needs_recycle = True
                results.append((None, f"{type(exc).__name__}: {exc}"))
        if needs_recycle:
            # A dead worker poisons a ProcessPoolExecutor forever, and a
            # timed-out job would pin its worker (and block close()); start
            # fresh so the next batch keeps its error isolation.
            self._recycle_pool()
        return results

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """Counters for ``ExperimentResult.extras`` and CLI reporting.

        The nested ``cache`` block reports hit/miss/put counts *since this
        solver was created* (a shared cache accumulates lifetime counters
        across experiments; per-experiment extras must not inherit them),
        plus the cache's current path and size.
        """
        out: Dict[str, Any] = {
            "workers": self.workers,
            "requests": self.n_requests,
            "solved": self.n_solved,
            "cache_hits": self.n_cache_hits,
            "errors": self.n_errors,
        }
        if self.cache is not None:
            base_hits, base_misses, base_puts = self._cache_base
            out["cache"] = {
                "path": str(self.cache.path),
                "entries": len(self.cache),
                "hits": self.cache.hits - base_hits,
                "misses": self.cache.misses - base_misses,
                "puts": self.cache.puts - base_puts,
            }
        return out
