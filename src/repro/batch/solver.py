"""Parallel batch execution of throughput solves.

:class:`BatchSolver` takes a list of :class:`~repro.batch.jobs.SolveRequest`
and returns one :class:`~repro.batch.jobs.SolveOutcome` per request, in
request order, regardless of completion order — so ``workers=N`` is
bit-identical to ``workers=1``.  Three layers:

1. **Cache probe** — requests whose key is already in the
   :class:`~repro.batch.cache.ResultCache` never reach a solver.
2. **Execution** — ``workers=1`` solves inline in the calling process (the
   deterministic CI path, zero pickling); ``workers>1`` fans out over a
   ``ProcessPoolExecutor`` (``workers="auto"`` → ``os.cpu_count()``).
   Independent LP instances parallelize embarrassingly well: HiGHS holds
   the GIL, so threads would not help.
3. **Capture** — each job's exception (or pool timeout) is recorded on its
   own outcome; one infeasible or crashing instance cannot kill a sweep.

Freshly solved cacheable results are written back to the cache by the
parent process only, so there are no concurrent writers.

Two submission styles share those layers: the all-at-once
:meth:`BatchSolver.solve_many`, and the incremental
:meth:`BatchSolver.submit` / :meth:`BatchSolver.iter_outcomes` pair that
releases outcomes in submission order *as they complete* — the substrate of
the streaming experiment runner (:mod:`repro.api`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeout,
    wait as futures_wait,
)
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.batch.cache import BaseResultCache
from repro.batch.jobs import BATCH_ENGINES, SolveOutcome, SolveRequest
from repro.batch.tenancy import current_tenant
from repro.throughput.lp import ThroughputResult
from repro.throughput.mcf import throughput
from repro.throughput.modelcache import group_chunks, request_group_key


def _pinned_params(request: SolveRequest) -> dict:
    """Request params with the LP backend made explicit for dispatch.

    The canonical param form omits the *default* backend from ``lp`` and
    ``sharded`` requests
    (:func:`repro.throughput.backends.normalize_lp_backend_param`); pinning
    it here keeps the key ↔ configuration binding exact even when a request
    is solved under a different ambient backend than it was built under —
    the solve must never re-consult the ambient.
    """
    params = request.params
    if request.engine in ("lp", "sharded") and "lp_backend" not in params:
        from repro.throughput.backends import DEFAULT_LP_BACKEND

        params = {**params, "lp_backend": DEFAULT_LP_BACKEND}
    return params


def _dispatch(request: SolveRequest) -> ThroughputResult:
    """Solve one request with the engine it names.

    A ``sharded`` request landing here (a pool worker, or a solver-less
    call) runs with a private inline sub-solver via
    :func:`repro.throughput.mcf.throughput`; the solver's parent-side
    paths intercept those requests first so block subproblems share the
    batch's pool and cache (see :meth:`BatchSolver._solve_local`).
    """
    if request.engine not in BATCH_ENGINES:
        raise ValueError(
            f"batch layer cannot dispatch engine {request.engine!r}; "
            f"expected one of {BATCH_ENGINES}"
        )
    if request.engine == "paths":
        # Imported here: llskr pulls in networkx path machinery that the
        # plain LP path never needs.
        from repro.throughput.llskr import llskr_exact_throughput

        return llskr_exact_throughput(request.topology, request.tm, **request.params)
    extra = {}
    if request.engine == "lp" and request.hint is not None:
        # Advisory: tightens the child LP's variable box (see
        # repro.throughput.warmstart); never part of the key or params.
        extra["warm_start"] = request.hint
    return throughput(
        request.topology,
        request.tm,
        engine=request.engine,
        **extra,
        **_pinned_params(request),
    )


def bound_skip_result(request: SolveRequest) -> Optional[ThroughputResult]:
    """A hint-certified result for ``request``, or ``None`` if it must solve.

    When a request carries a :class:`~repro.throughput.warmstart.SolveHint`
    whose dual upper bound and flow-scaling lower bound close to within the
    hint's ``rtol``, the child's throughput is already known (up to that
    tolerance) and the LP solve is pure waste.  The synthetic result reports
    the certified-feasible lower bound as its value and records both bounds
    in ``meta`` (``skipped_by_bound=True``); it is **never written to the
    cache** — cached values must be solved values, not rtol-wide intervals.

    Only ``lp`` requests are eligible (the bounds certify the exact
    concurrent-flow optimum, which is what the LP computes; ``mwu``/
    ``paths`` values have their own approximation semantics), and only when
    the caller wants the plain value — ``want_flows`` / ``want_duals``
    require arrays a skipped solve cannot produce.  A hint whose shape does
    not match the instance falls through to a real solve.

    A request carrying a precomputed
    :class:`~repro.throughput.warmstart.BoundScreen` (the what-if engine
    screens its whole ensemble with one vectorized pass) has its verdict
    consumed directly — no per-request bound math at all.
    """
    hint = request.hint
    if hint is None or request.engine != "lp":
        return None
    if request.params.get("want_flows") or request.params.get("want_duals"):
        return None
    if request.screen is not None:
        answer = request.screen.answer
    else:
        from repro.core.arcgraph import as_arcgraph

        try:
            caps = as_arcgraph(request.topology).caps
            answer = hint.answers(caps)
        except (ValueError, TypeError):
            return None
    if answer is None:
        return None
    lower, upper = answer
    return ThroughputResult(
        value=float(lower),
        engine="lp",
        meta={
            "skipped_by_bound": True,
            "bound_lower": float(lower),
            "bound_upper": float(upper),
            "parent_value": float(hint.value),
        },
    )


def _solve_captured(request: SolveRequest) -> Tuple[Optional[ThroughputResult], Optional[str]]:
    """Worker entry point: solve, converting any exception into a string.

    Must stay a module-level function (pickled by the process pool).
    """
    try:
        return _dispatch(request), None
    except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
        return None, f"{type(exc).__name__}: {exc}"


def _skeleton_counts(result: Optional[ThroughputResult]) -> Dict[str, int]:
    """``_bump`` kwargs for a *fresh* solve's model-cache outcome.

    The ``lp`` engine stamps ``meta["skeleton"]`` on every solve — "hit"
    when the constraint pattern came from the worker's compiled-model
    cache, "miss" when it was built cold.  The meta travels back from
    pool workers with the result, which is how per-worker cache activity
    becomes visible in parent-side stats.  Results from the *result*
    cache also carry the (stale) marker, so callers must only pass
    freshly solved results here.
    """
    state = (result.meta or {}).get("skeleton") if result is not None else None
    if state == "hit":
        return {"skeleton_hits": 1}
    if state == "miss":
        return {"skeleton_misses": 1}
    return {}


def _solve_chunk_captured(
    requests: Sequence[SolveRequest],
) -> List[Tuple[Optional[ThroughputResult], Optional[str]]]:
    """Worker entry point for a same-skeleton chunk of requests.

    Solving a chunk sequentially in one worker means the first request
    builds the skeleton into that worker's model cache and the rest
    data-swap against it; the chunk payload also pickles the shared
    ArcGraph arrays and TM once instead of per request.  Must stay a
    module-level function (pickled by the process pool).
    """
    return [_solve_captured(req) for req in requests]


def _available_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Union[int, str]) -> int:
    """Normalize the ``workers`` knob: ``"auto"`` → CPU count, else int >= 1.

    ``"auto"`` honors CPU affinity / cgroup limits, so a container allotted
    2 cores on a 64-core host gets 2 workers, not 64.
    """
    if workers == "auto":
        return _available_cpus()
    n = int(workers)
    if n < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return n


class _StreamEntry:
    """One incrementally submitted request and its (eventual) outcome."""

    __slots__ = ("request", "use_cache", "outcome", "future", "primary", "submitted_at")

    def __init__(self, request: SolveRequest, use_cache: bool) -> None:
        self.request = request
        self.use_cache = use_cache
        self.outcome: Optional[SolveOutcome] = None
        self.future = None  # pool future (primaries in pool mode only)
        self.primary: Optional["_StreamEntry"] = None  # in-flight dedupe target
        self.submitted_at = 0.0


class BatchSolver:
    """Fan a batch of throughput solves over workers, memoized by a cache.

    Parameters
    ----------
    workers:
        ``1`` (inline, deterministic, no subprocesses), an int > 1, or
        ``"auto"`` for ``os.cpu_count()``.
    cache:
        Optional :class:`BaseResultCache` backend (JSONL or sqlite — see
        :func:`repro.batch.cache.make_cache`); ``None`` disables
        memoization.
    timeout:
        Optional wall-clock limit in seconds, measured from batch
        submission and applied to every job (pool mode only; the inline
        path runs jobs to completion).  A job that has not finished
        ``timeout`` seconds after its batch was submitted yields an error
        outcome and the rest of the batch proceeds; since all jobs are
        submitted together, this bounds the whole batch wait without one
        slow job consuming a later job's budget.  A ``sharded`` request
        runs parent-side and is budgeted *per inner block batch*, not as
        one job: each coordination round (and the exact fallback) gets a
        fresh ``timeout``, so its worst case is
        ``(max_rounds + 1) * timeout``.
    """

    def __init__(
        self,
        workers: Union[int, str] = 1,
        cache: Optional[BaseResultCache] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.timeout = timeout
        self._pool: Optional[ProcessPoolExecutor] = None
        self.n_requests = 0
        self.n_solved = 0
        self.n_cache_hits = 0
        self.n_errors = 0
        #: Requests tagged ``shard:...`` — the sharded engine's internal
        #: block subproblems, reported separately so sweep-level stats can
        #: distinguish "instances asked for" from decomposition traffic.
        self.n_shard_jobs = 0
        #: Requests answered by a parent-solve hint's bound interval alone
        #: (no LP run, no cache write) — see :func:`bound_skip_result`.
        self.n_bound_skips = 0
        #: Fresh ``lp`` solves whose constraint matrix came from the
        #: compiled-model cache (``hits``) vs. was built cold (``misses``)
        #: — read from each result's ``meta["skeleton"]``, so pool-worker
        #: solves count too (each worker holds its own skeleton cache; see
        #: :mod:`repro.throughput.modelcache`).  Cache hits and bound
        #: skips perform no assembly and count in neither bucket.
        self.n_skeleton_hits = 0
        self.n_skeleton_misses = 0
        #: Observability hooks (see Session.stream): ``progress_callback``
        #: fires after every job resolution (solve, cache hit, or error) with
        #: the solver itself; ``batch_callback`` fires once per completed
        #: batch — a ``solve_many`` call or a fully drained submit/iter
        #: stream — with that batch's delta stats.  Both run in the calling
        #: thread; ``None`` (the default) costs nothing.
        self.progress_callback: Optional[Callable[["BatchSolver"], None]] = None
        self.batch_callback: Optional[Callable[[Dict[str, Any]], None]] = None
        # Concurrency: the counters above are mutated under ``_lock`` so
        # concurrent ``solve_many`` callers (the service front-end) never
        # lose increments; ``_pool_lock`` serializes pool create/recycle;
        # ``_inflight`` is the cross-caller single-flight registry — the
        # first thread to claim a cacheable key solves it, later threads
        # wait for the writeback and take the cache hit.  The incremental
        # submit/iter stream remains a single-consumer structure (a
        # :class:`~repro.api.Session` serializes it).
        self._lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        #: Per-tenant counter attribution (see :mod:`repro.batch.tenancy`):
        #: ``{tenant: {requests, solved, cache_hits, errors, bound_skips}}``.
        #: Empty until a solve runs inside ``use_tenant``.
        self.tenant_stats: Dict[str, Dict[str, int]] = {}
        # Incremental-submission state (see submit / iter_outcomes).
        self._stream_pending: Deque[_StreamEntry] = deque()
        self._stream_by_key: Dict[str, _StreamEntry] = {}
        self._stream_outstanding: Dict[Any, _StreamEntry] = {}
        # A timed-out stream job pins its worker; the pool recycle that
        # frees it is deferred until the stream drains so other in-flight
        # jobs (still within their own budgets) are not killed mid-solve.
        self._recycle_deferred = False
        # Counter snapshot taken when a stream batch begins (first submit
        # into an empty queue): submit() itself counts requests and
        # cache hits, so a snapshot taken at iteration time would
        # under-report the batch's deltas.
        self._stream_snap: Optional[Dict[str, Any]] = None
        # Cache counters are cache-lifetime; remember where they stood when
        # this solver started so stats() can report per-solver deltas.
        self._cache_base = (
            (cache.hits, cache.misses, cache.puts) if cache is not None else (0, 0, 0)
        )

    # ------------------------------------------------------------- counters
    def _bump(
        self,
        requests: int = 0,
        solved: int = 0,
        cache_hits: int = 0,
        errors: int = 0,
        shard_jobs: int = 0,
        bound_skips: int = 0,
        skeleton_hits: int = 0,
        skeleton_misses: int = 0,
    ) -> None:
        """Increment counters atomically, attributing to the ambient tenant.

        The single mutation point for every counter: concurrent
        ``solve_many`` callers (service request threads) otherwise lose
        increments to read-modify-write races.  Shard-internal jobs are
        counted globally but not per tenant — tenants asked for instances,
        not for the decomposition traffic they caused.
        """
        tenant = current_tenant()
        with self._lock:
            self.n_requests += requests
            self.n_solved += solved
            self.n_cache_hits += cache_hits
            self.n_errors += errors
            self.n_shard_jobs += shard_jobs
            self.n_bound_skips += bound_skips
            self.n_skeleton_hits += skeleton_hits
            self.n_skeleton_misses += skeleton_misses
            if tenant:
                t = self.tenant_stats.setdefault(
                    tenant,
                    {
                        "requests": 0,
                        "solved": 0,
                        "cache_hits": 0,
                        "errors": 0,
                        "bound_skips": 0,
                    },
                )
                t["requests"] += requests
                t["solved"] += solved
                t["cache_hits"] += cache_hits
                t["errors"] += errors
                t["bound_skips"] += bound_skips

    # ------------------------------------------------------------- lifecycle
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._recycle_deferred:
            # A timed-out stream job is pinning a worker; a clean shutdown
            # would block on it forever.
            self._recycle_pool()
            self._recycle_deferred = False
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _recycle_pool(self) -> None:
        """Discard the pool after a timeout or worker death.

        ``shutdown(wait=False)`` alone would leave a timed-out LP occupying
        a worker (and a later ``close()`` blocking on it), so remaining
        worker processes are terminated best-effort; the next batch gets a
        fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- solving
    def solve(self, request: SolveRequest) -> SolveOutcome:
        """Convenience wrapper: solve a single request."""
        return self.solve_many([request])[0]

    def solve_values(self, requests: Sequence[SolveRequest]) -> List[float]:
        """Throughput values for ``requests``, in request order.

        The mechanical migration path for historical value-in-a-loop code:
        a failed job raises :class:`~repro.batch.jobs.BatchSolveError`
        exactly where the historical serial call would have raised.
        """
        return [o.require().value for o in self.solve_many(requests)]

    def solve_many(self, requests: Sequence[SolveRequest]) -> List[SolveOutcome]:
        """Solve every request; outcomes are returned in request order."""
        if not requests:
            return []
        snap = self.snapshot() if self.batch_callback is not None else None
        outcomes: List[Optional[SolveOutcome]] = [None] * len(requests)
        pending: List[Tuple[int, SolveRequest]] = []
        self._bump(
            requests=len(requests),
            shard_jobs=sum(1 for r in requests if r.tag.startswith("shard:")),
        )

        for i, req in enumerate(requests):
            # Only the cached path pays for the content digest; inline
            # uncached solves stay zero-overhead.
            use_cache = self.cache is not None and req.cacheable
            cached = self.cache.get(req.key) if use_cache else None
            if cached is not None:
                self._bump(cache_hits=1)
                self._fire_progress()
                outcomes[i] = SolveOutcome(
                    key=req.key, tag=req.tag, result=cached, from_cache=True
                )
                continue
            skipped = bound_skip_result(req)
            if skipped is not None:
                self._bump(bound_skips=1)
                self._fire_progress()
                outcomes[i] = SolveOutcome(
                    key=req.key if use_cache else "", tag=req.tag, result=skipped
                )
            else:
                pending.append((i, req))

        if pending:
            # Within-batch dedupe: identical cacheable instances (same
            # content key) are solved once and share the result.  Keys are
            # only consulted when a cache is attached, so the uncached
            # inline path still pays no digest cost.
            unique: List[Tuple[int, SolveRequest]] = []
            alias: List[int] = []  # pending position -> unique position
            first_by_key: Dict[str, int] = {}
            for i, req in pending:
                if self.cache is not None and req.cacheable:
                    u = first_by_key.get(req.key)
                    if u is not None:
                        alias.append(u)
                        continue
                    first_by_key[req.key] = len(unique)
                alias.append(len(unique))
                unique.append((i, req))
            solved, from_flight = self._solve_unique(unique)
            primaries = {u: False for u in range(len(unique))}
            for (i, req), u in zip(pending, alias):
                result, error = solved[u]
                use_cache = self.cache is not None and req.cacheable
                is_duplicate = primaries.get(u, False) or u in from_flight
                primaries[u] = True
                if error is None and result is not None:
                    if is_duplicate:
                        # Served from the in-batch memo or another caller's
                        # in-flight solve, not a fresh solve here.
                        self._bump(cache_hits=1)
                    else:
                        self._bump(solved=1, **_skeleton_counts(result))
                else:
                    self._bump(errors=1)
                self._fire_progress()
                outcomes[i] = SolveOutcome(
                    key=req.key if use_cache else "",
                    tag=req.tag,
                    result=result,
                    error=error,
                    from_cache=is_duplicate and error is None,
                )

        if snap is not None:
            self.batch_callback(self.stats_since(snap))
        return [o for o in outcomes if o is not None]

    def _solve_unique(
        self, unique: List[Tuple[int, SolveRequest]]
    ) -> Tuple[
        List[Tuple[Optional[ThroughputResult], Optional[str]]], Set[int]
    ]:
        """Solve the deduped request list, single-flighted across threads.

        Among *concurrent* ``solve_many`` callers (service request
        threads), the first to claim a cacheable key becomes its owner and
        solves it; the others wait for the owner's cache writeback and
        take the hit — two clients asking the same instance at the same
        moment cost one LP, same as asking it in sequence.  Returns the
        per-unique ``(result, error)`` list plus the set of positions that
        were served by another caller's in-flight solve (counted as cache
        hits by the caller).  Owners write fresh results back *before*
        releasing their claim so a released waiter always finds the entry;
        if the owner's solve failed (error, uncacheable result) the waiter
        falls back to solving locally rather than inheriting the failure.
        """
        waits: Dict[int, threading.Event] = {}
        claimed: Dict[int, threading.Event] = {}
        if self.cache is not None:
            with self._lock:
                for u, (_, req) in enumerate(unique):
                    if not req.cacheable:
                        continue
                    held = self._inflight.get(req.key)
                    if held is not None:
                        waits[u] = held
                    else:
                        event = threading.Event()
                        self._inflight[req.key] = event
                        claimed[u] = event
        solved: List[Tuple[Optional[ThroughputResult], Optional[str]]]
        solved = [(None, None)] * len(unique)
        try:
            to_solve = [
                (u, req)
                for u, (_, req) in enumerate(unique)
                if u not in waits
            ]
            if self.workers == 1:
                for u, req in to_solve:
                    solved[u] = self._solve_local(req)
            else:
                # ``sharded`` requests solve parent-side so their block
                # subproblems fan out over this same pool and cache;
                # everything else ships to workers.
                pool_jobs = [(u, req) for u, req in to_solve if req.engine != "sharded"]
                for (u, _), res in zip(
                    pool_jobs, self._solve_in_pool([req for _, req in pool_jobs])
                ):
                    solved[u] = res
                for u, req in to_solve:
                    if req.engine == "sharded":
                        solved[u] = self._solve_local(req)
            for u in claimed:
                _, req = unique[u]
                result, error = solved[u]
                if error is None and result is not None:
                    self.cache.put(req.key, result)
        finally:
            # Claims release even if a solve raised: a waiter blocked on a
            # crashed owner must fall back, not hang.
            if claimed:
                with self._lock:
                    for u in claimed:
                        self._inflight.pop(unique[u][1].key, None)
                for event in claimed.values():
                    event.set()
        from_flight: Set[int] = set()
        for u, event in waits.items():
            _, req = unique[u]
            event.wait()
            cached = self.cache.get(req.key)
            if cached is not None:
                solved[u] = (cached, None)
                from_flight.add(u)
            else:
                result, error = self._solve_local(req)
                if error is None and result is not None:
                    self.cache.put(req.key, result)
                solved[u] = (result, error)
        return solved, from_flight

    # ------------------------------------------------- incremental streaming
    def submit(self, request: SolveRequest) -> int:
        """Queue one request for incremental solving; returns its index.

        The streaming counterpart of :meth:`solve_many`: submit any number
        of requests, then consume :meth:`iter_outcomes` to receive their
        outcomes *in submission order as they become ready* — a consumer can
        act on outcome ``i`` while later jobs are still solving.  Semantics
        match :meth:`solve_many` exactly: cache probe at submission, within-
        stream dedupe of identical cacheable instances, per-job error
        capture, and identical stats counting — so a sweep produces
        bit-identical values and stats whichever path it takes.

        With ``workers > 1`` the job is handed to the process pool
        immediately, so solving overlaps further submission and consumption;
        with ``workers = 1`` it is solved lazily during
        :meth:`iter_outcomes` (keeping submission cheap and the interleaving
        incremental).
        """
        if not self._stream_pending:
            self._stream_snap = self.snapshot()
        index = self.n_requests
        self._bump(
            requests=1,
            shard_jobs=1 if request.tag.startswith("shard:") else 0,
        )
        use_cache = self.cache is not None and request.cacheable
        entry = _StreamEntry(request, use_cache)
        self._stream_pending.append(entry)
        if use_cache:
            cached = self.cache.get(request.key)
            if cached is not None:
                self._bump(cache_hits=1)
                entry.outcome = SolveOutcome(
                    key=request.key, tag=request.tag, result=cached, from_cache=True
                )
                self._fire_progress()
                return index
        skipped = bound_skip_result(request)
        if skipped is not None:
            # Mirrors solve_many: answered from the hint interval alone, not
            # cached, and never registered as an in-stream dedupe primary
            # (later identical requests must not inherit an interval value
            # when they could solve exactly).
            self._bump(bound_skips=1)
            entry.outcome = SolveOutcome(
                key=request.key if use_cache else "",
                tag=request.tag,
                result=skipped,
            )
            self._fire_progress()
            return index
        if use_cache:
            primary = self._stream_by_key.get(request.key)
            if primary is not None:
                entry.primary = primary
                return index
            self._stream_by_key[request.key] = entry
        # ``sharded`` requests never ship to workers: they resolve lazily in
        # iter_outcomes via _solve_local, with this solver (and its pool) as
        # the block sub-solver.
        if self.workers > 1 and request.engine != "sharded":
            entry.submitted_at = time.monotonic()
            try:
                entry.future = self._ensure_pool().submit(_solve_captured, request)
                self._stream_outstanding[entry.future] = entry
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                self._resolve_stream_entry(
                    entry, None, f"{type(exc).__name__}: {exc}"
                )
                self._recycle_pool()
        return index

    def iter_outcomes(self):
        """Yield a :class:`SolveOutcome` per submitted request, in submission
        order, each as soon as it (and everything before it) has resolved.

        Pool completions are processed in *completion* order (so progress
        callbacks and cache writebacks happen promptly) while outcomes are
        released in submission order.  The iterator ends when every
        submitted request has been yielded; callers that may abandon it
        early (e.g. on a failed outcome) should call :meth:`drain` to keep
        the stream queue consistent for the next batch.
        """
        # The batch delta baseline was captured at first submit: submission
        # already counted requests and submit-time cache hits, which an
        # iteration-time snapshot would miss (a fully warm batch would
        # report zero requests and zero hits).
        snap = self._stream_snap if self.batch_callback is not None else None
        while self._stream_pending:
            entry = self._stream_pending[0]
            if entry.outcome is None:
                if entry.primary is not None:
                    # The primary precedes this entry in FIFO order, so it
                    # has already resolved; served from the in-stream memo.
                    p = entry.primary.outcome
                    if p.error is None:
                        self._bump(cache_hits=1)
                    else:
                        self._bump(errors=1)
                    entry.outcome = SolveOutcome(
                        key=entry.request.key,
                        tag=entry.request.tag,
                        result=p.result,
                        error=p.error,
                        from_cache=p.error is None,
                    )
                    self._fire_progress()
                elif entry.future is not None:
                    self._wait_for_stream_entry(entry)
                else:
                    result, error = self._solve_local(entry.request)
                    self._resolve_stream_entry(entry, result, error)
            self._stream_pending.popleft()
            if not self._stream_pending:
                self._stream_by_key.clear()
                if self._recycle_deferred:
                    self._recycle_pool()
                    self._recycle_deferred = False
                if snap is not None:
                    self.batch_callback(self.stats_since(snap))
                    snap = None
                self._stream_snap = None
            yield entry.outcome

    def drain(self) -> int:
        """Consume and discard any not-yet-yielded streaming outcomes.

        Safety valve for consumers that abandon :meth:`iter_outcomes` early:
        remaining jobs still resolve (and cacheable results are still
        written back), so the next batch starts from a clean queue.
        Returns the number of outcomes discarded.
        """
        n = 0
        for _ in self.iter_outcomes():
            n += 1
        return n

    @property
    def pending_outcomes(self) -> int:
        """Submitted-but-not-yet-yielded streaming requests."""
        return len(self._stream_pending)

    def _resolve_stream_entry(
        self,
        entry: _StreamEntry,
        result: Optional[ThroughputResult],
        error: Optional[str],
    ) -> None:
        req = entry.request
        if error is None and result is not None:
            self._bump(solved=1, **_skeleton_counts(result))
            if entry.use_cache:
                self.cache.put(req.key, result)
        else:
            self._bump(errors=1)
        entry.outcome = SolveOutcome(
            key=req.key if entry.use_cache else "",
            tag=req.tag,
            result=result,
            error=error,
            from_cache=False,
        )
        self._fire_progress()

    def _wait_for_stream_entry(self, entry: _StreamEntry) -> None:
        """Block until ``entry``'s pool future resolves, processing every
        other completion (cache writeback + progress) as it lands."""
        while entry.outcome is None:
            remaining: Optional[float] = None
            if self.timeout is not None:
                remaining = entry.submitted_at + self.timeout - time.monotonic()
                if remaining <= 0:
                    self._stream_outstanding.pop(entry.future, None)
                    self._resolve_stream_entry(
                        entry,
                        None,
                        f"TimeoutError: job not finished within {self.timeout}s "
                        "of submission",
                    )
                    # Parity with solve_many: "the rest of the batch
                    # proceeds" — other in-flight jobs keep their own
                    # budgets, so the (worker-pinning) recycle waits until
                    # the stream drains.  Only a dead pool recycles now.
                    if self._stream_outstanding:
                        self._recycle_deferred = True
                    else:
                        self._recycle_pool()
                    return
            done, _ = futures_wait(
                list(self._stream_outstanding),
                timeout=remaining,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                e = self._stream_outstanding.pop(fut)
                try:
                    result, error = fut.result()
                except CancelledError:
                    # BaseException since 3.8, so `except Exception` would
                    # miss it: a still-queued job cancelled when a timeout
                    # recycled the pool must become an error outcome, not
                    # crash the stream.
                    result, error = (
                        None,
                        "CancelledError: job cancelled when the worker pool "
                        "was recycled",
                    )
                except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                    result, error = None, f"{type(exc).__name__}: {exc}"
                    # A dead worker poisons the pool; recycle so jobs
                    # submitted after this point still solve.
                    self._recycle_pool()
                self._resolve_stream_entry(e, result, error)

    def _solve_local(
        self, request: SolveRequest
    ) -> Tuple[Optional[ThroughputResult], Optional[str]]:
        """Solve one request in the calling process, capturing errors.

        ``sharded`` requests get *this* solver as their block sub-solver,
        so shard subproblems fan out over the batch's worker pool, warm
        its cache, and count in its stats; every other engine takes the
        plain captured path.
        """
        if request.engine == "sharded":
            # Suppress batch_callback for the inner block batches: their
            # solves are already inside the enclosing batch's delta, so
            # firing per coordination round would double-count them for
            # consumers summing BatchStatsEvent deltas.  Per-round
            # observability comes from the shard-progress hook instead.
            saved_cb, self.batch_callback = self.batch_callback, None
            try:
                from repro.throughput.sharded import solve_throughput_sharded

                return (
                    solve_throughput_sharded(
                        request.topology,
                        request.tm,
                        solver=self,
                        **_pinned_params(request),
                    ),
                    None,
                )
            except Exception as exc:  # noqa: BLE001 - per-job isolation
                return None, f"{type(exc).__name__}: {exc}"
            finally:
                self.batch_callback = saved_cb
        return _solve_captured(request)

    def _fire_progress(self) -> None:
        if self.progress_callback is not None:
            self.progress_callback(self)

    def _solve_in_pool(
        self, requests: Sequence[SolveRequest]
    ) -> List[Tuple[Optional[ThroughputResult], Optional[str]]]:
        pool = self._ensure_pool()
        # Same-skeleton ``lp`` requests (one failure ensemble, one sharded
        # block family) are chunked so each worker solves its share
        # sequentially: the first solve builds the constraint pattern into
        # that worker's model cache, the rest data-swap against it, and
        # the chunk payload pickles the shared arrays once.  A group still
        # spans up to ``workers`` chunks, so parallelism is preserved; the
        # batch ``timeout`` budgets a whole chunk like one job.  Grouping
        # is an accelerator only: outcomes are position-mapped back, so
        # values and ordering are identical to per-request submission.
        chunks = group_chunks(
            [request_group_key(req) for req in requests], self.workers
        )
        futures = []
        submit_error: Optional[str] = None
        for chunk in chunks:
            if submit_error is not None:
                futures.append((chunk, None))
                continue
            try:
                if len(chunk) == 1:
                    fut = pool.submit(_solve_captured, requests[chunk[0]])
                else:
                    fut = pool.submit(
                        _solve_chunk_captured, [requests[i] for i in chunk]
                    )
                futures.append((chunk, fut))
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                submit_error = f"{type(exc).__name__}: {exc}"
                futures.append((chunk, None))
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        results: List[Tuple[Optional[ThroughputResult], Optional[str]]] = [
            (None, None)
        ] * len(requests)
        needs_recycle = submit_error is not None
        for chunk, fut in futures:
            if fut is None:
                for i in chunk:
                    results[i] = (None, submit_error)
                continue
            try:
                remaining = (
                    max(0.0, deadline - time.monotonic())
                    if deadline is not None
                    else None
                )
                payload = fut.result(timeout=remaining)
            except FuturesTimeout:
                needs_recycle = True
                error = (
                    f"TimeoutError: job not finished within {self.timeout}s "
                    "of batch submission"
                )
                for i in chunk:
                    results[i] = (None, error)
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                needs_recycle = True
                error = f"{type(exc).__name__}: {exc}"
                for i in chunk:
                    results[i] = (None, error)
                continue
            if len(chunk) == 1:
                results[chunk[0]] = payload
            else:
                for i, res in zip(chunk, payload):
                    results[i] = res
        if needs_recycle:
            # A dead worker poisons a ProcessPoolExecutor forever, and a
            # timed-out job would pin its worker (and block close()); start
            # fresh so the next batch keeps its error isolation.  If
            # streaming futures are still in flight on this pool, defer so
            # they are not killed mid-solve (the stream drain recycles).
            if self._stream_outstanding:
                self._recycle_deferred = True
            else:
                self._recycle_pool()
        return results

    # --------------------------------------------------------------- stats
    def snapshot(self) -> Dict[str, Any]:
        """Opaque counter snapshot for :meth:`stats_since`.

        A :class:`~repro.api.Session` shares one solver across many
        experiments; per-experiment stats are deltas between snapshots.
        """
        with self._lock:
            snap: Dict[str, Any] = {
                "requests": self.n_requests,
                "solved": self.n_solved,
                "cache_hits": self.n_cache_hits,
                "errors": self.n_errors,
                "shard_jobs": self.n_shard_jobs,
                "bound_skips": self.n_bound_skips,
                "skeleton_hits": self.n_skeleton_hits,
                "skeleton_misses": self.n_skeleton_misses,
            }
            if self.tenant_stats:
                snap["tenants"] = {
                    t: dict(counts) for t, counts in self.tenant_stats.items()
                }
        if self.cache is not None:
            snap["cache"] = (self.cache.hits, self.cache.misses, self.cache.puts)
        return snap

    def stats_since(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Counter deltas since ``snapshot`` (shape of :meth:`stats`)."""
        out: Dict[str, Any] = {
            "workers": self.workers,
            "requests": self.n_requests - snapshot["requests"],
            "solved": self.n_solved - snapshot["solved"],
            "cache_hits": self.n_cache_hits - snapshot["cache_hits"],
            "errors": self.n_errors - snapshot["errors"],
            "shard_jobs": self.n_shard_jobs - snapshot.get("shard_jobs", 0),
            "skipped_by_bound": self.n_bound_skips - snapshot.get("bound_skips", 0),
            "skeleton_hits": self.n_skeleton_hits
            - snapshot.get("skeleton_hits", 0),
            "skeleton_misses": self.n_skeleton_misses
            - snapshot.get("skeleton_misses", 0),
        }
        with self._lock:
            if self.tenant_stats:
                base = snapshot.get("tenants", {})
                out["tenants"] = {
                    tenant: {
                        field: count - base.get(tenant, {}).get(field, 0)
                        for field, count in counts.items()
                    }
                    for tenant, counts in self.tenant_stats.items()
                }
        if self.cache is not None:
            base_hits, base_misses, base_puts = snapshot.get("cache", (0, 0, 0))
            out["cache"] = {
                "path": str(self.cache.path),
                "entries": len(self.cache),
                "hits": self.cache.hits - base_hits,
                "misses": self.cache.misses - base_misses,
                "puts": self.cache.puts - base_puts,
            }
        return out

    def stats(self) -> Dict[str, Any]:
        """Counters for ``ExperimentResult.extras`` and CLI reporting.

        The nested ``cache`` block reports hit/miss/put counts *since this
        solver was created* (a shared cache accumulates lifetime counters
        across experiments; per-solver stats must not inherit them), plus
        the cache's current path and size.
        """
        return self.stats_since(
            {
                "requests": 0,
                "solved": 0,
                "cache_hits": 0,
                "errors": 0,
                "cache": self._cache_base,
            }
        )
