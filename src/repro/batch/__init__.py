"""Batch execution layer: parallel solves + content-addressed result cache.

The sweep experiments build :class:`SolveRequest` lists and hand them to a
:class:`BatchSolver` (usually the ambient one, via :func:`solve_values` or
:func:`get_solver`), which consults the persistent result cache — JSONL or
sqlite, behind :class:`BaseResultCache` — and fans cache misses out over
worker processes.  See DESIGN.md ("Batch execution and caching") for the
architecture.
"""

from repro.batch.cache import (
    CACHE_BACKENDS,
    BaseResultCache,
    ResultCache,
    SqliteResultCache,
    make_cache,
    resolve_cache_backend,
    resolve_cache_dir,
)
from repro.batch.context import (
    get_solver,
    iter_outcome_values,
    iter_solve_instances,
    solve_instances,
    solve_values,
    use_solver,
)
from repro.batch.jobs import (
    BatchSolveError,
    SolveOutcome,
    SolveRequest,
    instance_key,
    values_by_tag,
)
from repro.batch.solver import BatchSolver, resolve_workers

__all__ = [
    "CACHE_BACKENDS",
    "BaseResultCache",
    "BatchSolveError",
    "BatchSolver",
    "ResultCache",
    "SolveOutcome",
    "SolveRequest",
    "SqliteResultCache",
    "get_solver",
    "instance_key",
    "iter_outcome_values",
    "iter_solve_instances",
    "make_cache",
    "resolve_cache_backend",
    "resolve_cache_dir",
    "resolve_workers",
    "solve_instances",
    "solve_values",
    "use_solver",
    "values_by_tag",
]
