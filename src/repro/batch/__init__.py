"""Batch execution layer: parallel solves + content-addressed result cache.

The sweep experiments build :class:`SolveRequest` lists and hand them to a
:class:`BatchSolver`, which consults the persistent :class:`ResultCache`
and fans cache misses out over worker processes.  See DESIGN.md
("Batch execution and caching") for the architecture.
"""

from repro.batch.cache import ResultCache, resolve_cache_dir
from repro.batch.context import get_solver, use_solver
from repro.batch.jobs import (
    BatchSolveError,
    SolveOutcome,
    SolveRequest,
    instance_key,
    values_by_tag,
)
from repro.batch.solver import BatchSolver, resolve_workers

__all__ = [
    "BatchSolveError",
    "BatchSolver",
    "ResultCache",
    "SolveOutcome",
    "SolveRequest",
    "get_solver",
    "instance_key",
    "resolve_cache_dir",
    "resolve_workers",
    "use_solver",
    "values_by_tag",
]
