"""Batch execution layer: parallel solves + content-addressed result cache.

The sweep experiments build :class:`SolveRequest` lists and hand them to a
:class:`BatchSolver` (usually the ambient one, via :func:`solve_values` or
:func:`get_solver`), which consults the persistent result cache — JSONL or
sqlite, behind :class:`BaseResultCache` — and fans cache misses out over
worker processes.  See DESIGN.md ("Batch execution and caching") for the
architecture.
"""

from repro.batch.cache import (
    CACHE_BACKENDS,
    BaseResultCache,
    ResultCache,
    SqliteResultCache,
    make_cache,
    resolve_cache_backend,
    resolve_cache_dir,
)
from repro.batch.context import (
    get_solver,
    iter_outcome_values,
    iter_solve_instances,
    solve_instances,
    solve_values,
    use_solver,
)
from repro.batch.jobs import (
    BATCH_ENGINES,
    DEFAULT_ENGINE_CHOICES,
    BatchSolveError,
    SolveOutcome,
    SolveRequest,
    default_engine,
    instance_key,
    use_default_engine,
    values_by_tag,
)
from repro.batch.solver import BatchSolver, bound_skip_result, resolve_workers
from repro.batch.tenancy import current_tenant, use_tenant

__all__ = [
    "BATCH_ENGINES",
    "CACHE_BACKENDS",
    "DEFAULT_ENGINE_CHOICES",
    "BaseResultCache",
    "BatchSolveError",
    "BatchSolver",
    "ResultCache",
    "SolveOutcome",
    "SolveRequest",
    "SqliteResultCache",
    "bound_skip_result",
    "current_tenant",
    "default_engine",
    "get_solver",
    "use_default_engine",
    "instance_key",
    "iter_outcome_values",
    "iter_solve_instances",
    "make_cache",
    "resolve_cache_backend",
    "resolve_cache_dir",
    "resolve_workers",
    "solve_instances",
    "solve_values",
    "use_solver",
    "use_tenant",
    "values_by_tag",
]
