"""Job model for batched throughput solves.

A :class:`SolveRequest` names one throughput instance — (topology, traffic
matrix, engine, solver params) — and carries a *content-addressed* key:
a stable SHA-256 digest of the topology's canonical arc list and
capacities, the TM's nonzero demand entries, the engine name, and the
solver parameters.  Two requests with the same key describe numerically
identical LPs, no matter how or where the objects were constructed, which
is what makes cross-run memoization (:mod:`repro.batch.cache`) sound.

A :class:`SolveOutcome` pairs a request with either a
:class:`~repro.throughput.lp.ThroughputResult` or a captured error string,
so one infeasible or crashing instance never aborts a sweep.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.throughput.lp import ThroughputResult
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix

#: Bump when the key payload layout changes; old cache entries then miss.
KEY_VERSION = "repro-batch-v1"

#: Engines the batch layer can dispatch: ``lp``, ``mwu``, and ``sharded``
#: go through :func:`repro.throughput.mcf.throughput` (``sharded`` is
#: special-cased to run parent-side so its block subproblems fan out over
#: the same solver — see :class:`~repro.batch.solver.BatchSolver`);
#: ``paths`` is the LLSKR-style path-restricted LP
#: (:func:`repro.throughput.llskr.llskr_exact_throughput`).  Its path sets
#: are a deterministic function of the *as-built* graph and the
#: ``subflows`` / ``path_pool`` params, so :func:`instance_key` hashes
#: extra order-sensitive structure for this engine — see below.
BATCH_ENGINES = ("lp", "mwu", "paths", "sharded")

#: Engines that may serve as the *ambient default* (``use_default_engine``,
#: ``Session(engine=...)``, ``--engine``).  ``paths`` is dispatchable but
#: deliberately excluded here: the path-restricted LP computes a different
#: quantity (a path-set lower bound with its own parameters), so silently
#: substituting it for every default solve would corrupt experiment rows.
DEFAULT_ENGINE_CHOICES = ("lp", "mwu", "sharded", "auto")

#: Ambient engine used by requests that do not name one.  ``"auto"`` is
#: also accepted: it resolves per instance through the shard policy at
#: request construction, so keys always carry a concrete engine.
_default_engine_var: ContextVar[str] = ContextVar(
    "repro_default_engine", default="lp"
)


def default_engine() -> str:
    """The ambient engine for requests constructed without an explicit one."""
    return _default_engine_var.get()


@contextmanager
def use_default_engine(engine: str) -> Iterator[str]:
    """Install ``engine`` as the ambient default within the ``with`` block.

    This is how ``repro <exp> --engine sharded`` reroutes a whole
    experiment: call sites that pass ``engine=`` explicitly (the ablation
    comparisons, the fig15 ``paths`` solves) are deliberately unaffected.
    """
    if engine not in DEFAULT_ENGINE_CHOICES:
        raise ValueError(
            f"engine {engine!r} cannot be the ambient default; expected one "
            f"of {DEFAULT_ENGINE_CHOICES}"
        )
    token = _default_engine_var.set(engine)
    try:
        yield engine
    finally:
        _default_engine_var.reset(token)


def instance_key(
    topology: Topology,
    tm: TrafficMatrix,
    engine: str = "lp",
    params: Optional[Dict[str, Any]] = None,
) -> str:
    """Content-addressed key for one throughput instance.

    The digest covers exactly what the solvers consume: the directed arc
    list with capacities (sorted into canonical (tail, head) order, so edge
    insertion order is irrelevant), the node count, the TM's nonzero
    ``(src, dst, demand)`` triples in row-major order, the engine name, and
    the sorted solver params.  Anything that changes the numerical instance
    — permuting node ids, scaling a demand, adding a cable — changes the
    key; anything that does not (names, families, construction provenance)
    is excluded.

    Exception: the ``paths`` engine additionally hashes the graph's node
    and edge *iteration order*.  Its path enumeration seeds Yen's with BFS
    shortest paths, whose tie-breaking among equal-length paths follows
    adjacency insertion order — two graphs with the same canonical arc
    list but different build order can enumerate different path sets and
    thus different path-restricted LP values.  Hashing the as-built order
    is conservative (a re-built graph re-solves instead of risking a stale
    value) and keeps equal keys implying equal solved LPs.
    """
    tails, heads, caps = topology.arcs()
    order = np.lexsort((heads, tails))
    src, dst, weights = tm.pairs()

    h = hashlib.sha256()
    h.update(KEY_VERSION.encode())
    h.update(b"\x00n\x00" + str(topology.n_switches).encode())
    h.update(b"\x00arcs\x00")
    h.update(np.ascontiguousarray(tails[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(heads[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(caps[order], dtype=np.float64).tobytes())
    h.update(b"\x00tm\x00" + str(tm.n_nodes).encode())
    h.update(np.ascontiguousarray(src, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(dst, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    h.update(b"\x00engine\x00" + engine.encode())
    if engine == "paths":
        h.update(b"\x00iter-order\x00")
        h.update(",".join(map(str, topology.graph.nodes())).encode())
        h.update(b"|")
        h.update(";".join(f"{u},{v}" for u, v in topology.graph.edges()).encode())
    h.update(b"\x00params\x00" + repr(sorted((params or {}).items())).encode())
    return h.hexdigest()


@dataclass
class SolveRequest:
    """One throughput instance to solve.

    Attributes
    ----------
    topology, tm:
        The instance itself.
    engine:
        One of :data:`BATCH_ENGINES` (``"lp"``, ``"mwu"``, ``"paths"``, or
        ``"sharded"``), or ``None`` to take the ambient default
        (:func:`default_engine`, normally ``"lp"``).  ``"auto"`` — given
        explicitly or as the ambient default — resolves immediately
        through :func:`repro.throughput.sharded.select_engine`, and a
        request resolving to ``"sharded"`` has its shard knobs (blocks,
        tolerance, round budget, fallback) frozen into ``params`` so the
        content key fully determines the computed value.
    params:
        Extra kwargs for the engine (e.g. ``epsilon`` for MWU, or
        ``subflows`` / ``path_pool`` for the path-restricted LP).
    tag:
        Caller-chosen label for mapping outcomes back to sweep points; not
        part of the key.  The sharded engine tags its internal block
        subproblems ``shard:...`` — the solver counts those separately in
        its stats.
    """

    topology: Topology
    tm: TrafficMatrix
    engine: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    tag: str = ""
    _key: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = default_engine()
        if self.engine == "auto":
            from repro.throughput.sharded import select_engine

            self.engine = select_engine(self.topology, self.tm)
        if self.engine == "sharded":
            from repro.throughput.sharded import resolve_shard_params

            self.params = resolve_shard_params(
                self.topology, self.tm, self.params
            )

    @property
    def key(self) -> str:
        """The content-addressed instance key (computed once, then cached)."""
        if self._key is None:
            self._key = instance_key(self.topology, self.tm, self.engine, self.params)
        return self._key

    @property
    def cacheable(self) -> bool:
        """Flow-carrying results are too large to persist; skip the cache."""
        return not self.params.get("want_flows", False)


class BatchSolveError(RuntimeError):
    """A solve outcome was required but the job failed."""


def values_by_tag(outcomes: "list[SolveOutcome]") -> Dict[str, list]:
    """Group required outcome values by request tag (sweep aggregation).

    Raises :class:`BatchSolveError` on the first failed outcome; tags with
    no outcomes are simply absent (callers use ``.get(tag, [])`` to degrade
    like the historical serial code did on empty sample sets).
    """
    grouped: Dict[str, list] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.tag, []).append(outcome.require().value)
    return grouped


@dataclass
class SolveOutcome:
    """Result of one batched solve: a value or a captured error, never both.

    ``key`` is only populated when a cache was consulted — computing the
    content digest costs a hash over the full instance, which the uncached
    path must not pay.
    """

    key: str = ""
    tag: str = ""
    result: Optional[ThroughputResult] = None
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    def require(self) -> ThroughputResult:
        """The result, or :class:`BatchSolveError` if the job failed."""
        if not self.ok:
            ident = self.key[:12] if self.key else (self.tag or "<unkeyed>")
            raise BatchSolveError(f"solve failed for instance {ident}: {self.error}")
        assert self.result is not None
        return self.result
