"""Job model for batched throughput solves.

A :class:`SolveRequest` names one throughput instance — (topology, traffic
matrix, engine, solver params) — and carries a *content-addressed* key:
a stable SHA-256 digest of the topology's canonical arc list and
capacities, the TM's nonzero demand entries, the engine name, and the
solver parameters.  Two requests with the same key describe numerically
identical LPs, no matter how or where the objects were constructed, which
is what makes cross-run memoization (:mod:`repro.batch.cache`) sound.

A :class:`SolveOutcome` pairs a request with either a
:class:`~repro.throughput.lp.ThroughputResult` or a captured error string,
so one infeasible or crashing instance never aborts a sweep.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Union

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.throughput.backends import normalize_lp_backend_param
from repro.throughput.lp import ThroughputResult
from repro.throughput.warmstart import BoundScreen, SolveHint
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix

#: Bump when the key payload layout changes; old cache entries then miss.
#: v2: the topology and TM components are the precomputed content digests
#: of the compiled core (`ArcGraph.digest`, `TrafficMatrix.content_digest`)
#: instead of per-request re-hashes of the full arrays, and the `paths`
#: iteration-order component is the numpy fingerprint
#: (`Topology.iteration_fingerprint`) instead of joined strings.
KEY_VERSION = "repro-batch-v2"

#: Engines the batch layer can dispatch: ``lp``, ``mwu``, ``sim``, and
#: ``sharded`` go through :func:`repro.throughput.mcf.throughput`
#: (``sharded`` is special-cased to run parent-side so its block
#: subproblems fan out over the same solver — see
#: :class:`~repro.batch.solver.BatchSolver`); ``paths`` is the LLSKR-style
#: path-restricted LP
#: (:func:`repro.throughput.llskr.llskr_exact_throughput`).  Its path sets
#: are a deterministic function of the *as-built* graph and the
#: ``subflows`` / ``path_pool`` params, so :func:`instance_key` hashes
#: extra order-sensitive structure for this engine — see below.  ``sim``
#: (the fluid simulator, :mod:`repro.sim`) needs no such special case:
#: its route compilation ties every tie-break to the canonical sorted arc
#: list, so the content digests plus the frozen ``routing``/``k`` params
#: fully determine its value.
BATCH_ENGINES = ("lp", "mwu", "paths", "sharded", "sim")

#: Engines that may serve as the *ambient default* (``use_default_engine``,
#: ``Session(engine=...)``, ``--engine``).  ``paths`` is dispatchable but
#: deliberately excluded here: the path-restricted LP computes a different
#: quantity (a path-set lower bound with its own parameters), so silently
#: substituting it for every default solve would corrupt experiment rows.
#: ``sim`` *is* admitted — it also computes achieved (not optimal)
#: throughput, but unlike ``paths`` its route params resolve and freeze at
#: request construction, its results are labeled ``engine="sim"`` all the
#: way through, and rerouting a whole experiment through the simulator is
#: exactly what ``--engine sim`` is for.
DEFAULT_ENGINE_CHOICES = ("lp", "mwu", "sharded", "auto", "sim")

#: Ambient engine used by requests that do not name one.  ``"auto"`` is
#: also accepted: it resolves per instance through the shard policy at
#: request construction, so keys always carry a concrete engine.
_default_engine_var: ContextVar[str] = ContextVar(
    "repro_default_engine", default="lp"
)


def default_engine() -> str:
    """The ambient engine for requests constructed without an explicit one."""
    return _default_engine_var.get()


@contextmanager
def use_default_engine(engine: str) -> Iterator[str]:
    """Install ``engine`` as the ambient default within the ``with`` block.

    This is how ``repro <exp> --engine sharded`` reroutes a whole
    experiment: call sites that pass ``engine=`` explicitly (the ablation
    comparisons, the fig15 ``paths`` solves) are deliberately unaffected.
    """
    if engine not in DEFAULT_ENGINE_CHOICES:
        raise ValueError(
            f"engine {engine!r} cannot be the ambient default; expected one "
            f"of {DEFAULT_ENGINE_CHOICES}"
        )
    token = _default_engine_var.set(engine)
    try:
        yield engine
    finally:
        _default_engine_var.reset(token)


def instance_key(
    topology: Union[Topology, ArcGraph],
    tm: TrafficMatrix,
    engine: str = "lp",
    params: Optional[Dict[str, Any]] = None,
) -> str:
    """Content-addressed key for one throughput instance.

    The key covers exactly what the solvers consume — via two precomputed
    content digests plus the request envelope: the compiled core's digest
    (canonical (tail, head)-sorted arc list with capacities and the node
    count — edge insertion order is irrelevant; see
    :class:`repro.core.ArcGraph`), the TM's digest (nonzero ``(src, dst,
    demand)`` triples in row-major order), the engine name, and the sorted
    solver params.  Anything that changes the numerical instance —
    permuting node ids, scaling a demand, adding a cable — changes the
    key; anything that does not (names, families, construction provenance)
    is excluded.

    Both digests are computed once (at topology compile / first TM use)
    and memoized, so keying an already-compiled instance performs **no
    networkx traversal and no re-hash of the arc or demand arrays** —
    submit-time key cost on warm sweeps is a few hundred bytes of hashing.

    Exception: the ``paths`` engine additionally hashes the graph's node
    and edge *iteration order* (the numpy fingerprint of
    :meth:`~repro.topologies.base.Topology.iteration_fingerprint`, also
    cached).  Its path enumeration seeds Yen's with BFS shortest paths,
    whose tie-breaking among equal-length paths follows adjacency
    insertion order — two graphs with the same canonical arc list but
    different build order can enumerate different path sets and thus
    different path-restricted LP values.  Hashing the as-built order is
    conservative (a re-built graph re-solves instead of risking a stale
    value) and keeps equal keys implying equal solved LPs.
    """
    core = as_arcgraph(topology)
    h = hashlib.sha256()
    h.update(KEY_VERSION.encode())
    h.update(b"\x00topo\x00" + bytes.fromhex(core.digest))
    h.update(b"\x00tm\x00" + bytes.fromhex(tm.content_digest()))
    h.update(b"\x00engine\x00" + engine.encode())
    if engine == "paths":
        if not isinstance(topology, Topology):
            raise TypeError(
                "the 'paths' engine keys on graph iteration order and "
                "needs the full Topology, not a compiled ArcGraph"
            )
        h.update(b"\x00iter-order\x00" + topology.iteration_fingerprint())
    h.update(b"\x00params\x00" + repr(sorted((params or {}).items())).encode())
    return h.hexdigest()


@dataclass
class SolveRequest:
    """One throughput instance to solve.

    Attributes
    ----------
    topology, tm:
        The instance itself.
    engine:
        One of :data:`BATCH_ENGINES` (``"lp"``, ``"mwu"``, ``"paths"``,
        ``"sharded"``, or ``"sim"``), or ``None`` to take the ambient default
        (:func:`default_engine`, normally ``"lp"``).  ``"auto"`` — given
        explicitly or as the ambient default — resolves immediately
        through :func:`repro.throughput.sharded.select_engine`.  A request
        resolving to ``"sharded"`` has its shard knobs (blocks, tolerance,
        round budget, fallback, block LP backend) frozen into ``params``,
        and an ``"lp"`` request has its resolved LP backend name frozen in
        (:func:`repro.throughput.backends.resolve_lp_backend`), so the
        content key fully determines the computed value.  A ``"sim"``
        request likewise freezes its resolved routing mode (and ``k``
        under ksp routing) via
        :func:`repro.sim.engine.resolve_sim_params`.
    params:
        Extra kwargs for the engine (e.g. ``epsilon`` for MWU, or
        ``subflows`` / ``path_pool`` for the path-restricted LP).
    tag:
        Caller-chosen label for mapping outcomes back to sweep points; not
        part of the key.  The sharded engine tags its internal block
        subproblems ``shard:...`` — the solver counts those separately in
        its stats.
    hint:
        Optional :class:`~repro.throughput.warmstart.SolveHint` from a
        parent solve of a capacity overlay of the same instance.  Advisory
        only — it tightens the child LP's bounds and lets the solver skip
        the solve when the hint's interval already answers the query — so
        it is deliberately **not** part of the key or the params: hinted
        and unhinted solves of the same instance share one cache entry.
    screen:
        Optional precomputed
        :class:`~repro.throughput.warmstart.BoundScreen` verdict for this
        request's capacities — the what-if engine screens a whole
        ensemble with one vectorized pass and attaches the per-scenario
        verdicts here, so the batch layer's bound-skip check consumes the
        result instead of re-deriving it per request.  Advisory like
        ``hint``: never part of the key, the params, or any cached value.

    **Worker payloads** — pickling a request whose engine consumes only
    the compiled instance (``lp``, ``mwu``, ``sim``) replaces the topology
    with its
    :class:`~repro.core.ArcGraph`: pool workers receive compact int64/
    float64 arrays, never a networkx graph.  ``paths`` requests keep the
    full topology (Yen's enumeration walks the as-built graph) and
    ``sharded`` requests solve parent-side anyway.
    """

    topology: Union[Topology, ArcGraph]
    tm: TrafficMatrix
    engine: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    tag: str = ""
    hint: Optional["SolveHint"] = field(default=None, repr=False, compare=False)
    screen: Optional["BoundScreen"] = field(default=None, repr=False, compare=False)
    _key: Optional[str] = field(default=None, repr=False, compare=False)

    #: Engines whose solve consumes only the compiled array form — their
    #: requests ship to pool workers graph-free (see ``__getstate__``).
    _ARRAY_ONLY_ENGINES = ("lp", "mwu", "sim")

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = default_engine()
        if self.engine == "auto":
            from repro.throughput.sharded import select_engine

            self.engine = select_engine(self.topology, self.tm)
        if self.engine == "sharded":
            from repro.throughput.sharded import resolve_shard_params

            self.params = resolve_shard_params(
                self.topology, self.tm, self.params
            )
        elif self.engine == "lp":
            self.params = normalize_lp_backend_param(self.params)
        elif self.engine == "sim":
            from repro.sim.engine import resolve_sim_params

            self.params = resolve_sim_params(self.params)

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        topology = state["topology"]
        if self.engine in self._ARRAY_ONLY_ENGINES and isinstance(
            topology, Topology
        ):
            state["topology"] = topology.compile()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    @property
    def key(self) -> str:
        """The content-addressed instance key (computed once, then cached)."""
        if self._key is None:
            self._key = instance_key(self.topology, self.tm, self.engine, self.params)
        return self._key

    @property
    def cacheable(self) -> bool:
        """Flow-carrying results are too large to persist; skip the cache."""
        return not self.params.get("want_flows", False)


class BatchSolveError(RuntimeError):
    """A solve outcome was required but the job failed."""


def values_by_tag(outcomes: "list[SolveOutcome]") -> Dict[str, list]:
    """Group required outcome values by request tag (sweep aggregation).

    Raises :class:`BatchSolveError` on the first failed outcome; tags with
    no outcomes are simply absent (callers use ``.get(tag, [])`` to degrade
    like the historical serial code did on empty sample sets).
    """
    grouped: Dict[str, list] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.tag, []).append(outcome.require().value)
    return grouped


@dataclass
class SolveOutcome:
    """Result of one batched solve: a value or a captured error, never both.

    ``key`` is only populated when a cache was consulted — computing the
    content digest costs a hash over the full instance, which the uncached
    path must not pay.
    """

    key: str = ""
    tag: str = ""
    result: Optional[ThroughputResult] = None
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    def require(self) -> ThroughputResult:
        """The result, or :class:`BatchSolveError` if the job failed."""
        if not self.ok:
            ident = self.key[:12] if self.key else (self.tag or "<unkeyed>")
            raise BatchSolveError(f"solve failed for instance {ident}: {self.error}")
        assert self.result is not None
        return self.result
