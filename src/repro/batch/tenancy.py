"""Ambient tenant identity for multi-client solve attribution.

The service front-end (:mod:`repro.service`) multiplexes many clients onto
one shared :class:`~repro.batch.solver.BatchSolver` and result cache.  For
its ``/stats`` endpoint (and ``repro cache``) to attribute solves, cache
hits, and bound-skips to the client that caused them, the solver and cache
need to know *who is asking* at counter-increment time.

That identity is ambient, not plumbed through every call signature: a
:class:`contextvars.ContextVar` set by :func:`use_tenant` for the duration
of one request's execution.  Each service job runs in its own worker
thread (its own context), so concurrent tenants never clobber each other.
The tag is **observability-only** — it must never reach
:func:`repro.batch.jobs.instance_key` or any params dict, because two
tenants asking the same numerical instance must share one cache entry
(that sharing is the whole point of the service).

Outside any ``use_tenant`` block the tenant is the empty string and all
per-tenant accounting is skipped, so single-client library use pays one
ContextVar read and nothing else.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

#: Ambient tenant label ("" = untagged single-client use).
_current_tenant: ContextVar[str] = ContextVar("repro_tenant", default="")


def current_tenant() -> str:
    """The ambient tenant label, or ``""`` when untagged."""
    return _current_tenant.get()


@contextmanager
def use_tenant(tenant: str) -> Iterator[str]:
    """Attribute solver/cache counters to ``tenant`` within the block."""
    token = _current_tenant.set(tenant)
    try:
        yield tenant
    finally:
        _current_tenant.reset(token)


__all__ = ["current_tenant", "use_tenant"]
