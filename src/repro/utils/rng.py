"""Random-number-generator discipline.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: a single integer seed at the top of an experiment
deterministically drives every topology construction and traffic sample below
it via :func:`spawn_rngs`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def stable_seed(*parts) -> int:
    """Deterministic 63-bit seed from arbitrary hashable parts.

    Unlike ``hash()``, this is stable across processes (string hashing in
    Python is salted per interpreter run), so experiment seeds derived from
    names reproduce bit-identically.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a ``Generator`` returns it unchanged (shared state), so a caller
    that wants independent streams should use :func:`spawn_rngs` instead of
    calling this repeatedly with the same generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    # Anything else (e.g. a (name, index) tuple) is hashed stably.
    return np.random.default_rng(stable_seed(seed))


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are independent regardless of
    how many draws each consumer makes.  When ``seed`` is already a
    ``Generator`` we draw a fresh entropy integer from it, which keeps the
    derivation deterministic given the generator state.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        entropy = int(seed.integers(0, 2**63 - 1))
        ss = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif seed is None or isinstance(seed, (int, np.integer)):
        ss = np.random.SeedSequence(seed)
    else:
        # Tuples mixing names and ints are common experiment seeds; hash
        # them stably rather than relying on SeedSequence entropy rules.
        ss = np.random.SeedSequence(stable_seed(seed))
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def permutation_avoiding_fixed_points(
    n: int, rng: np.random.Generator, max_tries: int = 10_000
) -> np.ndarray:
    """Sample a uniform random derangement of ``range(n)``.

    Rejection sampling: for n ≥ 2 a uniform permutation is a derangement with
    probability → 1/e, so the expected number of tries is < 3.  ``n == 1`` has
    no derangement and raises ``ValueError``.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        raise ValueError("no derangement exists for n=1")
    for _ in range(max_tries):
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            return perm
    raise RuntimeError("failed to sample a derangement (astronomically unlikely)")


def choice_without_replacement(
    pool: Iterable[int], k: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly choose ``k`` distinct items from ``pool``."""
    arr = np.asarray(list(pool))
    if k > arr.size:
        raise ValueError(f"cannot choose {k} items from pool of {arr.size}")
    idx = rng.choice(arr.size, size=k, replace=False)
    return arr[idx]
