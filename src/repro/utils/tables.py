"""ASCII rendering for the benchmark harness output.

Every experiment in :mod:`repro.evaluation.experiments` returns structured
records; these helpers turn them into the same rows/series the paper's tables
and figures report, printed to stdout by the benches and the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence


def _format_cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render a left-aligned ASCII table with a separator under the header."""
    str_rows: List[List[str]] = [
        [_format_cell(cell, floatfmt) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[tuple]],
    x_label: str,
    y_label: str,
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render named (x, y) series — the textual analogue of a paper figure.

    ``series`` maps a curve name (e.g. topology or TM name) to a sequence of
    (x, y) points.  Output is one table per curve, which is both diffable and
    easy to re-plot.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    for name in series:
        points = series[name]
        lines.append(f"-- {name}")
        rows = [(x, y) for x, y in points]
        lines.append(
            render_table([x_label, y_label], rows, floatfmt=floatfmt)
        )
    return "\n".join(lines)


def records_to_columns(
    records: Iterable[Mapping[str, Any]], keys: Sequence[str]
) -> Dict[str, List[Any]]:
    """Extract parallel column lists from an iterable of record dicts."""
    cols: Dict[str, List[Any]] = {k: [] for k in keys}
    for rec in records:
        for k in keys:
            cols[k].append(rec.get(k))
    return cols
