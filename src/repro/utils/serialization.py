"""Serialization of experiment results to JSON and CSV.

Experiment outputs are plain records; persisting them lets paper-scale runs
(`REPRO_SCALE=large`) be archived and diffed across machines and revisions
(the experiment *catalog* itself is the generated EXPERIMENTS.md).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

import numpy as np


def _coerce(value: Any) -> Any:
    """Make numpy scalars/arrays JSON-serializable."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    return value


def experiment_to_json(result, indent: int = 2) -> str:
    """Serialize an :class:`ExperimentResult` to a JSON document."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [_coerce(list(row)) for row in result.rows],
        "checks": dict(result.checks),
        "notes": result.notes,
        "extras": _coerce(getattr(result, "extras", {}) or {}),
    }
    return json.dumps(payload, indent=indent)


def experiment_to_csv(result) -> str:
    """Serialize an :class:`ExperimentResult`'s rows to CSV (header first)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_coerce(cell) for cell in row])
    return buf.getvalue()


def experiment_from_json(text: str):
    """Round-trip: rebuild an ExperimentResult from its JSON form."""
    from repro.evaluation.runner import ExperimentResult

    data = json.loads(text)
    return ExperimentResult(
        experiment_id=data["experiment_id"],
        title=data["title"],
        headers=data["headers"],
        rows=[tuple(r) for r in data["rows"]],
        checks=data.get("checks", {}),
        notes=data.get("notes", ""),
        extras=data.get("extras", {}),
    )
