"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def require_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate ``low <= value <= high`` and return ``value`` as float."""
    v = float(value)
    if not (low <= v <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return v


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return require_in_range(value, name, 0.0, 1.0)
