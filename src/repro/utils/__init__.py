"""Shared utilities: seeded RNG discipline, graph helpers, matching, tables.

These are the lowest layer of the library; nothing here imports from other
``repro`` subpackages.
"""

from repro.utils.numeric import safe_ratio
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.graphutils import (
    arcs_of,
    all_pairs_distances,
    is_connected,
    mean_shortest_path_length,
    to_csr_adjacency,
)
from repro.utils.matching import max_weight_assignment
from repro.utils.tables import render_table, render_series

__all__ = [
    "ensure_rng",
    "safe_ratio",
    "spawn_rngs",
    "arcs_of",
    "all_pairs_distances",
    "is_connected",
    "mean_shortest_path_length",
    "to_csr_adjacency",
    "max_weight_assignment",
    "render_table",
    "render_series",
]
