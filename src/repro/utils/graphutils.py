"""Graph helpers shared across the library.

All heavy computations (all-pairs shortest paths, connectivity) go through
``scipy.sparse.csgraph`` on CSR adjacency matrices rather than per-node Python
loops, per the vectorization guidance for this codebase.

Conventions
-----------
* Switch graphs are undirected :class:`networkx.Graph` (or ``MultiGraph`` for
  families with parallel cables) with integer node labels ``0..n-1``.
* "Arcs" are the directed unit-capacity view: every undirected edge (with
  multiplicity m) yields arcs (u, v) and (v, u) of capacity m.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph


def relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Return a copy of ``graph`` with nodes relabeled to ``0..n-1``.

    The mapping is sorted-stable (sorted by the string form of the original
    labels) so constructions with tuple-labeled nodes are deterministic.
    """
    nodes = sorted(graph.nodes(), key=lambda x: (str(type(x)), str(x)))
    mapping = {node: i for i, node in enumerate(nodes)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def to_csr_adjacency(graph: nx.Graph, weight: str | None = None) -> sp.csr_matrix:
    """CSR adjacency of ``graph`` with nodes assumed labeled ``0..n-1``.

    With ``weight=None`` every parallel edge contributes 1 to the entry, so a
    MultiGraph edge of multiplicity m appears as capacity m.
    """
    n = graph.number_of_nodes()
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    if graph.is_multigraph():
        edge_iter = graph.edges(keys=False, data=True)
    else:
        edge_iter = graph.edges(data=True)
    for u, v, attrs in edge_iter:
        w = 1.0 if weight is None else float(attrs.get(weight, 1.0))
        rows.extend((u, v))
        cols.extend((v, u))
        data.extend((w, w))
    mat = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    # duplicate (u, v) entries from parallel edges sum on conversion
    return mat.tocsr()


def arcs_of(graph: nx.Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed arc list of an undirected (multi)graph.

    Returns ``(tails, heads, capacities)`` where each undirected edge of
    multiplicity m contributes two arcs of capacity m.  Arcs are deduplicated:
    parallel edges are merged into a single arc with summed capacity, which is
    equivalent for all flow computations and keeps the LP small.
    """
    adj = to_csr_adjacency(graph)
    coo = adj.tocoo()
    return (
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        coo.data.astype(np.float64),
    )


def is_connected(graph: nx.Graph) -> bool:
    """Connectivity via a sparse BFS (fast for large graphs)."""
    n = graph.number_of_nodes()
    if n == 0:
        return True
    adj = to_csr_adjacency(graph)
    n_comp = csgraph.connected_components(adj, directed=False, return_labels=False)
    return int(n_comp) == 1


def all_pairs_distances(graph: nx.Graph) -> np.ndarray:
    """Unweighted all-pairs shortest-path length matrix (hops), float array.

    Unreachable pairs are ``inf``.  Uses scipy's BFS-based solver which is
    orders of magnitude faster than per-node Python BFS.
    """
    adj = to_csr_adjacency(graph)
    return csgraph.shortest_path(adj, method="D", unweighted=True, directed=False)


def mean_shortest_path_length(graph: nx.Graph) -> float:
    """Mean hop distance over ordered distinct pairs of a connected graph."""
    dist = all_pairs_distances(graph)
    n = dist.shape[0]
    if n < 2:
        return 0.0
    mask = ~np.eye(n, dtype=bool)
    vals = dist[mask]
    if np.any(np.isinf(vals)):
        raise ValueError("graph is disconnected; mean path length undefined")
    return float(vals.mean())


def distances_from_sources(graph: nx.Graph, sources: List[int]) -> np.ndarray:
    """BFS distances from each node in ``sources`` (rows) to all nodes."""
    adj = to_csr_adjacency(graph)
    return csgraph.shortest_path(
        adj, method="D", unweighted=True, directed=False, indices=sources
    )


def degree_sequence(graph: nx.Graph) -> np.ndarray:
    """Degrees counting edge multiplicities, indexed by node id."""
    n = graph.number_of_nodes()
    deg = np.zeros(n, dtype=np.int64)
    for node, d in graph.degree():
        deg[node] = d
    return deg


def edge_cut_capacity(graph: nx.Graph, side: np.ndarray) -> float:
    """Capacity of undirected edges crossing the cut defined by boolean ``side``.

    ``side[v]`` is True when v belongs to S.  Counts multiplicity; an
    undirected edge counts once (its directed-arc capacity is this value in
    each direction).
    """
    adj = to_csr_adjacency(graph)
    s = side.astype(np.float64)
    # x^T A (1-x) sums the weight of edges from S to complement, once per
    # undirected edge because A is symmetric and we only take one orientation.
    return float(s @ adj @ (1.0 - s))


def random_connected_regular_graph(
    degree: int, n: int, rng: np.random.Generator, max_tries: int = 200
) -> nx.Graph:
    """A connected random ``degree``-regular simple graph on ``n`` nodes.

    Rejection-samples ``networkx.random_regular_graph``; for the sizes and
    degrees used here disconnection is rare, so a couple of tries suffice.
    """
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n {n}")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    for _ in range(max_tries):
        seed = int(rng.integers(0, 2**31 - 1))
        g = nx.random_regular_graph(degree, n, seed=seed)
        if nx.is_connected(g):
            return nx.convert_node_labels_to_integers(g)
    raise RuntimeError(
        f"could not sample a connected {degree}-regular graph on {n} nodes"
    )
