"""Maximum-weight assignment used by the longest-matching traffic matrix.

The longest-matching TM (paper §II-C) is a maximum-weight perfect matching in
the complete bipartite graph whose edge (v, w) has weight dist(v, w): i.e. the
assignment problem, solved exactly by the Jonker–Volgenant implementation in
:func:`scipy.optimize.linear_sum_assignment`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

# Weight used to forbid an assignment cell (e.g. self pairs).  Large and
# negative but finite, so the solver can still fall back to a forbidden cell
# if no other perfect matching exists (callers check for that explicitly).
_FORBIDDEN = -1.0e12


def max_weight_assignment(
    weights: np.ndarray, forbid_diagonal: bool = True
) -> Tuple[np.ndarray, float]:
    """Maximum-weight perfect matching on a square weight matrix.

    Parameters
    ----------
    weights:
        (n, n) array; ``weights[i, j]`` is the benefit of assigning source i
        to destination j.  Must be finite.
    forbid_diagonal:
        Exclude i → i pairs (a traffic flow from a server to itself is
        meaningless).  Requires n ≠ 1.

    Returns
    -------
    (assignment, total_weight):
        ``assignment[i]`` is the destination matched to source i, and
        ``total_weight`` the matching's weight under the *original* matrix.

    Raises
    ------
    ValueError
        If the matrix is not square, contains non-finite entries, or no
        diagonal-free perfect matching exists (only possible for n == 1).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"weights must be square, got shape {w.shape}")
    if not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite")
    n = w.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), 0.0
    work = w.copy()
    if forbid_diagonal:
        if n == 1:
            raise ValueError("no diagonal-free assignment exists for n=1")
        np.fill_diagonal(work, _FORBIDDEN)
    rows, cols = linear_sum_assignment(work, maximize=True)
    if forbid_diagonal and np.any(rows == cols):
        # Can only happen if the forbidden weight was selected, i.e. no
        # derangement assignment exists — impossible for n >= 2 on a complete
        # bipartite graph, so treat as an internal error.
        raise RuntimeError("assignment selected a forbidden diagonal cell")
    assignment = np.empty(n, dtype=np.int64)
    assignment[rows] = cols
    total = float(w[rows, cols].sum())
    return assignment, total
