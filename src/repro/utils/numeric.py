"""Small numeric helpers shared across evaluation code."""

from __future__ import annotations

import numpy as np


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with principled degenerate cases.

    A zero denominator historically mapped to ``inf`` everywhere a relative
    metric was computed, which silently misreports the 0/0 case: a zero
    numerator over a zero denominator is an *undefined* comparison (both
    sides failed), not an infinitely good one.  Returns:

    * the plain ratio when ``denominator > 0``;
    * ``nan`` when both are 0 (undefined, excluded from aggregates by
      ``nanmean``-style reductions);
    * ``inf`` when only the denominator is 0.
    """
    if denominator > 0:
        return float(numerator) / float(denominator)
    if numerator == 0:
        return float("nan")
    return float(np.inf)
