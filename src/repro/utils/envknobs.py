"""Central registry of ``REPRO_*`` environment knobs.

Every environment variable that changes library behavior is declared here,
and **every** ``os.environ`` read in the library goes through the typed
accessors below.  This is the single whitelisted module for rule **R003**
(``stray-env-knob``) of ``repro lint``: an env knob that changes solve
output but is read ad hoc at a call site is a cache-key hazard — PR 5's
backend-missing-from-key bug was exactly that shape — so new knobs must be
declared in :data:`KNOBS` (with whether they are result-affecting) before
any code can read them.

The declared table is also the documentation source of truth: tests assert
that each knob appears in the README knob table and that no undeclared
``REPRO_*`` name is referenced anywhere under ``src/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class EnvKnob:
    """Declaration of one environment knob.

    ``result_affecting`` marks knobs that can change solve *output* (engine
    routing, backend choice, tolerance): any such knob must be frozen into
    the cache key by the layer that consumes it, never read inside a solve.
    """

    name: str
    kind: str  # "str" | "int" | "float"
    default: Optional[str]  # documented default (None = no default)
    result_affecting: bool
    description: str


_DECLARED = [
    EnvKnob(
        "REPRO_SCALE",
        kind="str",
        default="small",
        result_affecting=True,
        description="experiment scale preset (small | medium | large); "
        "selects instance sizes and sample counts for every sweep",
    ),
    EnvKnob(
        "REPRO_CACHE_DIR",
        kind="str",
        default="~/.cache/repro",
        result_affecting=False,
        description="directory of the persistent result cache",
    ),
    EnvKnob(
        "REPRO_CACHE_BACKEND",
        kind="str",
        default="jsonl",
        result_affecting=False,
        description="result-cache storage backend (jsonl | sqlite)",
    ),
    EnvKnob(
        "REPRO_LP_BACKEND",
        kind="str",
        default="auto",
        result_affecting=True,
        description="dense-LP backend for every solve that does not name "
        "one explicitly; the resolved name is frozen into cache keys",
    ),
    EnvKnob(
        "REPRO_SHARD_THRESHOLD",
        kind="int",
        default="2000000",
        result_affecting=True,
        description="dense-LP flow-variable count above which the 'auto' "
        "engine policy abandons the dense path; frozen into resolved "
        "shard params at request construction",
    ),
    EnvKnob(
        "REPRO_SHARD_BLOCKS",
        kind="int",
        default=None,
        result_affecting=True,
        description="source-block count for the sharded engine (default: "
        "sized so each shard LP stays under the threshold); frozen into "
        "resolved shard params at request construction",
    ),
    EnvKnob(
        "REPRO_LARGE_ENGINE",
        kind="str",
        default="sharded",
        result_affecting=True,
        description="engine the 'auto' policy prefers above the shard "
        "threshold (sharded | mwu)",
    ),
    EnvKnob(
        "REPRO_SERVICE_PORT",
        kind="int",
        default="8432",
        result_affecting=False,
        description="default TCP port of 'repro serve' (the HTTP "
        "throughput service); --port overrides",
    ),
    EnvKnob(
        "REPRO_SERVICE_MAX_INFLIGHT",
        kind="int",
        default=None,
        result_affecting=False,
        description="total concurrent solve jobs the service admits "
        "before answering 429 (default: 2x solver workers, min 8); "
        "--max-inflight overrides",
    ),
    EnvKnob(
        "REPRO_SERVICE_TENANT_CAP",
        kind="int",
        default=None,
        result_affecting=False,
        description="per-tenant concurrent job cap in the service "
        "(default: half the in-flight budget); --tenant-cap overrides",
    ),
    EnvKnob(
        "REPRO_SIM_ROUTING",
        kind="str",
        default="ecmp",
        result_affecting=True,
        description="route-set mode of the 'sim' fluid-simulator engine "
        "(ecmp | ksp); frozen into resolved sim params at request "
        "construction",
    ),
    EnvKnob(
        "REPRO_SIM_K",
        kind="int",
        default="4",
        result_affecting=True,
        description="paths per commodity when the 'sim' engine routes "
        "with ksp; ignored (and dropped from cache keys) under ecmp "
        "routing",
    ),
    EnvKnob(
        "REPRO_LPMODEL_CACHE",
        kind="int",
        default="32",
        result_affecting=False,
        description="LRU capacity (entries) of the per-process compiled "
        "LP model cache (0 disables skeleton reuse); an accelerator only "
        "-- skeleton-served solves are bit-identical to cold assembly",
    ),
    EnvKnob(
        "REPRO_WHATIF_RTOL",
        kind="float",
        default="1e-6",
        result_affecting=True,
        description="relative gap at which the what-if engine answers a "
        "scenario from parent-dual bounds alone (bound-skipped results "
        "are never cached, so the tolerance never poisons the cache)",
    ),
]

#: The knob table, keyed by environment-variable name.
KNOBS: Dict[str, EnvKnob] = {knob.name: knob for knob in _DECLARED}


def read_knob(name: str) -> Optional[str]:
    """Raw value of a *declared* knob, or ``None`` when unset.

    Reading an undeclared name raises ``KeyError`` — declare the knob in
    :data:`KNOBS` first (and document it in the README table).
    """
    if name not in KNOBS:
        raise KeyError(
            f"undeclared environment knob {name!r}; add it to "
            f"repro.utils.envknobs.KNOBS before reading it"
        )
    return os.environ.get(name)


def knob_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """String knob value, or ``default`` when unset."""
    raw = read_knob(name)
    return default if raw is None else raw


def knob_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """Integer knob value, or ``default`` when unset or empty."""
    raw = read_knob(name)
    if raw is None or raw == "":
        return default
    return int(raw)


def knob_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """Float knob value, or ``default`` when unset or empty."""
    raw = read_knob(name)
    if raw is None or raw == "":
        return default
    return float(raw)


__all__ = [
    "EnvKnob",
    "KNOBS",
    "read_knob",
    "knob_str",
    "knob_int",
    "knob_float",
]
