"""Compiled sparse instance core.

:class:`ArcGraph` is the array-native form of one network instance: the
canonical directed arc list (``tails``/``heads``/``caps``), a CSR adjacency
view, and a content digest computed **once** at compile time.  Everything
downstream of topology construction — the throughput engines, the cut and
property code, and the batch layer's content-addressed keys — speaks
``ArcGraph`` instead of walking the networkx graph, which makes repeated
arc extraction, key hashing, and pool-worker payloads cheap.

``Topology.compile()`` (:mod:`repro.topologies.base`) builds and caches the
``ArcGraph`` of a topology; :func:`as_arcgraph` normalizes either form.
See DESIGN.md "Compiled instance core".

:mod:`repro.core.routes` compiles deterministic fixed route sets (ECMP
splits or k-shortest paths) directly on the arc arrays — the input the
fluid simulator (:mod:`repro.sim`) allocates rates over.
"""

from repro.core.arcgraph import ArcGraph, as_arcgraph, compile_graph
from repro.core.routes import (
    ROUTING_MODES,
    RouteSet,
    compile_routes,
    k_shortest_routes,
)

__all__ = [
    "ArcGraph",
    "as_arcgraph",
    "compile_graph",
    "RouteSet",
    "ROUTING_MODES",
    "compile_routes",
    "k_shortest_routes",
]
