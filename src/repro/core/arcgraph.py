"""The compiled sparse instance core: :class:`ArcGraph`.

An ``ArcGraph`` is the immutable, array-native form of one network's
directed-arc view:

* ``tails`` / ``heads`` / ``caps`` — the canonical arc list (int64/int64/
  float64), sorted by ``(tail, head)`` with parallel arcs merged, exactly
  the order :func:`repro.utils.graphutils.arcs_of` has always produced;
* ``indptr`` — CSR row offsets over ``tails``, so per-node adjacency and
  scipy ``csgraph`` calls need no conversion;
* ``digest`` — a SHA-256 content digest over ``(n_nodes, tails, heads,
  caps)``, computed **once** at compile time.  The batch layer's
  content-addressed instance keys reuse it instead of re-hashing the full
  arc arrays per request (:func:`repro.batch.jobs.instance_key`).

The digest is two-stage: a *structure* digest over ``(n_nodes, tails,
heads)`` plus a capacity hash on top.  :meth:`with_caps` — the capacity
overlay used by the sharded engine's :class:`CapacitySlicedTopology` —
therefore re-hashes only the 32-byte structure digest and the new capacity
vector, never the arc structure.

Instances are immutable: the arrays are marked read-only at construction,
and every derived quantity (CSR adjacency, hop distances, the reverse-arc
permutation) is computed lazily and memoized.  Equality of content is
equality of ``digest``; two independently compiled graphs with the same
canonical arcs and capacities are interchangeable everywhere.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

#: Bump when the digest layout changes; cache keys built on it then miss.
ARCGRAPH_VERSION = b"repro-arcgraph-v1"


def _content_digests(
    n_nodes: int, tails: np.ndarray, heads: np.ndarray, caps: np.ndarray
) -> Tuple[bytes, str]:
    """(structure digest bytes, full content digest hex) of one arc set.

    Split out as a module function so tests can count invocations — the
    whole point of compiling is that this runs once per topology, not once
    per solve request.
    """
    h = hashlib.sha256()
    h.update(ARCGRAPH_VERSION)
    h.update(b"\x00n\x00" + str(n_nodes).encode())
    h.update(b"\x00arcs\x00")
    h.update(tails.tobytes())
    h.update(heads.tobytes())
    structure = h.digest()
    return structure, _cap_digest(structure, caps)


def _cap_digest(structure: bytes, caps: np.ndarray) -> str:
    """Full content digest from a structure digest and a capacity vector."""
    h = hashlib.sha256()
    h.update(structure)
    h.update(b"\x00caps\x00")
    h.update(caps.tobytes())
    return h.hexdigest()


def _frozen(arr: np.ndarray, dtype) -> np.ndarray:
    """A C-contiguous read-only copy-if-needed view of ``arr``."""
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out is arr or out.base is arr:
        out = out.copy()
    out.flags.writeable = False
    return out


class ArcGraph:
    """Immutable compiled arc view of one topology (see module docstring).

    Construct via :meth:`from_arrays` / :func:`compile_graph` or, almost
    always, via :meth:`repro.topologies.base.Topology.compile`.
    """

    __slots__ = (
        "n_nodes",
        "tails",
        "heads",
        "caps",
        "indptr",
        "structure_digest",
        "digest",
        "_memo",
    )

    def __init__(
        self,
        n_nodes: int,
        tails: np.ndarray,
        heads: np.ndarray,
        caps: np.ndarray,
    ) -> None:
        n_nodes = int(n_nodes)
        if n_nodes < 1:
            raise ValueError("ArcGraph needs at least one node")
        tails = np.ascontiguousarray(tails, dtype=np.int64)
        heads = np.ascontiguousarray(heads, dtype=np.int64)
        caps = np.ascontiguousarray(caps, dtype=np.float64)
        if not (tails.shape == heads.shape == caps.shape) or tails.ndim != 1:
            raise ValueError("tails/heads/caps must be equal-length 1-D arrays")
        if tails.size:
            lo = min(int(tails.min()), int(heads.min()))
            hi = max(int(tails.max()), int(heads.max()))
            if lo < 0 or hi >= n_nodes:
                raise ValueError(
                    f"arc endpoints must lie in [0, {n_nodes}), got [{lo}, {hi}]"
                )
            if np.any(tails == heads):
                raise ValueError("self-loop arcs are not allowed")
        # Canonicalize: sort by (tail, head).  Arrays from arcs_of() are
        # already canonical, so this is a cheap monotonicity check there.
        key = tails * np.int64(n_nodes) + heads
        if tails.size and np.any(np.diff(key) <= 0):
            if np.unique(key).size != key.size:
                raise ValueError("duplicate arcs; merge parallel arcs first")
            order = np.argsort(key, kind="stable")
            tails, heads, caps = tails[order], heads[order], caps[order]
        object.__setattr__(self, "n_nodes", n_nodes)
        object.__setattr__(self, "tails", _frozen(tails, np.int64))
        object.__setattr__(self, "heads", _frozen(heads, np.int64))
        object.__setattr__(self, "caps", _frozen(caps, np.float64))
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(tails, minlength=n_nodes), out=indptr[1:])
        indptr.flags.writeable = False
        object.__setattr__(self, "indptr", indptr)
        structure, digest = _content_digests(
            n_nodes, self.tails, self.heads, self.caps
        )
        object.__setattr__(self, "structure_digest", structure)
        object.__setattr__(self, "digest", digest)
        object.__setattr__(self, "_memo", {})

    # The slots are assigned once in __init__ / __setstate__; everything
    # else is an error — ArcGraph is shared across requests and caches.
    def __setattr__(self, name: str, value) -> None:  # pragma: no cover
        raise AttributeError(f"ArcGraph is immutable (cannot set {name!r})")

    # ------------------------------------------------------------ construction
    @classmethod
    def from_arrays(
        cls,
        n_nodes: int,
        tails: np.ndarray,
        heads: np.ndarray,
        caps: np.ndarray,
    ) -> "ArcGraph":
        """Compile an arc list (canonicalized on the way in)."""
        return cls(n_nodes, tails, heads, caps)

    def with_caps(self, caps: np.ndarray) -> "ArcGraph":
        """A capacity overlay: same arc structure, new capacity vector.

        This is the cheap path the sharded engine's capacity slices take —
        the shared ``tails``/``heads``/``indptr`` arrays and the 32-byte
        structure digest are reused, so only the new capacities are hashed.
        The resulting digest is identical to a from-scratch compile of the
        same ``(structure, caps)`` content.
        """
        caps = _frozen(caps, np.float64)
        if caps.shape != self.caps.shape:
            raise ValueError(
                f"caps must have shape {self.caps.shape}, got {caps.shape}"
            )
        out = object.__new__(ArcGraph)
        object.__setattr__(out, "n_nodes", self.n_nodes)
        object.__setattr__(out, "tails", self.tails)
        object.__setattr__(out, "heads", self.heads)
        object.__setattr__(out, "caps", caps)
        object.__setattr__(out, "indptr", self.indptr)
        object.__setattr__(out, "structure_digest", self.structure_digest)
        object.__setattr__(out, "digest", _cap_digest(self.structure_digest, caps))
        object.__setattr__(out, "_memo", {})
        return out

    def with_scaled_caps(self, factor: float) -> "ArcGraph":
        """A uniform capacity-degradation overlay: every cap scaled by
        ``factor`` (>= 0).  Shares structure with :meth:`with_caps`."""
        factor = float(factor)
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return self.with_caps(self.caps * factor)

    def with_failed_arcs(
        self, arc_ids: np.ndarray, symmetric: bool = True
    ) -> "ArcGraph":
        """A failure overlay: the given arcs get capacity 0.

        ``symmetric=True`` (the default, matching undirected cable
        failures) also zeroes each arc's opposite-direction partner, so a
        direction-symmetric parent stays direction-symmetric.  This is the
        what-if engine's perturbation primitive: the overlay shares the
        parent's arrays and structure digest, so constructing thousands of
        failure scenarios costs one capacity vector each.
        """
        arc_ids = np.asarray(arc_ids, dtype=np.int64)
        if arc_ids.size and (
            arc_ids.min() < 0 or arc_ids.max() >= self.n_arcs
        ):
            raise ValueError(
                f"arc ids must lie in [0, {self.n_arcs}), got "
                f"[{int(arc_ids.min())}, {int(arc_ids.max())}]"
            )
        caps = np.array(self.caps)
        caps[arc_ids] = 0.0
        if symmetric:
            caps[self.reverse_permutation()[arc_ids]] = 0.0
        return self.with_caps(caps)

    def undirected_links(self) -> np.ndarray:
        """The ``(n_links, 2)`` arc-id pairs of each undirected cable bundle.

        Row ``[i, rev(i)]`` with ``i < rev(i)`` — one row per unordered
        ``{u, v}`` adjacency, in canonical arc order of the lower arc id.
        Scenario generators sample *links* from this and fail both arc
        directions.  Memoized; requires a direction-symmetric arc set.
        """
        links = self._memo.get("undirected_links")
        if links is None:
            rev = self.reverse_permutation()
            fwd = np.flatnonzero(np.arange(self.n_arcs) < rev)
            links = np.column_stack([fwd, rev[fwd]])
            links.flags.writeable = False
            self._memo["undirected_links"] = links
        return links

    def capacity_connected(self) -> bool:
        """Connectivity over positive-capacity arcs only.

        Unlike :meth:`is_connected` (which treats every structural arc as
        an edge), this ignores arcs a failure overlay has zeroed — the
        question a what-if scenario asks of its perturbed instance.
        """
        if self.n_nodes <= 1:
            return True
        alive = self.caps > 0
        if not np.all(alive):
            adj = sp.csr_matrix(
                (
                    self.caps[alive],
                    (self.tails[alive], self.heads[alive]),
                ),
                shape=(self.n_nodes, self.n_nodes),
            )
        else:
            adj = self.adjacency()
        n_comp = csgraph.connected_components(
            adj, directed=False, return_labels=False
        )
        return int(n_comp) == 1

    # ---------------------------------------------------------------- pickling
    def __getstate__(self) -> Dict:
        # Memoized derivatives are dropped: they are cheap to rebuild and
        # (hop distances) potentially large.  The digests travel with the
        # arrays so unpickling never re-hashes.
        return {
            "n_nodes": self.n_nodes,
            "tails": np.asarray(self.tails),
            "heads": np.asarray(self.heads),
            "caps": np.asarray(self.caps),
            "indptr": np.asarray(self.indptr),
            "structure_digest": self.structure_digest,
            "digest": self.digest,
        }

    def __setstate__(self, state: Dict) -> None:
        for name in ("tails", "heads", "caps", "indptr"):
            state[name].flags.writeable = False
        for name in (
            "n_nodes",
            "tails",
            "heads",
            "caps",
            "indptr",
            "structure_digest",
            "digest",
        ):
            object.__setattr__(self, name, state[name])
        object.__setattr__(self, "_memo", {})

    # ------------------------------------------------------------------ sizes
    @property
    def n_arcs(self) -> int:
        """Number of directed arcs (parallel cables merged)."""
        return int(self.tails.size)

    def arc_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The canonical ``(tails, heads, caps)`` triple (read-only views)."""
        return self.tails, self.heads, self.caps

    def total_capacity(self) -> float:
        """Sum of directed arc capacities."""
        return float(self.caps.sum())

    # --------------------------------------------------------------- adjacency
    def adjacency(self) -> sp.csr_matrix:
        """Capacity-weighted CSR adjacency (memoized; treat as read-only).

        Identical in structure and values to
        :func:`repro.utils.graphutils.to_csr_adjacency` of the source
        graph: symmetric for ordinary topologies, entry = summed parallel
        capacity.
        """
        adj = self._memo.get("adjacency")
        if adj is None:
            adj = self.csr_with(self.caps)
            self._memo["adjacency"] = adj
        return adj

    def csr_with(self, data: np.ndarray) -> sp.csr_matrix:
        """CSR matrix with this graph's structure and per-arc ``data``.

        The arc list is already in CSR order, so this is a zero-sort
        wrapper — the fast path for per-round length functions (MWU, the
        sharded coordinator's metric bound).
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.shape != self.tails.shape:
            raise ValueError("data must have one entry per arc")
        return sp.csr_matrix(
            (data, self.heads, self.indptr), shape=(self.n_nodes, self.n_nodes)
        )

    def degrees(self) -> np.ndarray:
        """Capacity-weighted out-degree per node, as int64 (memoized).

        Equals the networkx multiplicity-counting degree sequence for
        compiled (integer-capacity) topologies.  Raises ``ValueError`` for
        non-integral capacity vectors (e.g. a shard capacity slice) —
        cable-count degrees are undefined there, and truncating would be
        silently wrong.
        """
        deg = self._memo.get("degrees")
        if deg is None:
            out = np.zeros(self.n_nodes, dtype=np.float64)
            np.add.at(out, self.tails, self.caps)
            rounded = np.rint(out)
            if not np.allclose(out, rounded, rtol=0.0, atol=1e-9):
                raise ValueError(
                    "degree sequence undefined for non-integral capacities "
                    "(capacity-sliced view?)"
                )
            deg = rounded.astype(np.int64)
            deg.flags.writeable = False
            self._memo["degrees"] = deg
        return deg

    # ----------------------------------------------------------------- lookup
    def arc_ids(self, tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
        """Vectorized arc index lookup: position of each ``(tail, head)``.

        Raises ``KeyError`` if any queried arc is absent.  O(q log m) via
        binary search on the canonical sort keys — replaces the per-call
        Python dict the engines used to build.
        """
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        want = tails * np.int64(self.n_nodes) + heads
        have = self._sort_keys()
        pos = np.searchsorted(have, want)
        ok = (pos < have.size) & (have[np.minimum(pos, have.size - 1)] == want)
        if not np.all(ok):
            bad = int(np.flatnonzero(~ok)[0])
            raise KeyError(f"no arc ({int(tails[bad])}, {int(heads[bad])})")
        return pos

    def _sort_keys(self) -> np.ndarray:
        keys = self._memo.get("sort_keys")
        if keys is None:
            keys = self.tails * np.int64(self.n_nodes) + self.heads
            keys.flags.writeable = False
            self._memo["sort_keys"] = keys
        return keys

    # ------------------------------------------------------------- structure
    def reverse_permutation(self) -> np.ndarray:
        """Permutation mapping each arc to its opposite-direction partner.

        Memoized.  Raises ``ValueError`` when some arc has no reverse
        partner (the arc set is not direction-symmetric).
        """
        rev = self._memo.get("reverse")
        if rev is None:
            have = self._sort_keys()
            want = self.heads * np.int64(self.n_nodes) + self.tails
            pos = np.searchsorted(have, want)
            ok = (pos < have.size) & (
                have[np.minimum(pos, have.size - 1)] == want
            )
            if not np.all(ok):
                self._memo["reverse"] = False
                raise ValueError("arc set is not direction-symmetric")
            rev = pos
            rev.flags.writeable = False
            self._memo["reverse"] = rev
        elif rev is False:
            raise ValueError("arc set is not direction-symmetric")
        return rev

    def transpose_safe(self) -> bool:
        """True when every arc has an equal-capacity reverse partner.

        Only then is solving the transposed demand equivalent (all flows
        reversed).  Memoized — the dense engine consults this per solve.
        """
        safe = self._memo.get("transpose_safe")
        if safe is None:
            try:
                rev = self.reverse_permutation()
            except ValueError:
                safe = False
            else:
                safe = bool(np.array_equal(self.caps, self.caps[rev]))
            self._memo["transpose_safe"] = safe
        return safe

    # ---------------------------------------------------------------- metrics
    def is_connected(self) -> bool:
        """Undirected connectivity via sparse connected components (memoized)."""
        conn = self._memo.get("connected")
        if conn is None:
            if self.n_nodes <= 1:
                conn = True
            else:
                n_comp = csgraph.connected_components(
                    self.adjacency(), directed=False, return_labels=False
                )
                conn = int(n_comp) == 1
            self._memo["connected"] = conn
        return conn

    def hop_distances(self, sources: Optional[np.ndarray] = None) -> np.ndarray:
        """Unweighted shortest-path hop distances (``inf`` if unreachable).

        ``sources=None`` computes (and memoizes) the full all-pairs
        matrix — the quantity the property, cut, and worst-case-TM code all
        need, now paid once per topology instead of once per caller.  With
        ``sources`` given, rows come from the memoized matrix when present,
        else from a targeted BFS.
        """
        full = self._memo.get("hop_distances")
        if sources is None:
            if full is None:
                full = csgraph.shortest_path(
                    self.adjacency(), method="D", unweighted=True, directed=False
                )
                full.flags.writeable = False
                self._memo["hop_distances"] = full
            return full
        sources = np.asarray(sources, dtype=np.int64)
        if full is not None:
            return full[sources]
        return csgraph.shortest_path(
            self.adjacency(),
            method="D",
            unweighted=True,
            directed=False,
            indices=sources,
        )

    # ------------------------------------------------------------------ dunder
    def compile(self) -> "ArcGraph":
        """An ArcGraph compiles to itself (duck-types ``Topology.compile``)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArcGraph(nodes={self.n_nodes}, arcs={self.n_arcs}, "
            f"digest={self.digest[:12]})"
        )


def compile_graph(graph) -> ArcGraph:
    """Compile a networkx (multi)graph into an :class:`ArcGraph`.

    Uses the same canonical arc extraction as
    :func:`repro.utils.graphutils.arcs_of` (CSR-merged parallel edges, both
    directions, sorted by ``(tail, head)``), so the compiled arrays are
    bit-identical to what ``Topology.arcs()`` has always returned.
    """
    # Imported here: graphutils pulls in networkx, which the array-only
    # paths through this module never need.
    from repro.utils.graphutils import arcs_of

    tails, heads, caps = arcs_of(graph)
    return ArcGraph(graph.number_of_nodes(), tails, heads, caps)


def as_arcgraph(instance) -> ArcGraph:
    """Normalize a :class:`Topology` or :class:`ArcGraph` to an ArcGraph."""
    if isinstance(instance, ArcGraph):
        return instance
    compiled = getattr(instance, "compile", None)
    if compiled is not None:
        return compiled()
    raise TypeError(
        f"cannot compile {type(instance).__name__!r} into an ArcGraph"
    )
