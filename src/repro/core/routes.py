"""Deterministic route-set compilation on the compiled core.

The fluid simulator (:mod:`repro.sim`) allocates rates over *fixed* route
sets.  This module builds those sets directly on :class:`ArcGraph` arrays —
no networkx, no dependence on graph build order — in two modes:

* ``"ecmp"`` — every commodity splits equally over all of its shortest
  paths, expressed as one fractional arc-incidence vector per commodity
  (the standard per-node equal split over downhill neighbors, the same
  rule :func:`repro.routing.schemes.ecmp_throughput` applies).
* ``"ksp"`` — up to ``k`` shortest loopless paths per commodity (Yen's
  algorithm), demand split equally across the paths found.

**Determinism without iteration-order hashing.**  The legacy ``paths``
engine enumerates with networkx, whose tie-breaking follows adjacency
*insertion* order — which is why its cache keys must hash the as-built
iteration fingerprint.  Here every tie breaks lexicographically on the
canonical ``(tail, head)``-sorted arc list: two graphs with equal
``ArcGraph.digest`` compile byte-identical route sets, so the ``sim``
engine's cache key needs nothing beyond the content digests and the
resolved routing params.

Routes use **positive-capacity arcs only** — a failure overlay
(:meth:`ArcGraph.with_failed_arcs`) reroutes or, when a commodity is cut
off, leaves it with zero subflows (the simulator reports it unroutable).

The compiled :class:`RouteSet` is array-native: one sparse arc×subflow
fraction matrix plus flat per-subflow commodity/weight arrays, ready for
the allocator's vectorized bottleneck search.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.arcgraph import ArcGraph, as_arcgraph

#: Supported routing modes (the value space of ``REPRO_SIM_ROUTING``).
ROUTING_MODES = ("ecmp", "ksp")

#: Subflow count per commodity in ``ksp`` mode when none is given.
DEFAULT_KSP_K = 4

PairArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


class RouteSet:
    """Compiled fixed routes for a set of commodities on one arc set.

    Attributes
    ----------
    n_arcs, n_commodities, n_subflows:
        Shape of the compiled set.  A *subflow* is one routed unit — a
        single path in ``ksp`` mode, the whole ECMP split DAG in ``ecmp``
        mode.
    srcs, dsts, demands:
        The commodities, in the row-major nonzero order of the source TM.
    sub_commodity:
        Commodity index of each subflow (int64, nondecreasing).
    sub_weight:
        Demand share each subflow carries per unit of allocation level:
        ``demand / n_paths`` in ``ksp`` mode, ``demand`` in ``ecmp`` mode.
    incidence:
        ``(n_arcs, n_subflows)`` CSR matrix; entry ``(a, f)`` is the
        fraction of subflow ``f``'s rate crossing arc ``a`` (1.0 on a
        path, fractional on an ECMP split).
    routing, k:
        The resolved route parameters (``k`` is ``None`` in ecmp mode).

    A commodity that cannot reach its destination over positive-capacity
    arcs has zero subflows; see :meth:`routable`.
    """

    def __init__(
        self,
        n_arcs: int,
        srcs: np.ndarray,
        dsts: np.ndarray,
        demands: np.ndarray,
        sub_commodity: np.ndarray,
        sub_weight: np.ndarray,
        incidence: sp.csr_matrix,
        routing: str,
        k: Optional[int],
    ) -> None:
        self.n_arcs = int(n_arcs)
        self.srcs = _frozen(srcs, np.int64)
        self.dsts = _frozen(dsts, np.int64)
        self.demands = _frozen(demands, np.float64)
        self.sub_commodity = _frozen(sub_commodity, np.int64)
        self.sub_weight = _frozen(sub_weight, np.float64)
        self.incidence = incidence
        self.routing = routing
        self.k = k

    @property
    def n_commodities(self) -> int:
        return int(self.srcs.size)

    @property
    def n_subflows(self) -> int:
        return int(self.sub_commodity.size)

    def subflow_counts(self) -> np.ndarray:
        """Number of subflows per commodity (0 = unroutable)."""
        return np.bincount(self.sub_commodity, minlength=self.n_commodities)

    def routable(self) -> np.ndarray:
        """Boolean mask of commodities with at least one route."""
        return self.subflow_counts() > 0

    def sub_arc_span(self) -> np.ndarray:
        """Fraction-weighted arc count per subflow (its effective hop length)."""
        return np.asarray(self.incidence.sum(axis=0)).ravel()

    def weighted_incidence(self) -> sp.csr_matrix:
        """``incidence`` with each subflow column scaled by its weight.

        ``weighted_incidence() @ levels`` is the per-arc load of an
        allocation — the allocator's inner product.
        """
        return self.incidence.multiply(self.sub_weight[np.newaxis, :]).tocsr()

    def content_digest(self) -> str:
        """SHA-256 over the compiled arrays and the routing params.

        Equal digests mean byte-identical route sets; the determinism
        tests compare digests across independent compiles.
        """
        inc = self.incidence.tocsr()
        h = hashlib.sha256()
        h.update(b"repro-routes-v1")
        h.update(f"\x00{self.routing}\x00{self.k}\x00{self.n_arcs}\x00".encode())
        for arr in (
            self.srcs,
            self.dsts,
            self.demands,
            self.sub_commodity,
            self.sub_weight,
            np.ascontiguousarray(inc.indptr, dtype=np.int64),
            np.ascontiguousarray(inc.indices, dtype=np.int64),
            np.ascontiguousarray(inc.data, dtype=np.float64),
        ):
            h.update(arr.tobytes())
            h.update(b"\x00")
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RouteSet(routing={self.routing!r}, commodities="
            f"{self.n_commodities}, subflows={self.n_subflows})"
        )


def _frozen(arr: Union[np.ndarray, Sequence], dtype: type) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.flags.writeable:
        out = out.copy() if out.base is not None else out
        out.flags.writeable = False
    return out


class _PositiveAdjacency:
    """Forward and reverse adjacency over positive-capacity arcs.

    All arrays follow the canonical ``(tail, head)`` sort of the parent
    :class:`ArcGraph`, so neighbor iteration order — and therefore every
    tie-break below — is a pure function of graph content.
    """

    def __init__(self, ag: ArcGraph) -> None:
        alive = ag.caps > 0
        self.arc_ids = np.flatnonzero(alive)  # local -> global arc id
        self.tails = ag.tails[self.arc_ids]
        self.heads = ag.heads[self.arc_ids]
        n = ag.n_nodes
        self.n_nodes = n
        self.fwd_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.tails, minlength=n), out=self.fwd_indptr[1:])
        # Reverse adjacency: arcs sorted by (head, tail); needed for the
        # distance-to-destination BFS (arcs may be direction-asymmetric).
        rev_order = np.lexsort((self.tails, self.heads))
        self.rev_local = rev_order  # reverse slot -> local arc index
        self.rev_tails = self.tails[rev_order]
        rev_heads = self.heads[rev_order]
        self.rev_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rev_heads, minlength=n), out=self.rev_indptr[1:])

    def dist_to(
        self,
        dst: int,
        banned_nodes: Optional[Set[int]] = None,
        banned_arcs: Optional[Set[int]] = None,
    ) -> np.ndarray:
        """Hop distance from every node *to* ``dst`` (inf if unreachable).

        BFS over incoming arcs; ``banned_arcs`` holds *local* arc indices.
        """
        n = self.n_nodes
        dist = np.full(n, np.inf)
        if banned_nodes and dst in banned_nodes:
            return dist
        dist[dst] = 0.0
        frontier = [dst]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                d = dist[v] + 1.0
                for slot in range(self.rev_indptr[v], self.rev_indptr[v + 1]):
                    if banned_arcs and int(self.rev_local[slot]) in banned_arcs:
                        continue
                    u = int(self.rev_tails[slot])
                    if dist[u] != np.inf:
                        continue
                    if banned_nodes and u in banned_nodes:
                        continue
                    dist[u] = d
                    nxt.append(u)
            frontier = nxt
        return dist

    def lex_shortest(
        self,
        src: int,
        dist: np.ndarray,
        banned_nodes: Optional[Set[int]] = None,
        banned_arcs: Optional[Set[int]] = None,
    ) -> Tuple[Tuple[int, ...], List[int]]:
        """The lexicographically smallest shortest path from ``src``.

        ``dist`` must be a :meth:`dist_to` result computed under the same
        bans.  Follows the unique greedy rule: at each node take the
        lowest-numbered neighbor one hop closer to the destination.
        Returns the node tuple and the local arc indices traversed.
        """
        nodes = [src]
        arcs: List[int] = []
        u = src
        while dist[u] > 0:
            target = dist[u] - 1.0
            for local in range(self.fwd_indptr[u], self.fwd_indptr[u + 1]):
                if banned_arcs and local in banned_arcs:
                    continue
                v = int(self.heads[local])
                if banned_nodes and v in banned_nodes:
                    continue
                if dist[v] == target:
                    nodes.append(v)
                    arcs.append(local)
                    u = v
                    break
            else:  # pragma: no cover - dist guarantees a downhill arc
                raise RuntimeError("no downhill arc despite finite distance")
        return tuple(nodes), arcs


def _path_arcs(adj: _PositiveAdjacency, nodes: Tuple[int, ...]) -> List[int]:
    """Local arc indices of a node path (each hop's canonical arc)."""
    arcs: List[int] = []
    for u, v in zip(nodes[:-1], nodes[1:]):
        for local in range(adj.fwd_indptr[u], adj.fwd_indptr[u + 1]):
            if int(adj.heads[local]) == v:
                arcs.append(local)
                break
        else:  # pragma: no cover - paths are built from live arcs
            raise KeyError(f"no positive-capacity arc ({u}, {v})")
    return arcs


def k_shortest_routes(
    ag: ArcGraph, src: int, dst: int, k: int
) -> List[Tuple[int, ...]]:
    """Up to ``k`` shortest loopless ``src -> dst`` paths on positive arcs.

    Yen's algorithm with fully content-determined tie-breaking: the base
    path and every spur path are the lexicographically smallest shortest
    paths under their bans, and equal-length candidates pop in node-tuple
    order.  Returns ``[]`` when ``dst`` is unreachable.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if src == dst:
        raise ValueError("src and dst must differ")
    adj = _PositiveAdjacency(ag)
    return _yen(adj, int(src), int(dst), int(k))


def _yen(
    adj: _PositiveAdjacency, src: int, dst: int, k: int
) -> List[Tuple[int, ...]]:
    dist0 = adj.dist_to(dst)
    if not np.isfinite(dist0[src]):
        return []
    first, _ = adj.lex_shortest(src, dist0)
    paths: List[Tuple[int, ...]] = [first]
    seen = {first}
    candidates: List[Tuple[int, Tuple[int, ...]]] = []
    while len(paths) < k:
        prev = paths[-1]
        prev_arcs = _path_arcs(adj, prev)
        for i in range(len(prev) - 1):
            root = prev[: i + 1]
            spur = prev[i]
            banned_nodes = set(root[:-1])
            banned_arcs: Set[int] = set()
            for p in paths:
                if len(p) > i + 1 and p[: i + 1] == root:
                    banned_arcs.add(_path_arcs(adj, p[: i + 2])[-1])
            dist = adj.dist_to(dst, banned_nodes, banned_arcs)
            if not np.isfinite(dist[spur]):
                continue
            spur_path, _ = adj.lex_shortest(spur, dist, banned_nodes, banned_arcs)
            total = root[:-1] + spur_path
            if total not in seen:
                seen.add(total)
                heapq.heappush(candidates, (len(total), total))
        del prev_arcs
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def _ecmp_fractions(
    adj: _PositiveAdjacency, src: int, dst: int, dist: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(local arc indices, fractions) of the ECMP split for one commodity.

    ``dist`` is :meth:`_PositiveAdjacency.dist_to` of ``dst``.  One unit
    of flow enters at ``src`` and splits equally over downhill arcs at
    every node, processed in decreasing-distance order so each node's
    inflow is complete before it splits.
    """
    frac = np.zeros(adj.arc_ids.size)
    if not np.isfinite(dist[src]):
        return np.empty(0, dtype=np.int64), np.empty(0)
    inflow = np.zeros(adj.n_nodes)
    inflow[src] = 1.0
    reach = np.flatnonzero(np.isfinite(dist) & (dist <= dist[src]))
    order = reach[np.argsort(-dist[reach], kind="stable")]
    for u in order:
        u = int(u)
        if u == dst or inflow[u] <= 0.0:
            continue
        lo, hi = int(adj.fwd_indptr[u]), int(adj.fwd_indptr[u + 1])
        heads = adj.heads[lo:hi]
        downhill = np.flatnonzero(dist[heads] == dist[u] - 1.0)
        share = inflow[u] / downhill.size
        locals_ = lo + downhill
        frac[locals_] += share
        np.add.at(inflow, heads[downhill], share)
    used = np.flatnonzero(frac)
    return used, frac[used]


def _as_pair_arrays(tm) -> PairArrays:
    """Commodity arrays from a TrafficMatrix-like object or a 3-tuple."""
    pairs = getattr(tm, "pairs", None)
    if callable(pairs):
        srcs, dsts, demands = pairs()
    else:
        srcs, dsts, demands = tm
    srcs = np.ascontiguousarray(srcs, dtype=np.int64)
    dsts = np.ascontiguousarray(dsts, dtype=np.int64)
    demands = np.ascontiguousarray(demands, dtype=np.float64)
    if not (srcs.shape == dsts.shape == demands.shape) or srcs.ndim != 1:
        raise ValueError("commodities must be equal-length 1-D arrays")
    if srcs.size and np.any(srcs == dsts):
        raise ValueError("self-commodities (src == dst) are not routable")
    if np.any(demands <= 0):
        raise ValueError("commodity demands must be positive")
    return srcs, dsts, demands


def compile_routes(
    topology,
    tm,
    routing: str = "ecmp",
    k: Optional[int] = None,
) -> RouteSet:
    """Compile the fixed route set of ``tm``'s commodities on ``topology``.

    ``topology`` is a :class:`Topology` or :class:`ArcGraph`; ``tm`` is a
    :class:`~repro.traffic.matrix.TrafficMatrix` (or a raw ``(srcs, dsts,
    demands)`` triple).  Deterministic and insertion-order independent:
    equal ``(ArcGraph.digest, commodities, routing, k)`` produce
    byte-identical route sets (see :meth:`RouteSet.content_digest`).
    """
    if routing not in ROUTING_MODES:
        raise ValueError(
            f"unknown routing {routing!r}; expected one of {ROUTING_MODES}"
        )
    ag = as_arcgraph(topology)
    srcs, dsts, demands = _as_pair_arrays(tm)
    if srcs.size and (
        min(int(srcs.min()), int(dsts.min())) < 0
        or max(int(srcs.max()), int(dsts.max())) >= ag.n_nodes
    ):
        raise ValueError("commodity endpoints out of node range")
    adj = _PositiveAdjacency(ag)

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    data: List[np.ndarray] = []
    sub_commodity: List[int] = []
    sub_weight: List[float] = []
    n_sub = 0

    if routing == "ecmp":
        k = None
        # One BFS per distinct destination, shared by its commodities.
        dist_cache = {}
        for ci in range(srcs.size):
            dst = int(dsts[ci])
            dist = dist_cache.get(dst)
            if dist is None:
                dist = adj.dist_to(dst)
                dist_cache[dst] = dist
            used, fracs = _ecmp_fractions(adj, int(srcs[ci]), dst, dist)
            if used.size == 0:
                continue  # unreachable: commodity stays subflow-less
            rows.append(adj.arc_ids[used])
            cols.append(np.full(used.size, n_sub, dtype=np.int64))
            data.append(fracs)
            sub_commodity.append(ci)
            sub_weight.append(float(demands[ci]))
            n_sub += 1
    else:
        k = int(k if k is not None else DEFAULT_KSP_K)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        for ci in range(srcs.size):
            paths = _yen(adj, int(srcs[ci]), int(dsts[ci]), k)
            if not paths:
                continue
            share = float(demands[ci]) / len(paths)
            for nodes in paths:
                arcs = np.asarray(_path_arcs(adj, nodes), dtype=np.int64)
                rows.append(adj.arc_ids[arcs])
                cols.append(np.full(arcs.size, n_sub, dtype=np.int64))
                data.append(np.ones(arcs.size))
                sub_commodity.append(ci)
                sub_weight.append(share)
                n_sub += 1

    if rows:
        incidence = sp.csr_matrix(
            (
                np.concatenate(data),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(ag.n_arcs, n_sub),
        )
    else:
        incidence = sp.csr_matrix((ag.n_arcs, 0))
    return RouteSet(
        n_arcs=ag.n_arcs,
        srcs=srcs,
        dsts=dsts,
        demands=demands,
        sub_commodity=np.asarray(sub_commodity, dtype=np.int64),
        sub_weight=np.asarray(sub_weight, dtype=np.float64),
        incidence=incidence,
        routing=routing,
        k=k,
    )
