"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro fig4
    python -m repro fig5 --scale medium --seed 7
    python -m repro all --scale small

Output is the ASCII table/series the corresponding bench prints, plus the
shape-check verdicts recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.evaluation.experiments import EXPERIMENTS, run_experiment
from repro.evaluation.runner import SCALES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Measuring and Understanding "
        "Throughput of Network Topologies' (SC16).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig4, table1), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each result as JSON into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    scale = SCALES[args.scale] if args.scale else None
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for exp_id in ids:
        t0 = time.perf_counter()
        try:
            result = run_experiment(exp_id, scale=scale, seed=args.seed)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{exp_id} finished in {elapsed:.1f}s]")
        print()
        if args.json:
            from pathlib import Path

            from repro.utils.serialization import experiment_to_json

            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{exp_id}.json").write_text(experiment_to_json(result))
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
