"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro fig4
    python -m repro fig5 --scale medium --seed 7
    python -m repro all --scale small --workers auto
    python -m repro fig5 --cache-dir /tmp/repro-cache   # warm reruns are free
    python -m repro fig5 --cache-backend sqlite         # concurrent-writer safe
    python -m repro fig5 --cache-max-entries 10000 --cache-max-mb 64
    python -m repro cache            # cache stats
    python -m repro cache clear      # drop all cached results

Output is the ASCII table/series the corresponding bench prints, plus the
shape-check verdicts recorded in EXPERIMENTS.md.  Throughput solves fan out
over ``--workers`` processes and are memoized in a content-addressed result
cache (see DESIGN.md, "Batch execution and caching").
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.batch import CACHE_BACKENDS, make_cache, resolve_workers
from repro.evaluation.experiments import EXPERIMENTS, run_experiment
from repro.evaluation.runner import SCALES
from repro.utils.serialization import experiment_to_json


def _workers_arg(value: str) -> int:
    """Parse/validate ``--workers`` at the parser, for clean CLI errors."""
    try:
        return resolve_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _max_entries_arg(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"--cache-max-entries must be >= 1, got {n}")
    return n


def _max_mb_arg(value: str) -> float:
    mb = float(value)
    if mb <= 0:
        raise argparse.ArgumentTypeError(f"--cache-max-mb must be > 0, got {mb}")
    return mb


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Measuring and Understanding "
        "Throughput of Network Topologies' (SC16).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig4, table1), 'all', 'list', or 'cache'",
    )
    parser.add_argument(
        "cache_action",
        nargs="?",
        choices=["stats", "clear"],
        default=None,
        help="with 'cache': show stats (default) or clear stored results",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for throughput solves: an int or 'auto' "
        "(= cpu count); default 1 (inline, deterministic)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=sorted(CACHE_BACKENDS),
        default=None,
        help="cache storage backend: 'jsonl' (single writer) or 'sqlite' "
        "(WAL, safe for concurrent writers); default: REPRO_CACHE_BACKEND "
        "or 'jsonl'",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=_max_entries_arg,
        metavar="N",
        default=None,
        help="evict least-recently-used cache entries beyond N (default: unbounded)",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=_max_mb_arg,
        metavar="MB",
        default=None,
        help="evict least-recently-used cache entries once the store "
        "exceeds MB megabytes (default: unbounded)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this run",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each result as JSON into this directory",
    )
    return parser


def _build_cache(args: argparse.Namespace):
    return make_cache(
        args.cache_dir,
        backend=args.cache_backend,
        max_entries=args.cache_max_entries,
        max_mb=args.cache_max_mb,
    )


def _cache_command(args: argparse.Namespace) -> int:
    cache = _build_cache(args)
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.path}")
        return 0
    stats = cache.stats()
    print(f"cache file : {stats['path']}")
    print(f"backend    : {stats['backend']}")
    print(f"entries    : {stats['entries']}")
    print(f"size       : {stats['size_bytes']} bytes")
    print(f"corrupt    : {stats['corrupt_lines']} line(s) skipped")
    print(f"evictions  : {stats['evictions']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_action is not None and args.experiment != "cache":
        parser.error(
            f"'{args.cache_action}' is only valid after 'cache' "
            f"(got experiment {args.experiment!r})"
        )
    if args.experiment == "list":
        for name in EXPERIMENTS:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:12s} {doc}")
        return 0
    if args.experiment == "cache":
        return _cache_command(args)
    scale = SCALES[args.scale] if args.scale else None
    cache = None if args.no_cache else _build_cache(args)
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for exp_id in ids:
        t0 = time.perf_counter()
        try:
            result = run_experiment(
                exp_id,
                scale=scale,
                seed=args.seed,
                workers=args.workers,
                cache=cache,
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - t0
        print(result.render())
        batch = result.extras.get("batch", {})
        print(
            f"[{exp_id} finished in {elapsed:.1f}s; "
            f"{batch.get('solved', 0)} solved, "
            f"{batch.get('cache_hits', 0)} cache hits, "
            f"{batch.get('errors', 0)} errors]"
        )
        print()
        if args.json:
            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{exp_id}.json").write_text(experiment_to_json(result))
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
