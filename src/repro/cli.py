"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro list --verbose              # full spec metadata
    python -m repro list --markdown             # regenerate EXPERIMENTS.md
    python -m repro list --api-markdown         # regenerate API.md
    python -m repro fig4
    python -m repro fig2 --engine sharded       # block-decomposed solves
    python -m repro fig2 --lp-backend highs-ipm # pin the dense LP backend
    python -m repro fig5 --engine auto --shard-threshold 500000
    python -m repro fig5 --scale medium --seed 7
    python -m repro all --scale small --workers auto
    python -m repro all --tag figure            # only the figure artifacts
    python -m repro all --stream --workers 2    # live per-row progress
    python -m repro fig5 --cache-dir /tmp/repro-cache   # warm reruns are free
    python -m repro whatif-failures --cache-dir /tmp/repro-cache
                                     # failure/degradation what-if CDFs;
                                     # warm rerun needs zero solves
    python -m repro fig5 --cache-backend sqlite         # concurrent-writer safe
    python -m repro fig5 --cache-max-entries 10000 --cache-max-mb 64
    python -m repro cache            # cache stats
    python -m repro cache clear      # drop all cached results
    python -m repro lint             # check repo invariants (R001-R006)
    python -m repro lint --format json --rule R002 --rule R003
    python -m repro lint --update-baseline   # grandfather current findings
    python -m repro serve --port 8432 --workers 2 --cache-dir /tmp/repro-cache
                                     # throughput-as-a-service (Ctrl-C drains)
    python -m repro query --family jellyfish --engine mwu --tenant alice
    python -m repro query --spec '{"adjacency": [[0,1],[1,0]]}'

Output is the ASCII table/series the corresponding bench prints, plus the
shape-check verdicts catalogued in EXPERIMENTS.md (generated from the
experiment registry via ``repro list --markdown``).  Every run holds one
:class:`repro.api.Session`: a whole ``repro all`` sweep shares a single
solver pool and cache handle, so later experiments hit earlier experiments'
cached solves, and ``--stream`` surfaces rows and solve progress as batches
complete instead of buffering each figure.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.api import (
    REGISTRY,
    BatchStatsEvent,
    ProgressEvent,
    ResultEvent,
    RowEvent,
    Session,
    ShardProgressEvent,
    ensure_registered,
)
from repro.api.docgen import api_markdown, experiments_markdown
from repro.batch import CACHE_BACKENDS, DEFAULT_ENGINE_CHOICES, make_cache, resolve_workers
from repro.evaluation.runner import SCALES, ExperimentResult
from repro.throughput.backends import LP_BACKENDS
from repro.utils.serialization import experiment_to_json


def _workers_arg(value: str) -> int:
    """Parse/validate ``--workers`` at the parser, for clean CLI errors."""
    try:
        return resolve_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _positive_int_arg(flag: str):
    def parse(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError(f"{flag} must be >= 1, got {n}")
        return n

    return parse


def _max_mb_arg(value: str) -> float:
    mb = float(value)
    if mb <= 0:
        raise argparse.ArgumentTypeError(f"--cache-max-mb must be > 0, got {mb}")
    return mb


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'Measuring and Understanding "
        "Throughput of Network Topologies' (SC16).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig4, table1), 'all', 'list', 'cache', "
        "'lint', 'serve', or 'query'",
    )
    parser.add_argument(
        "cache_action",
        nargs="?",
        choices=["stats", "clear"],
        default=None,
        help="with 'cache': show stats (default) or clear stored results",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="worker processes for throughput solves: an int or 'auto' "
        "(= cpu count); default 1 (inline, deterministic)",
    )
    parser.add_argument(
        "--engine",
        # "paths" is deliberately absent (see DEFAULT_ENGINE_CHOICES): the
        # path-restricted LP computes a different quantity and only makes
        # sense where an experiment requests it explicitly.
        choices=sorted(DEFAULT_ENGINE_CHOICES),
        default=None,
        help="override the default throughput engine for every solve that "
        "does not name one explicitly: 'lp' (exact dense), 'mwu' (O(arcs) "
        "approximation), 'sharded' (source-block decomposition), or 'auto' "
        "(dense below --shard-threshold, bounded-memory above)",
    )
    parser.add_argument(
        "--lp-backend",
        choices=sorted(LP_BACKENDS),
        default=None,
        help="LP backend for every dense solve that does not name one "
        "explicitly: 'auto' (IPM with simplex fallback, the default), "
        "'highs' (HiGHS's choice), 'highs-ds' (dual simplex), or "
        "'highs-ipm' (interior point only); frozen into cache keys",
    )
    parser.add_argument(
        "--shard-threshold",
        type=_positive_int_arg("--shard-threshold"),
        metavar="N",
        default=None,
        help="dense-LP flow-variable count above which the auto policy "
        "(and the sharded engine's exact fallback) abandons the dense "
        "path (default: REPRO_SHARD_THRESHOLD or 2000000)",
    )
    parser.add_argument(
        "--shard-blocks",
        type=_positive_int_arg("--shard-blocks"),
        metavar="B",
        default=None,
        help="source-block count for the sharded engine (default: sized "
        "automatically so each shard LP stays under the threshold)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream experiments: print each result row and solve progress "
        "as batches complete, instead of buffering the whole artifact",
    )
    parser.add_argument(
        "--tag",
        metavar="TAG",
        default=None,
        help="with 'all': only run experiments carrying this registry tag "
        "(e.g. figure, table, theory)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="with 'list': print full spec metadata (artifact, tags, checks)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with 'list': print the EXPERIMENTS.md catalog generated from "
        "the experiment registry",
    )
    parser.add_argument(
        "--api-markdown",
        action="store_true",
        help="with 'list': print the API.md reference generated from the "
        "public module surfaces and engine guarantees",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=sorted(CACHE_BACKENDS),
        default=None,
        help="cache storage backend: 'jsonl' (single writer) or 'sqlite' "
        "(WAL, safe for concurrent writers); default: REPRO_CACHE_BACKEND "
        "or 'jsonl'",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=_positive_int_arg("--cache-max-entries"),
        metavar="N",
        default=None,
        help="evict least-recently-used cache entries beyond N (default: unbounded)",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=_max_mb_arg,
        metavar="MB",
        default=None,
        help="evict least-recently-used cache entries once the store "
        "exceeds MB megabytes (default: unbounded)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this run",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each result as JSON into this directory",
    )
    service = parser.add_argument_group(
        "service", "options for 'repro serve' and 'repro query'"
    )
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind/connect address for the throughput service "
        "(default: 127.0.0.1)",
    )
    service.add_argument(
        "--port",
        type=int,
        default=None,
        help="service TCP port (default: REPRO_SERVICE_PORT or 8432; "
        "0 binds an ephemeral port)",
    )
    service.add_argument(
        "--max-inflight",
        type=_positive_int_arg("--max-inflight"),
        metavar="N",
        default=None,
        help="with 'serve': total concurrent solve jobs admitted before "
        "answering 429 (default: REPRO_SERVICE_MAX_INFLIGHT or 2x workers, "
        "min 8)",
    )
    service.add_argument(
        "--tenant-cap",
        type=_positive_int_arg("--tenant-cap"),
        metavar="N",
        default=None,
        help="with 'serve': per-tenant concurrent job cap (default: "
        "REPRO_SERVICE_TENANT_CAP or half the in-flight budget)",
    )
    service.add_argument(
        "--tenant",
        default=None,
        help="with 'query': tenant label sent with the request (shows up "
        "in the service's per-tenant /stats)",
    )
    service.add_argument(
        "--family",
        default=None,
        help="with 'query': topology family to ask the service about "
        "(e.g. jellyfish, fattree)",
    )
    service.add_argument(
        "--ladder",
        type=int,
        metavar="I",
        default=None,
        help="with 'query': pick rung I of the family's scale ladder "
        "instead of its representative",
    )
    service.add_argument(
        "--max-servers",
        type=_positive_int_arg("--max-servers"),
        metavar="N",
        default=None,
        help="with 'query --ladder': server cap bounding the ladder "
        "(default 256)",
    )
    service.add_argument(
        "--tm-kind",
        choices=["all_to_all", "uniform"],
        default=None,
        help="with 'query': traffic matrix kind (default all_to_all)",
    )
    service.add_argument(
        "--spec",
        metavar="JSON",
        default=None,
        help="with 'query': raw query document (overrides --family et al.); "
        "see repro.service.queries for the grammar",
    )
    service.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with 'query': synchronous wait budget before the service "
        "answers 504 (default: the service's request timeout)",
    )
    lint = parser.add_argument_group("lint", "options for 'repro lint'")
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="lint_format",
        help="lint report format (default: text)",
    )
    lint.add_argument(
        "--rule",
        metavar="RULE",
        action="append",
        dest="lint_rules",
        default=None,
        help="run only this rule id (repeatable, e.g. --rule R002); "
        "default: all rules",
    )
    lint.add_argument(
        "--lint-path",
        metavar="PATH",
        action="append",
        dest="lint_paths",
        default=None,
        help="file or directory to lint (repeatable); default: the repo's "
        "src/ tree",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of grandfathered findings (default: "
        "reprolint-baseline.json at the project root)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding "
        "(existing justifications are preserved)",
    )
    return parser


def _build_cache(args: argparse.Namespace):
    return make_cache(
        args.cache_dir,
        backend=args.cache_backend,
        max_entries=args.cache_max_entries,
        max_mb=args.cache_max_mb,
    )


def _cache_command(args: argparse.Namespace) -> int:
    cache = _build_cache(args)
    if args.cache_action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.path}")
        return 0
    stats = cache.stats()
    print(f"cache file : {stats['path']}")
    print(f"backend    : {stats['backend']}")
    print(f"entries    : {stats['entries']}")
    print(f"size       : {stats['size_bytes']} bytes")
    print(f"corrupt    : {stats['corrupt_lines']} line(s) skipped")
    print(f"evictions  : {stats['evictions']}")
    return 0


def _lint_command(args: argparse.Namespace) -> int:
    from repro.lint import (
        exit_code,
        load_baseline,
        render_json,
        render_text,
        run_lint,
        save_baseline,
    )

    try:
        result = run_lint(
            paths=args.lint_paths,
            rules=args.lint_rules,
            baseline=args.baseline,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.update_baseline:
        entries = load_baseline(result.baseline_path)
        justifications = {e.fingerprint: e.justification for e in entries}
        count = save_baseline(
            result.baseline_path,
            result.findings + result.grandfathered,
            justifications,
        )
        print(f"wrote {count} baseline entr(ies) to {result.baseline_path}")
        return 0
    render = render_json if args.lint_format == "json" else render_text
    print(render(result), end="")
    return exit_code(result)


def _serve_command(args: argparse.Namespace) -> int:
    """``repro serve``: stand up the HTTP service over one shared Session.

    Blocks until SIGTERM or Ctrl-C, then drains gracefully (stops
    admitting, finishes running jobs, closes the listener and session).
    """
    from repro.service import ServiceConfig, serve

    cache = None if args.no_cache else _build_cache(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        tenant_cap=args.tenant_cap,
    )
    with Session(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        engine=args.engine,
        lp_backend=args.lp_backend,
        shard_threshold=args.shard_threshold,
        shard_blocks=args.shard_blocks,
    ) as session:
        serve(session, config)
    return 0


def _query_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``repro query``: one-shot HTTP client against a running service."""
    import json as _json

    from repro.service import DEFAULT_PORT, ServiceClient, ServiceError
    from repro.utils.envknobs import knob_int

    if args.spec is not None:
        try:
            doc = _json.loads(args.spec)
        except _json.JSONDecodeError as exc:
            parser.error(f"--spec is not valid JSON: {exc}")
    else:
        if args.family is None:
            parser.error("repro query needs --family (or a raw --spec)")
        topology = {"family": args.family, "seed": args.seed}
        if args.ladder is not None:
            topology["ladder"] = args.ladder
            topology["max_servers"] = args.max_servers or 256
        doc = {"topology": topology}
        if args.tm_kind is not None:
            doc["tm"] = {"kind": args.tm_kind}
        if args.engine is not None:
            doc["engine"] = args.engine
    port = args.port
    if port is None:
        port = knob_int("REPRO_SERVICE_PORT", 8432) or DEFAULT_PORT
    try:
        with ServiceClient(args.host, port, tenant=args.tenant or "") as client:
            answer = client.throughput(doc, timeout=args.timeout)
    except ServiceError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach the service at {args.host}:{port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print(_json.dumps(answer, indent=2))
    return 0


def _list_command(args: argparse.Namespace) -> int:
    ensure_registered()
    if args.api_markdown:
        print(api_markdown(), end="")
        return 0
    if args.markdown:
        print(experiments_markdown(), end="")
        return 0
    for spec in REGISTRY:
        tags = ",".join(spec.tags) or "-"
        print(f"{spec.experiment_id:12s} [{tags}] {spec.title}")
        if args.verbose:
            pad = " " * 13
            print(f"{pad}artifact: {spec.artifact}; scale-sensitive: "
                  f"{'yes' if spec.scale_sensitive else 'no'}")
            if spec.checks:
                print(f"{pad}checks: {', '.join(spec.checks)}")
            if spec.description:
                print(f"{pad}{spec.description}")
    return 0


def _fmt_row(row) -> str:
    text = ", ".join(str(v) for v in row)
    return text if len(text) <= 120 else text[:117] + "..."


def _stream_experiment(session: Session, exp_id: str) -> ExperimentResult:
    """Consume one experiment's event stream, printing live progress."""
    result: Optional[ExperimentResult] = None
    last_total = 0
    for event in session.stream(exp_id):
        if isinstance(event, RowEvent):
            print(f"[{exp_id}] row {event.index + 1}: {_fmt_row(event.row)}", flush=True)
        elif isinstance(event, ProgressEvent):
            # One line per batch-size change plus every completion keeps CI
            # logs readable; terminals get each solve as it lands.
            if event.done == event.total or event.total != last_total:
                print(
                    f"[{exp_id}] solves: {event.done}/{event.total}", flush=True
                )
                last_total = event.total
        elif isinstance(event, ShardProgressEvent):
            print(
                f"[{exp_id}] shard round {event.round}/{event.max_rounds} "
                f"({event.blocks} blocks): lb={event.lower_bound:.6g} "
                f"ub={event.upper_bound:.6g} gap={event.relative_gap:.2e}",
                flush=True,
            )
        elif isinstance(event, BatchStatsEvent):
            s = event.stats
            print(
                f"[{exp_id}] batch done: {s['solved']} solved, "
                f"{s['cache_hits']} cache hits, {s['errors']} errors",
                flush=True,
            )
        elif isinstance(event, ResultEvent):
            result = event.result
    assert result is not None, "stream ended without a ResultEvent"
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_action is not None and args.experiment != "cache":
        parser.error(
            f"'{args.cache_action}' is only valid after 'cache' "
            f"(got experiment {args.experiment!r})"
        )
    if args.tag is not None and args.experiment != "all":
        parser.error("--tag is only valid with 'all'")
    if args.experiment != "list" and (
        args.verbose or args.markdown or args.api_markdown
    ):
        # Silently dropping these could launch a multi-minute sweep the
        # user did not want (e.g. `repro all --markdown`).
        flag = (
            "--verbose"
            if args.verbose
            else ("--markdown" if args.markdown else "--api-markdown")
        )
        parser.error(f"{flag} is only valid with 'list'")
    if args.experiment != "serve":
        serve_flags = {
            "--max-inflight": args.max_inflight is not None,
            "--tenant-cap": args.tenant_cap is not None,
        }
        used = [flag for flag, on in serve_flags.items() if on]
        if used:
            parser.error(f"{used[0]} is only valid with 'serve'")
    if args.experiment != "query":
        query_flags = {
            "--tenant": args.tenant is not None,
            "--family": args.family is not None,
            "--ladder": args.ladder is not None,
            "--max-servers": args.max_servers is not None,
            "--tm-kind": args.tm_kind is not None,
            "--spec": args.spec is not None,
            "--timeout": args.timeout is not None,
        }
        used = [flag for flag, on in query_flags.items() if on]
        if used:
            parser.error(f"{used[0]} is only valid with 'query'")
    if args.experiment not in ("serve", "query"):
        if args.host != "127.0.0.1":
            parser.error("--host is only valid with 'serve' or 'query'")
        if args.port is not None:
            parser.error("--port is only valid with 'serve' or 'query'")
    if args.experiment != "lint":
        lint_flags = {
            "--format": args.lint_format != "text",
            "--rule": args.lint_rules is not None,
            "--lint-path": args.lint_paths is not None,
            "--baseline": args.baseline is not None,
            "--update-baseline": args.update_baseline,
        }
        used = [flag for flag, on in lint_flags.items() if on]
        if used:
            parser.error(f"{used[0]} is only valid with 'lint'")
    if args.experiment == "list":
        return _list_command(args)
    if args.experiment == "cache":
        return _cache_command(args)
    if args.experiment == "lint":
        return _lint_command(args)
    if args.experiment == "serve":
        return _serve_command(args)
    if args.experiment == "query":
        return _query_command(args, parser)
    if args.experiment == "all":
        registry = ensure_registered()
        if args.tag is not None and args.tag not in registry.tags():
            parser.error(
                f"unknown --tag {args.tag!r}; known tags: "
                f"{', '.join(registry.tags())}"
            )
        ids = Session.ids(tag=args.tag)
    else:
        ids = [args.experiment]
    cache = None if args.no_cache else _build_cache(args)
    exit_code = 0
    t_all = time.perf_counter()
    with Session(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        engine=args.engine,
        lp_backend=args.lp_backend,
        shard_threshold=args.shard_threshold,
        shard_blocks=args.shard_blocks,
    ) as session:
        for exp_id in ids:
            t0 = time.perf_counter()
            try:
                if args.stream:
                    result = _stream_experiment(session, exp_id)
                else:
                    result = session.run(exp_id)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            elapsed = time.perf_counter() - t0
            print(result.render())
            batch = result.extras.get("batch", {})
            skipped = batch.get("skipped_by_bound", 0)
            skeleton_hits = batch.get("skeleton_hits", 0)
            print(
                f"[{exp_id} finished in {elapsed:.1f}s; "
                f"{batch.get('solved', 0)} solved, "
                f"{batch.get('cache_hits', 0)} cache hits, "
                + (f"{skipped} bound-skipped, " if skipped else "")
                + (
                    f"{skeleton_hits} skeleton hits, "
                    if skeleton_hits
                    else ""
                )
                + f"{batch.get('errors', 0)} errors]"
            )
            print()
            if args.json:
                out_dir = Path(args.json)
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / f"{exp_id}.json").write_text(experiment_to_json(result))
            if not result.all_checks_pass():
                exit_code = 1
        if args.experiment == "all":
            agg = session.stats()
            print(
                f"[all: {len(ids)} experiments in "
                f"{time.perf_counter() - t_all:.1f}s; "
                f"{agg['solved']} solved, {agg['cache_hits']} cache hits, "
                f"{agg['errors']} errors]"
            )
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
