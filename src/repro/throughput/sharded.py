"""Sharded solving of huge concurrent-flow LPs by source-block decomposition.

The dense LP (:mod:`repro.throughput.lp`) holds one flow variable per
(source, arc) pair — O(sources x arcs) memory — which at paper-scale
``large`` instances is the one axis the batch layer cannot parallelize: a
single huge LP dominates wall-clock and memory.  This module splits such an
instance *within itself*:

1. **Partition** the aggregated sources into ``blocks`` groups.  Flow
   variables are partitioned by source, so the only coupling between
   groups is the shared arc capacities.
2. **Allocate** each block a capacity share ``c_b(e)`` with
   ``sum_b c_b(e) = cap(e)`` and solve each block's own (much smaller)
   concurrent-flow LP against its share.  Every block subproblem is an
   ordinary ``"lp"`` :class:`~repro.batch.jobs.SolveRequest` on a
   :class:`CapacitySlicedTopology`, so shards fan out across the
   :class:`~repro.batch.solver.BatchSolver`'s workers and warm-cache like
   any other job.
3. **Coordinate** capacity across rounds: shares are reallocated in
   proportion to each block's per-unit-throughput arc usage (a damped
   proportional-capacity / dual-price iteration).  Each round certifies

   * a **lower bound**: ``min_b t_b`` — the per-block optima compose into
     one feasible joint flow because the shares sum to the capacities;
   * an **upper bound**: the concurrent-flow metric (cut) relaxation
     evaluated at the aggregated capacity dual prices — for *any*
     nonnegative arc lengths ``l``,
     ``t* <= sum_e cap(e) l(e) / sum_{s,d} D[s,d] dist_l(s,d)``.

   The loop stops when the certified relative gap falls below ``rtol``.
4. **Fallback**: when the loop does not converge and the dense LP fits
   below the configured threshold, one exact dense solve finishes the job
   (bit-identical to the ``"lp"`` engine, and sharing its cache key).
   Above the threshold the best certified lower bound is returned with
   ``meta`` carrying the matching upper bound, gap, and ``converged``
   flag — bounded memory is the contract there, not exactness.

**Determinism** — the whole procedure is a pure function of the instance
and the resolved shard parameters: partitioning is by sorted node id,
coordination arithmetic runs in the parent process only, and block solves
are themselves deterministic, so ``workers=N`` equals ``workers=1``
bit-for-bit and warm cache reruns replay the identical trajectory.

**Model reuse** — every round re-solves the same block *structures* with
new capacity shares: block ``b``'s requests across rounds share one
``(structure digest, block-TM sparsity)`` key in the compiled LP model
cache (:mod:`repro.throughput.modelcache`), so a whole coordination run
assembles each block's constraint pattern at most twice (round 1's
symmetric shares may allow the transposed orientation; later asymmetric
shares pin it) rather than once per round.  The batch layer additionally
chunks same-skeleton block requests to pool workers, and the sharded
result's ``meta["assembly_seconds"]`` aggregates its block solves'
assembly time so the assemble/solve split stays visible through the
decomposition.

The automatic engine policy lives here too: :func:`select_engine` routes
instances whose dense LP exceeds :data:`DEFAULT_SHARD_THRESHOLD` flow
variables (override with ``REPRO_SHARD_THRESHOLD`` or
:class:`ShardPolicy`) to this engine — or to the MWU engine's O(arcs)
memory path when the policy prefers it.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np
from scipy.sparse import csgraph

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.throughput.backends import (
    normalize_lp_backend_param,
    resolve_lp_backend,
)
from repro.throughput.lp import ThroughputResult, zero_demand_result
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.envknobs import knob_int, knob_str

#: Dense-LP flow-variable count (aggregated sources x arcs) above which the
#: automatic policy stops building the dense LP.  ~2M float64 variables put
#: the HiGHS working set in the multi-GB range on these block-structured
#: instances; below it the dense solve is both faster and exact.
DEFAULT_SHARD_THRESHOLD = 2_000_000

#: Coordination rounds before giving up on closing the gap iteratively.
DEFAULT_MAX_ROUNDS = 8

#: Certified relative gap at which the iteration declares convergence.
DEFAULT_RTOL = 1e-6

#: Fraction of its demand-proportional share a block keeps on every arc in
#: round 1, so no reallocation can disconnect a block (t_b = 0 with zero
#: usage is an absorbing state).  The floor halves every round: once flows
#: have stabilized, capacity parked on arcs a block never uses is pure
#: waste — a constant floor caps the achievable lower bound.
SHARE_FLOOR = 0.05

#: Geometric decay of the share floor per round.
FLOOR_DECAY = 0.5

#: Damping of the share reallocation step in round 1 (1.0 = jump straight
#: to the usage-proportional target); ramps toward :data:`DAMPING_LATE` as
#: the allocation stabilizes.
DAMPING = 0.5

#: Late-round damping (the iteration is near its fixed point; larger steps
#: close the remaining gap faster without oscillation).
DAMPING_LATE = 0.9

#: With the exact fallback available, coordination that is still far from
#: ``rtol`` after this many rounds bails out to the (cheaper, exact) dense
#: solve instead of burning the full round budget first.  Bounded-memory
#: runs (no fallback) always use the whole budget.
FALLBACK_BAIL_ROUNDS = 3


@dataclass(frozen=True)
class ShardPolicy:
    """Resolved sharding knobs, installable as ambient context.

    Attributes
    ----------
    threshold:
        Dense-LP flow-variable count above which :func:`select_engine`
        abandons the dense path (and above which the sharded engine's
        exact fallback is disabled).
    blocks:
        Forced source-block count for the sharded engine; ``None`` sizes
        blocks automatically so each shard LP stays under ``threshold``.
    prefer:
        Bounded-memory engine for above-threshold instances: ``"sharded"``
        (default) or ``"mwu"`` (the O(arcs) multiplicative-weights path).
    """

    threshold: int = DEFAULT_SHARD_THRESHOLD
    blocks: Optional[int] = None
    prefer: str = "sharded"

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.blocks is not None and self.blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {self.blocks}")
        if self.prefer not in ("sharded", "mwu"):
            raise ValueError(
                f"prefer must be 'sharded' or 'mwu', got {self.prefer!r}"
            )


_policy_var: ContextVar[Optional[ShardPolicy]] = ContextVar(
    "repro_shard_policy", default=None
)


def current_shard_policy() -> ShardPolicy:
    """The ambient :class:`ShardPolicy` (context > environment > defaults).

    Environment knobs: ``REPRO_SHARD_THRESHOLD`` (int),
    ``REPRO_SHARD_BLOCKS`` (int), ``REPRO_LARGE_ENGINE``
    (``sharded`` | ``mwu``).
    """
    policy = _policy_var.get()
    if policy is not None:
        return policy
    return ShardPolicy(
        threshold=knob_int("REPRO_SHARD_THRESHOLD", DEFAULT_SHARD_THRESHOLD),
        blocks=knob_int("REPRO_SHARD_BLOCKS"),
        prefer=knob_str("REPRO_LARGE_ENGINE", "sharded"),
    )


@contextmanager
def use_shard_policy(policy: ShardPolicy) -> Iterator[ShardPolicy]:
    """Install ``policy`` as the ambient shard policy within the block."""
    token = _policy_var.set(policy)
    try:
        yield policy
    finally:
        _policy_var.reset(token)


# ----------------------------------------------------------- progress hook
@dataclass(frozen=True)
class ShardProgress:
    """One coordination round of one sharded solve (observability record)."""

    blocks: int
    round: int
    max_rounds: int
    lower_bound: float
    upper_bound: float
    relative_gap: float


_progress_var: ContextVar[Optional[Callable[[ShardProgress], None]]] = ContextVar(
    "repro_shard_progress", default=None
)


@contextmanager
def use_shard_progress(
    callback: Callable[[ShardProgress], None],
) -> Iterator[None]:
    """Install a per-round observer for sharded solves in this context.

    :meth:`repro.api.Session.stream` uses this to surface
    ``ShardProgressEvent``\\ s; outside any observer the hook costs one
    ContextVar read per round.
    """
    token = _progress_var.set(callback)
    try:
        yield
    finally:
        _progress_var.reset(token)


def _report_progress(progress: ShardProgress) -> None:
    callback = _progress_var.get()
    if callback is not None:
        callback(progress)


# ------------------------------------------------------------ sizing/policy
def dense_lp_size(topology: Topology, tm: TrafficMatrix) -> int:
    """Flow-variable count of the dense aggregated LP: ``min(k_src, k_dst) x arcs``.

    This is the quantity the dense engine's memory scales with (the
    constraint matrix holds ~2 nonzeros per variable) and the unit
    :data:`DEFAULT_SHARD_THRESHOLD` is expressed in.
    """
    k, m = _instance_dims(topology, tm)
    return k * m


def select_engine(
    topology: Topology,
    tm: TrafficMatrix,
    threshold: Optional[int] = None,
    prefer: Optional[str] = None,
) -> str:
    """The automatic engine policy: dense below the threshold, bounded above.

    Returns ``"lp"`` when the dense aggregated LP fits under ``threshold``
    flow variables (argument > ambient :class:`ShardPolicy` > environment >
    :data:`DEFAULT_SHARD_THRESHOLD`), else the policy's preferred
    bounded-memory engine (``"sharded"`` or ``"mwu"``).
    """
    policy = current_shard_policy()
    threshold = policy.threshold if threshold is None else threshold
    prefer = prefer if prefer is not None else policy.prefer
    if prefer not in ("sharded", "mwu"):
        raise ValueError(f"prefer must be 'sharded' or 'mwu', got {prefer!r}")
    if dense_lp_size(topology, tm) <= threshold:
        return "lp"
    return prefer


def _instance_dims(topology: Topology, tm: TrafficMatrix) -> Tuple[int, int]:
    """(aggregated commodity-group count k, arc count m) of one instance."""
    m = as_arcgraph(topology).n_arcs
    k = max(
        1,
        min(
            int(np.count_nonzero(tm.demand.sum(axis=1) > 0)),
            int(np.count_nonzero(tm.demand.sum(axis=0) > 0)),
        ),
    )
    return k, m


def _blocks_for(k: int, m: int, threshold: int) -> int:
    per_block = max(1, threshold // max(m, 1))
    return min(max(2, math.ceil(k / per_block)), k)


def auto_blocks(topology: Topology, tm: TrafficMatrix, threshold: int) -> int:
    """Smallest block count keeping each shard LP under ``threshold`` variables.

    A shard holding ``s`` sources costs ``s * arcs`` flow variables, so the
    bound needs ``ceil(k / blocks) <= threshold // arcs`` — dividing the
    *dense* size by the threshold undershoots whenever the ceilings bite.
    When even one source exceeds the threshold (``arcs > threshold``) the
    best achievable is one source per block.
    """
    k, m = _instance_dims(topology, tm)
    return _blocks_for(k, m, threshold)


def resolve_shard_params(
    topology: Topology, tm: TrafficMatrix, params: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Concrete, key-complete parameter dict for one sharded solve.

    Sharding knobs change the computed value (block count, tolerance,
    round budget, fallback eligibility, and the LP backend the block
    solves run on), so a cacheable sharded request must carry them
    *explicitly* — two runs under different ambient policies must not
    share a cache entry.  Fills every unset knob from the ambient
    :class:`ShardPolicy` (and the ambient LP backend) deterministically.
    """
    policy = current_shard_policy()
    out = {k: v for k, v in (params or {}).items() if v is not None}
    if "blocks" not in out or "exact_fallback" not in out:
        # One arcs()/demand walk covers both derived knobs.
        k, m = _instance_dims(topology, tm)
        if "blocks" not in out:
            out["blocks"] = (
                policy.blocks
                if policy.blocks is not None
                else _blocks_for(k, m, policy.threshold)
            )
        if "exact_fallback" not in out:
            out["exact_fallback"] = k * m <= policy.threshold
    out.setdefault("rtol", DEFAULT_RTOL)
    out.setdefault("max_rounds", DEFAULT_MAX_ROUNDS)
    # Same canonical form as the lp engine's requests: the default backend
    # is omitted, a non-default one is frozen in (and inherited by the
    # block subproblem and fallback requests).
    return normalize_lp_backend_param(out)


# --------------------------------------------------------------- shard view
@dataclass
class CapacitySlicedTopology(Topology):
    """A topology view whose directed-arc capacities are a share vector.

    The switch graph and servers are the parent's (shared references), and
    the compiled core is a cheap *capacity overlay* on the parent's
    compiled :class:`~repro.core.ArcGraph`
    (:meth:`~repro.core.ArcGraph.with_caps`): arc structure, CSR offsets,
    and the 32-byte structure digest are shared, only the share vector is
    new.  Because :func:`repro.batch.jobs.instance_key` keys on the
    compiled digest, each share vector content-addresses its own cache
    entry, and the instance ships to pool workers as compact arrays.
    """

    arc_tails: np.ndarray = field(default=None, repr=False)
    arc_heads: np.ndarray = field(default=None, repr=False)
    arc_caps: np.ndarray = field(default=None, repr=False)

    def compile(self) -> ArcGraph:
        """The sliced core (built from the arc arrays when not provided)."""
        if self._compiled is None:
            self._compiled = ArcGraph(
                self.graph.number_of_nodes(),
                self.arc_tails,
                self.arc_heads,
                self.arc_caps,
            )
        return self._compiled

    def arcs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The sliced directed arc view ``(tails, heads, share capacities)``."""
        return self.compile().arc_arrays()


def _sliced(
    parent: Topology,
    core: ArcGraph,
    share: np.ndarray,
    block: int,
) -> CapacitySlicedTopology:
    overlay = core.with_caps(share)
    return CapacitySlicedTopology(
        name=f"{parent.name}#shard{block}",
        graph=parent.graph,
        servers=parent.servers,
        family=parent.family,
        params=parent.params,
        _compiled=overlay,
        arc_tails=overlay.tails,
        arc_heads=overlay.heads,
        arc_caps=overlay.caps,
    )


# ------------------------------------------------------------- upper bound
def _metric_upper_bound(
    lengths: np.ndarray,
    core: ArcGraph,
    demand: np.ndarray,
    sources: np.ndarray,
) -> float:
    """Concurrent-flow duality bound for one arc-length function.

    For any nonnegative lengths ``l``, every unit of (s, d) demand consumes
    at least ``dist_l(s, d)`` units of length-weighted capacity, so
    ``t* <= sum_e cap(e) l(e) / sum_{s,d} D[s,d] dist_l(s,d)`` — certified
    regardless of how ``l`` was produced (cut indicator functions are the
    special case that makes this "the cut bound").  Returns ``inf`` when
    ``l`` carries no information (zero everywhere).
    """
    caps = core.caps
    lengths = np.maximum(np.asarray(lengths, dtype=np.float64), 0.0)
    top = float(lengths.max(initial=0.0))
    if top <= 0.0:
        return math.inf
    # Strictly positive weights: csgraph treats stored zeros inconsistently
    # across versions, and any positive perturbation still yields a valid
    # (marginally weaker) certified bound.
    lengths = lengths + top * 1e-12
    graph = core.csr_with(lengths)
    dist = csgraph.dijkstra(graph, directed=True, indices=sources)
    block = demand[sources]
    reachable = np.isfinite(dist)
    if np.any(block[~reachable] > 0):
        # Positive demand across a disconnection: throughput is exactly 0.
        return 0.0
    volume = float((block * np.where(reachable, dist, 0.0)).sum())
    if volume <= 0.0:
        return math.inf
    return float((caps @ lengths) / volume)


# ------------------------------------------------------------------- solve
def solve_throughput_sharded(
    topology: Topology,
    tm: TrafficMatrix,
    blocks: Optional[int] = None,
    rtol: Optional[float] = None,
    max_rounds: Optional[int] = None,
    exact_fallback: Optional[bool] = None,
    lp_backend: Optional[str] = None,
    solver: Optional[Any] = None,
) -> ThroughputResult:
    """Throughput of ``tm`` on ``topology`` by source-block decomposition.

    **Semantics** — ``value`` is *exact* (to dense-LP accuracy) whenever
    ``meta["converged"]`` or ``meta["fallback"]`` is true: on convergence
    the certified relative gap is below ``rtol``; on fallback the value is
    the dense LP's, bit-identical to the ``"lp"`` engine on the same
    instance.  Otherwise ``value`` is the best *certified feasible lower
    bound*, with ``meta["upper_bound"]`` the matching metric-relaxation
    upper bound and ``meta["relative_gap"]`` their certified distance.
    Units follow the TM, exactly as for the dense engine.

    **Determinism** — a pure function of the instance and resolved
    parameters; independent of worker count and cache temperature.

    Parameters
    ----------
    blocks:
        Source-block count (default: ambient :class:`ShardPolicy`, else
        sized so each shard LP stays under the policy threshold).
    rtol:
        Certified relative gap at which coordination stops (default 1e-6).
    max_rounds:
        Coordination-round budget (default 8).
    exact_fallback:
        Permit one dense solve when coordination leaves a residual gap.
        Default: allowed iff the dense LP fits under the policy threshold —
        above it, bounded memory wins and the certified bounds are the
        result.
    lp_backend:
        LP backend name (:mod:`repro.throughput.backends`) for the block
        subproblems and the exact fallback; ``None`` takes the ambient
        default.  Frozen into the request params, hence into cache keys.
    solver:
        The :class:`~repro.batch.solver.BatchSolver` to fan block solves
        through.  ``None`` (the standalone path) uses the ambient solver,
        so direct calls inside a ``run_experiment``/``Session`` context
        still parallelize and memoize.
    """
    n = topology.n_switches
    if tm.n_nodes != n:
        raise ValueError(
            f"TM has {tm.n_nodes} nodes but topology has {n} switches"
        )
    if tm.total_demand() <= 0:
        return zero_demand_result("sharded")

    # Lazy imports: repro.batch imports this package's mcf module, so a
    # module-level import here would cycle.
    from repro.batch.context import get_solver
    from repro.batch.jobs import SolveRequest

    # Resolve the backend once, from the argument (request dispatch always
    # passes one explicitly) falling back to the ambient — and never
    # re-consult the ambient afterwards, so block solves and the fallback
    # run exactly the configuration this solve is keyed under.
    lp_backend = resolve_lp_backend(lp_backend).name
    params = resolve_shard_params(
        topology,
        tm,
        {
            "blocks": blocks,
            "rtol": rtol,
            "max_rounds": max_rounds,
            "exact_fallback": exact_fallback,
            "lp_backend": lp_backend,
        },
    )
    n_blocks = int(params["blocks"])
    rtol = float(params["rtol"])
    max_rounds = int(params["max_rounds"])
    exact_fallback = bool(params["exact_fallback"])
    solver = solver if solver is not None else get_solver()

    t_start = time.perf_counter()
    core = as_arcgraph(topology)
    caps = core.caps
    m = core.n_arcs

    # Work on whichever orientation has fewer commodity groups, mirroring
    # the dense engine's aggregation — valid only while every arc has an
    # equal-capacity opposite partner (always true for the undirected
    # parent topologies; checked on the memoized core rather than assumed).
    demand = tm.demand
    transposed = False
    if core.transpose_safe() and np.count_nonzero(
        demand.sum(axis=0) > 0
    ) < np.count_nonzero(demand.sum(axis=1) > 0):
        demand = demand.T.copy()
        transposed = True
    sources = np.flatnonzero(demand.sum(axis=1) > 0)
    n_blocks = max(1, min(n_blocks, sources.size))

    # Aggregated over every inner block solve (and the fallback), so the
    # assemble/solve timing split survives the decomposition; a dict so
    # the nested helpers can accumulate into it.
    timing = {"assembly_seconds": 0.0}

    def _finish(
        value: float,
        *,
        n_variables: int,
        n_constraints: int,
        rounds: int,
        shard_solves: int,
        lower: float,
        upper: float,
        converged: bool,
        fallback: bool,
    ) -> ThroughputResult:
        gap = 0.0
        if math.isfinite(upper) and upper > 0:
            gap = max(0.0, (upper - lower) / upper)
        return ThroughputResult(
            value=value,
            engine="sharded",
            n_variables=n_variables,
            n_constraints=n_constraints,
            solve_seconds=time.perf_counter() - t_start,
            meta={
                "blocks": n_blocks,
                "rounds": rounds,
                "shard_solves": shard_solves,
                "lower_bound": lower,
                "upper_bound": upper,
                "relative_gap": gap,
                "converged": converged,
                "fallback": fallback,
                "transposed": transposed,
                "rtol": rtol,
                "lp_backend": lp_backend,
                "assembly_seconds": timing["assembly_seconds"],
            },
        )

    def _dense(rounds: int, shard_solves: int, lower: float, upper: float,
               fallback: bool) -> ThroughputResult:
        # The dense request carries no shard params, so its cache key is the
        # plain "lp" instance key (same frozen backend): a fallback warms
        # (and is warmed by) runs that used the dense engine directly.
        outcome = solver.solve_many(
            [
                SolveRequest(
                    topology, tm, engine="lp", params={"lp_backend": lp_backend}
                )
            ]
        )[0]
        result = outcome.require()
        timing["assembly_seconds"] += float(
            result.meta.get("assembly_seconds", 0.0)
        )
        return _finish(
            result.value,
            n_variables=result.n_variables,
            n_constraints=result.n_constraints,
            rounds=rounds,
            shard_solves=shard_solves,
            lower=max(lower, result.value),
            upper=min(upper, result.value) if math.isfinite(upper) else result.value,
            converged=True,
            fallback=fallback,
        )

    if n_blocks <= 1:
        # One block is the dense instance; skip the coordination machinery.
        return _dense(0, 0, 0.0, math.inf, fallback=True)

    source_blocks = np.array_split(sources, n_blocks)
    block_tms: List[TrafficMatrix] = []
    for idx in source_blocks:
        bd = np.zeros_like(demand)
        bd[idx, :] = demand[idx, :]
        block_tms.append(TrafficMatrix(demand=bd, kind="shard"))
    weights = np.array([bt.total_demand() for bt in block_tms])
    weights = weights / weights.sum()

    fractions = np.tile(weights[:, None], (1, m))  # (blocks, arcs) shares
    usage_avg: Optional[np.ndarray] = None
    best_lb = 0.0
    best_ub = _metric_upper_bound(np.ones(m), core, demand, sources)
    max_vars = 0
    max_cons = 0
    shard_solves = 0
    converged = False
    rounds_done = 0
    tiny = np.finfo(np.float64).tiny

    for rnd in range(1, max_rounds + 1):
        rounds_done = rnd
        share_caps = fractions * caps[None, :]
        requests = [
            SolveRequest(
                _sliced(topology, core, share_caps[b], b),
                block_tms[b],
                engine="lp",
                params={"want_duals": True, "lp_backend": lp_backend},
                tag=f"shard:{b}/{n_blocks}:r{rnd}",
            )
            for b in range(n_blocks)
        ]
        results = [o.require() for o in solver.solve_many(requests)]
        shard_solves += n_blocks
        timing["assembly_seconds"] += sum(
            float(r.meta.get("assembly_seconds", 0.0)) for r in results
        )
        t_blocks = np.array([r.value for r in results])
        usage = np.vstack(
            [
                np.asarray(
                    r.meta.get("arc_usage", np.zeros(m)), dtype=np.float64
                )
                for r in results
            ]
        )
        # Exponential smoothing over rounds: block LPs have massively
        # degenerate optima (many equal-length paths), and the raw usage
        # pattern can flap between them; the running average spreads the
        # share over every path the block has actually routed on.
        usage_avg = usage if usage_avg is None else 0.5 * usage_avg + 0.5 * usage
        duals = np.vstack(
            [
                np.asarray(
                    r.meta.get("capacity_duals", np.zeros(m)), dtype=np.float64
                )
                for r in results
            ]
        )
        max_vars = max(max_vars, max(r.n_variables for r in results))
        max_cons = max(max_cons, max(r.n_constraints for r in results))

        best_lb = max(best_lb, float(t_blocks.min()))
        # Candidate length functions for the metric relaxation: any
        # nonnegative vector certifies, so take the best of the aggregated
        # duals, each block's own duals, and the current congestion
        # profile (load / capacity).
        for lengths in (
            duals.sum(axis=0),
            *duals,
            usage_avg.sum(axis=0) / caps,
        ):
            best_ub = min(
                best_ub,
                _metric_upper_bound(lengths, core, demand, sources),
            )
        if best_ub <= 0.0 or t_blocks.max() <= 0.0:
            # Certified zero: either the metric bound proves throughput 0
            # (demand across a disconnection), or every block is throttled
            # to zero under strictly positive shares — same conclusion.
            return _finish(
                0.0,
                n_variables=max_vars,
                n_constraints=max_cons,
                rounds=rnd,
                shard_solves=shard_solves,
                lower=0.0,
                upper=0.0,
                converged=True,
                fallback=False,
            )
        gap = (
            max(0.0, (best_ub - best_lb) / best_ub)
            if math.isfinite(best_ub)
            else math.inf
        )
        _report_progress(
            ShardProgress(
                blocks=n_blocks,
                round=rnd,
                max_rounds=max_rounds,
                lower_bound=best_lb,
                upper_bound=best_ub,
                relative_gap=gap,
            )
        )
        if gap <= rtol:
            converged = True
            break
        if (
            exact_fallback
            and rnd >= FALLBACK_BAIL_ROUNDS
            and gap > 10 * rtol
        ):
            # Far from converged and an exact dense solve is permitted:
            # stop coordinating, the fallback is cheaper than the budget.
            break

        # Reallocate: a block's capacity need per unit of achieved
        # throughput is usage / t_b; the optimal allocation is a fixed
        # point of sharing each arc in proportion to that need.  Damping
        # plus the per-arc floor keep the iteration stable and every block
        # connected.
        # Clamp relative to the best block so a (transiently) starved
        # block cannot overflow the need ratios.
        t_floor = float(t_blocks.max()) * 1e-12
        need = usage / np.maximum(t_blocks, t_floor)[:, None]
        col_need = need.sum(axis=0)
        target = np.where(
            col_need[None, :] > 0, need / np.maximum(col_need, tiny)[None, :],
            weights[:, None],
        )
        floor = SHARE_FLOOR * FLOOR_DECAY ** (rnd - 1)
        target = np.maximum(target, floor * weights[:, None])
        target = target / target.sum(axis=0, keepdims=True)
        damping = DAMPING if rnd < 4 else DAMPING_LATE
        fractions = (1.0 - damping) * fractions + damping * target
        # Renormalize exactly (and a hair under) so the combined blocks can
        # never exceed an arc's capacity by accumulated rounding.
        fractions = fractions / (fractions.sum(axis=0, keepdims=True) * (1 + 1e-12))

    if not converged and exact_fallback:
        return _dense(rounds_done, shard_solves, best_lb, best_ub, fallback=True)
    return _finish(
        best_lb,
        n_variables=max_vars,
        n_constraints=max_cons,
        rounds=rounds_done,
        shard_solves=shard_solves,
        lower=best_lb,
        upper=best_ub,
        converged=converged,
        fallback=False,
    )
