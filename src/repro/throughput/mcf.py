"""Top-level throughput API.

:func:`throughput` is the single entry point used by experiments and
examples; it dispatches to the exact LP engine (default) or the approximate
multiplicative-weights engine.
"""

from __future__ import annotations

from typing import Literal

from repro.throughput.approx import solve_throughput_mwu
from repro.throughput.lp import ThroughputResult, solve_throughput_lp
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix

Engine = Literal["lp", "mwu"]


def throughput(
    topology: Topology,
    tm: TrafficMatrix,
    engine: Engine = "lp",
    **kwargs,
) -> ThroughputResult:
    """Throughput of ``tm`` on ``topology``: max t with ``tm * t`` feasible.

    Parameters
    ----------
    topology:
        The network (switch graph + servers).
    tm:
        Switch-level traffic matrix (see :mod:`repro.traffic`).
    engine:
        ``"lp"`` (exact, HiGHS) or ``"mwu"`` (Garg–Könemann approximation;
        accepts ``epsilon=``).
    kwargs:
        Forwarded to the engine (``want_flows=True`` for the LP engine).

    Returns
    -------
    ThroughputResult
        ``result.value`` is the throughput; use ``float(result)`` when only
        the number matters.
    """
    if engine == "lp":
        return solve_throughput_lp(topology, tm, **kwargs)
    if engine == "mwu":
        return solve_throughput_mwu(topology, tm, **kwargs)
    raise ValueError(f"unknown engine {engine!r}; expected 'lp' or 'mwu'")
