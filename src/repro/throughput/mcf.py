"""Top-level throughput API.

:func:`throughput` is the single entry point used by experiments and
examples; it dispatches on ``engine``:

* ``"lp"`` (default) — the exact dense LP (:mod:`repro.throughput.lp`).
* ``"mwu"`` — the Garg–Könemann multiplicative-weights approximation,
  O(arcs) memory (:mod:`repro.throughput.approx`).
* ``"sharded"`` — source-block decomposition through the batch layer,
  bounded per-shard memory (:mod:`repro.throughput.sharded`).
* ``"sim"`` — the flow-level fluid simulator: *achieved* max-min fair
  throughput over fixed ECMP/k-shortest routes (:mod:`repro.sim`), a
  feasible lower bound on the LP optimum.
* ``"auto"`` — the size policy of
  :func:`repro.throughput.sharded.select_engine`: dense below the shard
  threshold, the policy's bounded-memory engine above it.

The path-restricted ``"paths"`` engine is not dispatched here — it has a
different signature contract (path-set parameters) and is reached through
the batch layer (:data:`repro.batch.jobs.BATCH_ENGINES`) or directly via
:func:`repro.throughput.llskr.llskr_exact_throughput`.
"""

from __future__ import annotations

from typing import Dict, Literal

from repro.throughput.approx import solve_throughput_mwu
from repro.throughput.lp import ThroughputResult, solve_throughput_lp
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix

Engine = Literal["lp", "mwu", "sharded", "sim", "auto"]

#: One-line contract of every engine name the project dispatches, keyed by
#: the name used in ``SolveRequest.engine`` / ``throughput(engine=...)``.
#: This is the source of record API.md renders (``repro list --api-markdown``).
ENGINE_GUARANTEES: Dict[str, str] = {
    "lp": (
        "Exact maximum concurrent-flow optimum via HiGHS through a "
        "registered backend (default 'auto': interior point with simplex "
        "fallback — see repro.throughput.backends), to ~1e-9 relative "
        "solver accuracy; deterministic per backend; memory "
        "O(sources x arcs)."
    ),
    "mwu": (
        "Garg–Könemann multiplicative-weights approximation: a certified "
        "feasible lower bound within (1 - epsilon)^3 of the optimum; "
        "deterministic; memory O(arcs)."
    ),
    "paths": (
        "Exact optimum of the path-restricted LP over LLSKR path sets: a "
        "lower bound on the unrestricted optimum, equal to it once the "
        "path pool is rich enough; deterministic for a fixed as-built "
        "graph iteration order."
    ),
    "sharded": (
        "Source-block decomposition with a capacity-coordination loop: "
        "exact (dense-LP accuracy) when converged or when the exact "
        "fallback runs; otherwise a certified feasible lower bound with a "
        "matching metric-relaxation upper bound in meta; deterministic; "
        "memory O(sources/blocks x arcs) per shard."
    ),
    "sim": (
        "Flow-level fluid simulation: the max-min fair allocation over "
        "fixed routes (ECMP equal-split by default, k-shortest with "
        "routing='ksp') — the *achieved* throughput of fair transport, a "
        "feasible lower bound on the LP optimum (sim <= lp always); "
        "deterministic and insertion-order independent; memory O(route "
        "incidence nonzeros)."
    ),
    "auto": (
        "Size policy, not a solver: resolves to 'lp' when the dense LP "
        "fits under the shard threshold, else to the configured "
        "bounded-memory engine ('sharded' or 'mwu')."
    ),
}


def throughput(
    topology: Topology,
    tm: TrafficMatrix,
    engine: Engine = "lp",
    **kwargs,
) -> ThroughputResult:
    """Throughput of ``tm`` on ``topology``: max t with ``tm * t`` feasible.

    The value's unit follows the TM's normalization: for hose-normalized
    matrices (per-server rate 1) this is the paper's throughput metric.
    Every engine is deterministic — equal instances give equal results
    across runs, worker counts, and cache temperature.

    Parameters
    ----------
    topology:
        The network (switch graph + servers).
    tm:
        Switch-level traffic matrix (see :mod:`repro.traffic`).
    engine:
        ``"lp"`` (exact, HiGHS), ``"mwu"`` (Garg–Könemann approximation;
        accepts ``epsilon=``), ``"sharded"`` (block decomposition; accepts
        ``blocks=``, ``rtol=``, ``max_rounds=``, ``exact_fallback=``),
        ``"sim"`` (fluid simulator; accepts ``routing=``, ``k=``), or
        ``"auto"`` (size policy; see
        :func:`repro.throughput.sharded.select_engine`).  See
        :data:`ENGINE_GUARANTEES` for each engine's exact-vs-bound
        contract.
    kwargs:
        Forwarded to the engine (``want_flows=True`` / ``want_duals=True``
        for the LP engine).

    Returns
    -------
    ThroughputResult
        ``result.value`` is the throughput; use ``float(result)`` when only
        the number matters.
    """
    if engine == "auto":
        # Imported lazily: the sharded module reaches back into the batch
        # layer, which imports this module.
        from repro.throughput.sharded import select_engine

        engine = select_engine(topology, tm)
    if engine == "lp":
        return solve_throughput_lp(topology, tm, **kwargs)
    if engine == "mwu":
        return solve_throughput_mwu(topology, tm, **kwargs)
    if engine == "sharded":
        from repro.throughput.sharded import solve_throughput_sharded

        return solve_throughput_sharded(topology, tm, **kwargs)
    if engine == "sim":
        # Imported lazily: the simulator builds on repro.core only, but
        # keeping it out of the base import keeps cold `import repro`
        # unchanged.
        from repro.sim.engine import solve_throughput_sim

        return solve_throughput_sim(topology, tm, **kwargs)
    raise ValueError(
        f"unknown engine {engine!r}; expected 'lp', 'mwu', 'sharded', "
        f"'sim', or 'auto'"
    )
