"""Flow-solution analysis: link utilization and bottleneck attribution.

The paper explains the fat-tree elephant anomaly (Fig. 12) by looking at
*where* load sits: fat-tree ToR links carry only their own servers' traffic,
while every other topology relays foreign flows through ToR links.  These
helpers extract exactly that evidence from an optimal LP flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.throughput.lp import solve_throughput_lp
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix


@dataclass
class UtilizationReport:
    """Per-arc utilization at the throughput optimum.

    Attributes
    ----------
    throughput:
        The optimal scale factor t.
    utilization:
        Per-arc load / capacity, aligned with ``Topology.arcs()``.
    tails, heads:
        Arc endpoints for interpretation.
    saturated_fraction:
        Fraction of arcs within 1% of full utilization — 1.0 reproduces the
        paper's "all links perfectly utilized" hypercube observation.
    """

    throughput: float
    utilization: np.ndarray
    tails: np.ndarray
    heads: np.ndarray

    @property
    def saturated_fraction(self) -> float:
        return float((self.utilization >= 0.99).mean())

    @property
    def max_utilization(self) -> float:
        return float(self.utilization.max())

    def mean_utilization(self) -> float:
        return float(self.utilization.mean())


def link_utilization(topology: Topology, tm: TrafficMatrix) -> UtilizationReport:
    """Solve the throughput LP and report per-arc utilization at optimum.

    Note: the LP optimum is generally not unique; utilization describes *one*
    optimal flow (the one HiGHS returns), which suffices for the qualitative
    bottleneck arguments it supports.
    """
    res = solve_throughput_lp(topology, tm, want_flows=True)
    tails, heads, caps = topology.arcs()
    load = res.flows.sum(axis=0)
    return UtilizationReport(
        throughput=res.value,
        utilization=load / caps,
        tails=tails,
        heads=heads,
    )


def transit_load_share(
    topology: Topology, tm: TrafficMatrix
) -> Dict[int, float]:
    """Per server-bearing node: share of its incident-arc load that is transit.

    Transit load at node v is flow on arcs incident to v belonging to
    commodities neither sourced at v nor (net) destined to v.  In a fat tree
    this is ~0 at the edge layer (ToR links carry only local traffic); in
    hypercubes and random graphs it is large — the paper's explanation for
    the fat-tree elephant anomaly, made measurable.
    """
    res = solve_throughput_lp(topology, tm, want_flows=True)
    tails, heads, _ = topology.arcs()
    flows = res.flows  # (n_sources, m)
    sources = res.meta["sources"]
    transposed = res.meta["transposed"]
    demand = tm.demand.T if transposed else tm.demand
    out: Dict[int, float] = {}
    for v in topology.server_nodes:
        incident = (tails == v) | (heads == v)
        total = float(flows[:, incident].sum())
        if total <= 0:
            out[int(v)] = 0.0
            continue
        local = 0.0
        for si, s in enumerate(sources):
            fv = flows[si][incident]
            if s == v:
                local += float(fv.sum())
            else:
                # Flow of commodity-group s on arcs at v terminating here:
                # bounded by the demand delivered to v (t * D[s, v]) twice
                # (arrives once); approximate local share as the delivered
                # demand, the rest is transit.
                local += float(res.value * demand[s, v])
        out[int(v)] = max(0.0, 1.0 - min(local / total, 1.0))
    return out


def utilization_by_node_class(
    topology: Topology, tm: TrafficMatrix, classes: np.ndarray
) -> Dict[int, Tuple[float, float]]:
    """Mean and max arc utilization grouped by the tail node's class label.

    ``classes[v]`` is an arbitrary integer label (e.g. 0 = core, 1 = agg,
    2 = edge for a fat tree).  Returns {label: (mean_util, max_util)}.
    """
    classes = np.asarray(classes)
    if classes.shape != (topology.n_switches,):
        raise ValueError("classes must have one label per switch")
    rep = link_utilization(topology, tm)
    out: Dict[int, Tuple[float, float]] = {}
    for label in np.unique(classes):
        mask = classes[rep.tails] == label
        if not mask.any():
            continue
        util = rep.utilization[mask]
        out[int(label)] = (float(util.mean()), float(util.max()))
    return out
