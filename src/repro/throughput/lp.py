"""Sparse LP assembly for maximum concurrent flow (the throughput LP).

Throughput of (G, T) is the optimum of

    max  t
    s.t. flow conservation per commodity,  sum of flows <= capacity per arc,

with all demands scaled by the single variable t (paper §II-A).  Commodities
from the same source are interchangeable, so we aggregate them: one flow
variable per (source, arc) pair.  The aggregation is lossless by the flow
decomposition theorem and shrinks the LP by the average out-degree of the
demand matrix.

When the demand matrix has fewer distinct destinations than sources we solve
the transposed instance instead — arcs always come in equal-capacity
opposite pairs here, so reversing every flow maps feasible solutions onto
feasible solutions with the same t.

The engine consumes the compiled :class:`~repro.core.ArcGraph` form of the
instance (a :class:`~repro.topologies.base.Topology` compiles on the way
in), and delegates the actual solve to a named backend from the registry in
:mod:`repro.throughput.backends` (``--lp-backend``; default ``auto`` =
interior point with simplex fallback).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.throughput.backends import resolve_lp_backend, run_linprog_chain
from repro.throughput.modelcache import skeleton_for
from repro.throughput.warmstart import BOUND_SLACK, SolveHint
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix


@dataclass
class ThroughputResult:
    """Outcome of a throughput computation.

    Attributes
    ----------
    value:
        The optimal scale factor t (0.0 for an infeasible/zero instance).
    engine:
        Which solver produced it (``"lp"``, ``"mwu"``, ``"paths"``).
    n_variables, n_constraints:
        LP size, for the scaling comparisons the paper makes against [26].
    solve_seconds:
        Wall-clock solver time.
    flows:
        Optional (n_sources, n_arcs) array of per-source arc flows at the
        optimum (only when requested).
    meta:
        Engine-specific extras (the ``lp`` engine records ``lp_backend``
        and the linprog ``method`` that produced the value).
    """

    value: float
    engine: str
    n_variables: int = 0
    n_constraints: int = 0
    solve_seconds: float = 0.0
    flows: Optional[np.ndarray] = None
    meta: Dict = field(default_factory=dict)

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.value

    # ``solve_seconds`` is pure solver wall-clock; the ``lp`` engine also
    # records ``meta["assembly_seconds"]`` (operand construction, skeleton
    # lookup included) and ``meta["skeleton"]`` ("hit" | "miss") so batch
    # stats can attribute time and count model-cache reuse.


def zero_demand_result(engine: str) -> ThroughputResult:
    """The NaN result every engine returns for a TM with no demand.

    Throughput is "what fraction of the demand fits"; with zero demand the
    question is 0/0, and :func:`repro.utils.numeric.safe_ratio` renders
    0/0 as NaN.  Returning that (instead of raising) lets sweeps over
    generated TMs degrade per-instance, matching how downstream ratio
    columns already treat the value.
    """
    return ThroughputResult(
        value=float("nan"), engine=engine, meta={"status": "zero-demand"}
    )


def _aggregated_demand(
    tm: TrafficMatrix, allow_transpose: bool = True
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Pick the smaller aggregation side.

    Returns (demand, sources, transposed): ``demand`` is oriented so that its
    nonzero *rows* (the commodity groups) are as few as possible.
    ``allow_transpose=False`` pins the row orientation — required when the
    arc capacities are not direction-symmetric (see
    :meth:`repro.core.ArcGraph.transpose_safe`).
    """
    d = tm.demand
    rows_active = np.flatnonzero(d.sum(axis=1) > 0)
    cols_active = np.flatnonzero(d.sum(axis=0) > 0)
    if allow_transpose and cols_active.size < rows_active.size:
        return d.T.copy(), cols_active, True
    return d, rows_active, False


def transpose_safe(
    tails: np.ndarray, heads: np.ndarray, caps: np.ndarray
) -> bool:
    """True when every arc has an equal-capacity opposite-direction partner.

    Only then does reversing all flows map feasible solutions onto feasible
    solutions, i.e. only then is solving the transposed demand equivalent.
    Standard topologies (undirected cables) always qualify; capacity-sliced
    shard views (:mod:`repro.throughput.sharded`) generally do *not* — their
    per-direction shares drift apart during coordination.

    Free-array form kept for callers without a compiled instance; compiled
    code paths use the memoized :meth:`repro.core.ArcGraph.transpose_safe`.
    """
    try:
        rev = _reverse_arc_permutation(tails, heads)
    except RuntimeError:
        return False
    return bool(np.array_equal(caps, caps[rev]))


@dataclass
class AssembledLP:
    """Solver-ready operands of one throughput LP (the assemble stage).

    Produced by :func:`assemble_throughput_lp` — the cache-served half of
    the solve: the constraint-matrix pattern comes from a shared
    :class:`~repro.throughput.modelcache.LPSkeleton`, and only the
    capacity RHS and demand coefficients are refreshed per instance.
    ``skeleton_hit`` records whether the pattern was served from the
    model cache (an accelerator only — operands are bit-identical either
    way).
    """

    c: np.ndarray
    A_ub: sp.csc_matrix
    b_ub: np.ndarray
    A_eq: sp.csc_matrix
    b_eq: np.ndarray
    sources: np.ndarray
    transposed: bool
    n_x: int
    n_var: int
    n_constraints: int
    skeleton_hit: bool


def assemble_throughput_lp(
    topology: Union[Topology, ArcGraph], tm: TrafficMatrix
) -> AssembledLP:
    """Assemble the aggregated throughput LP for ``(topology, tm)``.

    Variable layout: ``x[si * m + e]`` for source-block ``si``, arc ``e``;
    then the scale variable ``t`` last.  The conservation block has one
    row per (source block, node); the capacity block one row per arc.
    The sparsity pattern, index maps, and objective come from the
    process-local model cache (:func:`repro.throughput.modelcache.
    skeleton_for`); demand and capacity values are swapped in per call,
    bit-identical to assembling from scratch.
    """
    ag = as_arcgraph(topology)
    skeleton, hit = skeleton_for(ag, tm)
    d = tm.demand
    demand = d.T.copy() if skeleton.transposed else d
    c, A_ub, b_ub, A_eq, b_eq = skeleton.assemble(demand, ag.caps)
    return AssembledLP(
        c=c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        sources=skeleton.sources,
        transposed=skeleton.transposed,
        n_x=skeleton.n_x,
        n_var=skeleton.n_var,
        n_constraints=skeleton.n_constraints,
        skeleton_hit=hit,
    )


def solve_throughput_lp(
    topology: Union[Topology, ArcGraph],
    tm: TrafficMatrix,
    want_flows: bool = False,
    want_duals: bool = False,
    lp_backend: Optional[str] = None,
    warm_start: Optional[SolveHint] = None,
) -> ThroughputResult:
    """Exact throughput of ``tm`` on ``topology`` via HiGHS.

    **Semantics** — this is the reference engine: the returned ``value`` is
    the optimum of the maximum concurrent-flow LP to solver accuracy
    (HiGHS default tolerances, ~1e-9 relative).  Units follow the TM: with a
    hose-normalized matrix the value is the paper's throughput metric.
    **Determinism** — the solve is a pure function of the instance *and the
    backend*: equal ``(arcs, capacities, demands, lp_backend)`` produce
    bit-identical results across runs and worker processes (HiGHS is
    deterministic single-threaded).

    Parameters
    ----------
    topology:
        A :class:`Topology` (compiled on entry) or an already-compiled
        :class:`~repro.core.ArcGraph` — the form pool workers receive.
    want_flows:
        Also return the (sources, arcs) optimal flow array.  Large —
        requests carrying it bypass the result cache.
    want_duals:
        Record two O(arcs) vectors in ``meta``: ``arc_usage`` (total flow
        per arc at the optimum, summed over source blocks) and
        ``capacity_duals`` (nonnegative dual prices of the arc-capacity
        rows).  Both are small enough to cache; the sharded engine's
        capacity-coordination loop consumes them
        (:mod:`repro.throughput.sharded`).
    lp_backend:
        Registry name of the linprog method chain (see
        :mod:`repro.throughput.backends`); ``None`` takes the ambient
        default (normally ``"auto"``).
    warm_start:
        Optional :class:`~repro.throughput.warmstart.SolveHint` from a
        parent solve of a capacity-overlay sibling (same arcs, same TM).
        The hinted throughput interval clamps the ``t`` variable's box
        (with relative slack, so an inexact hint can never cut off the
        optimum) and the solution hint is forwarded to backends whose
        linprog method accepts ``x0``.  Purely an accelerator: the value
        solved is unchanged, so warm and cold solves of one instance are
        interchangeable (and share a cache key).

    Raises ``ValueError`` on shape mismatch.  An all-zero TM returns NaN
    (:func:`zero_demand_result` — the 0/0 convention of
    :func:`repro.utils.numeric.safe_ratio`); a throughput of 0.0 is
    returned only when demand crosses a disconnection, which
    :meth:`Topology.validate` normally excludes.
    """
    ag = as_arcgraph(topology)
    n = ag.n_nodes
    if tm.n_nodes != n:
        raise ValueError(
            f"TM has {tm.n_nodes} nodes but topology has {n} switches"
        )
    if tm.total_demand() <= 0:
        return zero_demand_result("lp")
    backend = resolve_lp_backend(lp_backend)
    caps = ag.caps
    m = ag.n_arcs

    t_assemble = time.perf_counter()
    lp = assemble_throughput_lp(ag, tm)
    assembly_seconds = time.perf_counter() - t_assemble
    c, A_ub, b_ub, A_eq, b_eq = lp.c, lp.A_ub, lp.b_ub, lp.A_eq, lp.b_eq
    sources, transposed = lp.sources, lp.transposed
    k = sources.size
    n_x, n_var = lp.n_x, lp.n_var
    skeleton_state = "hit" if lp.skeleton_hit else "miss"

    bounds = (0, None)
    hint_bounds = None
    if warm_start is not None:
        hint_lo, hint_hi = warm_start.bounds_for(caps)
        if np.isfinite(hint_hi) and hint_hi >= 0:
            # Clamp only the t variable's box.  The slack keeps ~1e-9
            # dual noise in the parent from making the true optimum
            # infeasible; the lower side stays 0 (a too-high lower bound
            # would silently misreport an infeasible child as t=0).
            hint_bounds = (hint_lo, hint_hi)
            var_bounds = np.zeros((n_var, 2))
            var_bounds[:, 1] = np.inf
            var_bounds[n_x, 1] = hint_hi * (1.0 + BOUND_SLACK) + BOUND_SLACK
            bounds = var_bounds

    t0 = time.perf_counter()
    # The backend names the linprog method chain; "auto" is IPM with a
    # simplex fallback on the rare IPM convergence failure (IPM is 10-20x
    # faster than simplex on these highly degenerate block-structured LPs,
    # measured in this repo).
    res, method = run_linprog_chain(
        backend,
        c=c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
    )
    elapsed = time.perf_counter() - t0
    if not res.success:
        if res.status == 2:  # infeasible: only possible at t = 0 edge cases
            return ThroughputResult(
                value=0.0,
                engine="lp",
                n_variables=n_var,
                n_constraints=k * n + m,
                solve_seconds=elapsed,
                meta={
                    "status": "infeasible",
                    "lp_backend": backend.name,
                    "assembly_seconds": assembly_seconds,
                    "skeleton": skeleton_state,
                },
            )
        raise RuntimeError(
            f"throughput LP failed (backend {backend.name!r}): {res.message}"
        )
    flows = None
    rev = (
        ag.reverse_permutation()
        if transposed and (want_flows or want_duals)
        else None
    )
    if want_flows:
        flows = res.x[:n_x].reshape(k, m)
        if transposed:
            # Flows were computed on the reversed instance; map arc e (u->v)
            # back to its partner (v->u).  Arcs come in symmetric pairs, so
            # the reverse arc exists; the permutation is memoized on the
            # compiled core.
            flows = flows[:, rev]
    meta = {
        "sources": sources,
        "transposed": transposed,
        "objective": float(-res.fun),
        "lp_backend": backend.name,
        "method": method,
        "assembly_seconds": assembly_seconds,
        "skeleton": skeleton_state,
    }
    if hint_bounds is not None:
        meta["warm_start_bounds"] = hint_bounds
    if want_duals:
        usage = res.x[:n_x].reshape(k, m).sum(axis=0)
        ineq = getattr(res, "ineqlin", None)
        marginals = getattr(ineq, "marginals", None) if ineq is not None else None
        if marginals is not None and len(marginals) == m:
            # scipy reports <= constraint marginals as non-positive; the
            # LP-duality length function is their negation.
            duals = np.maximum(-np.asarray(marginals, dtype=np.float64), 0.0)
        else:  # pragma: no cover - solver variant without marginals
            duals = np.zeros(m)
        if transposed:
            usage = usage[rev]
            duals = duals[rev]
        meta["arc_usage"] = usage
        meta["capacity_duals"] = duals
    return ThroughputResult(
        value=float(res.x[n_x]),
        engine="lp",
        n_variables=n_var,
        n_constraints=k * n + m,
        solve_seconds=elapsed,
        flows=flows,
        meta=meta,
    )


def _reverse_arc_permutation(tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
    """Index permutation mapping each arc to its opposite-direction partner."""
    m = tails.size
    n = int(max(tails.max(), heads.max())) + 1
    key_fwd = tails * n + heads
    key_rev = heads * n + tails
    order = np.argsort(key_fwd)
    pos = np.searchsorted(key_fwd[order], key_rev)
    rev = order[pos]
    if not np.array_equal(key_fwd[rev], key_rev):  # pragma: no cover
        raise RuntimeError("arc set is not direction-symmetric")
    return rev
