"""Compiled LP model cache: structure-keyed constraint-matrix reuse.

The dominant workloads here — what-if failure ensembles, sharded block
families, design-space sweeps — re-solve the *same LP structure* with only
capacity and demand data changed.  An :class:`LPSkeleton` compiles
everything about the aggregated throughput LP that is a pure function of
``(arc structure, demand sparsity pattern, transpose flag)``:

* the CSC sparsity layout (``indices`` / ``indptr``) of the conservation
  block ``A_eq`` and the capacity block ``A_ub``;
* the index maps from per-solve values into that layout (``t_rows`` /
  ``t_scatter`` / ``t_src`` — where each demand coefficient lands in the
  CSC ``data`` array);
* the source-block list, the variable layout, and the objective template.

:func:`skeleton_for` serves skeletons from a bounded, thread-safe,
process-local LRU keyed by ``(ArcGraph structure digest, TrafficMatrix
sparsity digest, transpose flag)``.  Each process-pool worker holds its
own cache (the module singleton is per process), so a pooled ensemble
pays assembly once per worker, not once per solve.

**Bit-identity** — a skeleton-served assembly is provably identical to a
cold one: scipy's COO→CSC conversion is a pure permutation of the entry
list when no duplicate coordinates exist (true for both blocks here), so
the skeleton records that permutation once — by converting an
entry-index COO — and every later assembly replays the cold path's exact
numpy value computations into the exact same slots.  The skeleton is an
accelerator, never a result input: nothing derived from it may feed
:func:`repro.batch.jobs.instance_key` (``repro lint`` rule R007).

The cache capacity comes from the non-result-affecting
``REPRO_LPMODEL_CACHE`` knob (default 32 skeletons; ``0`` disables
reuse — every solve then rebuilds, which is the benchmark baseline).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.traffic.matrix import TrafficMatrix
from repro.utils.envknobs import knob_int

#: Default LRU capacity (skeletons, not bytes).  A skeleton costs
#: O(k * arcs) int32/float64 entries — a few MB at sweep scale — and one
#: structure serves an entire failure ensemble, so a handful suffice.
DEFAULT_CAPACITY = 32


def _frozen(arr: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(arr)
    out.flags.writeable = False
    return out


class LPSkeleton:
    """Compiled constraint-matrix pattern of one aggregated throughput LP.

    Everything stored here is a pure function of the arc *structure*
    (tails/heads, not capacities), the demand *sparsity pattern* (which
    ``(src, dst)`` pairs are nonzero, not their values), and the
    orientation choice — exactly the key it is cached under.  Capacity
    and demand values enter only at :meth:`assemble` time, as vectorized
    data swaps on the shared pattern.
    """

    __slots__ = (
        "n_nodes",
        "n_arcs",
        "sources",
        "transposed",
        "n_x",
        "n_var",
        "n_eq",
        "eq_base",
        "eq_indices",
        "eq_indptr",
        "t_rows",
        "t_scatter",
        "t_src",
        "ub_data",
        "ub_indices",
        "ub_indptr",
        "b_eq",
        "c",
    )

    def __init__(self, ag: ArcGraph, pattern: np.ndarray, transposed: bool) -> None:
        n = ag.n_nodes
        m = ag.n_arcs
        tails, heads = ag.tails, ag.heads
        sources = np.flatnonzero(pattern.any(axis=1))
        k = sources.size
        n_x = k * m
        n_var = n_x + 1
        arc_ids = np.arange(m)
        si_ids = np.arange(k)
        rows_head = (si_ids[:, None] * n + heads[None, :]).ravel()
        rows_tail = (si_ids[:, None] * n + tails[None, :]).ravel()
        cols_inc = (si_ids[:, None] * m + arc_ids[None, :]).ravel()
        eq_rows = np.concatenate([rows_head, rows_tail])
        eq_cols = np.concatenate([cols_inc, cols_inc])
        # Structural nonzeros of the t column: rhs(si, v) is demand[s, v]
        # off-diagonal (nonzero iff the pattern is) and -out_demand(s) on
        # the diagonal (nonzero for every active source by construction).
        # Demands are validated non-negative, so value-nonzero ==
        # pattern-nonzero and this matches the cold path's flatnonzero
        # over the numeric rhs exactly.
        rhs_pat = pattern[sources, :].copy()
        rhs_pat[np.arange(k), sources] = True
        t_rows = np.flatnonzero(rhs_pat.ravel())
        eq_rows = np.concatenate([eq_rows, t_rows])
        eq_cols = np.concatenate([eq_cols, np.full(t_rows.size, n_x)])
        # COO->CSC is a pure permutation of the entry list when no
        # coordinate repeats (nothing above does: each (block, arc) pair
        # contributes one head and one tail entry on distinct rows, and
        # t entries occupy their own column).  Converting an entry-index
        # COO once recovers scipy's exact data layout, so replaying
        # values through ``perm`` is bit-identical to a cold tocsc().
        order = sp.coo_matrix(
            (
                np.arange(1, eq_rows.size + 1, dtype=np.int64),
                (eq_rows, eq_cols),
            ),
            shape=(k * n, n_var),
        ).tocsc()
        perm = order.data - 1
        # Cold entry list was [ones(n_x), -ones(n_x), t_vals]; pre-place
        # the constant +/-1 incidence entries, zero the t slots.
        eq_base = np.where(perm < n_x, 1.0, -1.0)
        t_scatter = np.flatnonzero(perm >= 2 * n_x)
        t_src = perm[t_scatter] - 2 * n_x
        eq_base[t_scatter] = 0.0
        ub = sp.coo_matrix(
            (np.ones(n_x), (np.tile(arc_ids, k), cols_inc)),
            shape=(m, n_var),
        ).tocsc()
        c = np.zeros(n_var)
        c[n_x] = -1.0
        self.n_nodes = n
        self.n_arcs = m
        self.sources = _frozen(sources)
        self.transposed = bool(transposed)
        self.n_x = n_x
        self.n_var = n_var
        self.n_eq = k * n
        self.eq_base = _frozen(eq_base)
        self.eq_indices = _frozen(order.indices)
        self.eq_indptr = _frozen(order.indptr)
        self.t_rows = _frozen(t_rows)
        self.t_scatter = _frozen(t_scatter)
        self.t_src = _frozen(t_src)
        self.ub_data = _frozen(ub.data)
        self.ub_indices = _frozen(ub.indices)
        self.ub_indptr = _frozen(ub.indptr)
        self.b_eq = _frozen(np.zeros(k * n))
        self.c = _frozen(c)

    @property
    def n_sources(self) -> int:
        """Number of aggregated source blocks (the k of the k*m layout)."""
        return int(self.sources.size)

    @property
    def n_constraints(self) -> int:
        """Total constraint rows: conservation block plus capacity block."""
        return self.n_eq + self.n_arcs

    def assemble(
        self, demand: np.ndarray, caps: np.ndarray
    ) -> Tuple[np.ndarray, sp.csc_matrix, np.ndarray, sp.csc_matrix, np.ndarray]:
        """``(c, A_ub, b_ub, A_eq, b_eq)`` for one capacity/demand overlay.

        ``demand`` must already be in this skeleton's solve orientation
        (transposed when :attr:`transposed` is set) and share the sparsity
        pattern the skeleton was compiled from.  The value computations
        are the cold assembly's numpy expressions verbatim; only the
        COO construction and CSC conversion are replaced by the recorded
        permutation, so the returned operands are bit-identical.
        """
        k = self.sources.size
        rhs = demand[self.sources, :].astype(np.float64).copy()
        out_demand = rhs.sum(axis=1)
        rhs[np.arange(k), self.sources] -= out_demand
        t_vals = -rhs.ravel()[self.t_rows]
        data = self.eq_base.copy()
        data[self.t_scatter] = t_vals[self.t_src]
        A_eq = sp.csc_matrix(
            (data, self.eq_indices, self.eq_indptr),
            shape=(self.n_eq, self.n_var),
        )
        A_ub = sp.csc_matrix(
            (self.ub_data, self.ub_indices, self.ub_indptr),
            shape=(self.n_arcs, self.n_var),
        )
        b_ub = caps.astype(np.float64)
        return self.c, A_ub, b_ub, A_eq, self.b_eq


class LPModelCache:
    """Bounded, thread-safe LRU of :class:`LPSkeleton` by structure key.

    Process-local by design: each pool worker's module singleton is its
    own cache, which is what "assembly once per worker" means.  Thread
    safety matters in the parent process, where service request threads
    solve inline concurrently.  ``capacity=0`` disables reuse (every
    lookup misses, nothing is stored) without disturbing callers.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[bytes, str, bool], LPSkeleton]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[bytes, str, bool]) -> Optional[LPSkeleton]:
        with self._lock:
            skel = self._entries.get(key)
            if skel is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return skel

    def put(self, key: Tuple[bytes, str, bool], skeleton: LPSkeleton) -> None:
        with self._lock:
            self.builds += 1
            if self.capacity == 0:
                return
            self._entries[key] = skeleton
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.builds = self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """Counters plus current occupancy, for `/stats` and benchmarks."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "evictions": self.evictions,
            }


_cache: Optional[LPModelCache] = None
_cache_lock = threading.Lock()


def model_cache() -> LPModelCache:
    """The process-local skeleton cache (created lazily from the knob)."""
    global _cache
    if _cache is None:
        with _cache_lock:
            if _cache is None:
                capacity = knob_int("REPRO_LPMODEL_CACHE", DEFAULT_CAPACITY)
                _cache = LPModelCache(capacity=max(int(capacity or 0), 0))
    return _cache


def reset_model_cache(capacity: Optional[int] = None) -> LPModelCache:
    """Replace the process cache (tests/benchmarks).

    ``capacity=None`` re-reads the ``REPRO_LPMODEL_CACHE`` knob;
    an explicit value overrides it (``0`` disables reuse).
    """
    global _cache
    with _cache_lock:
        if capacity is None:
            capacity = knob_int("REPRO_LPMODEL_CACHE", DEFAULT_CAPACITY)
        _cache = LPModelCache(capacity=max(int(capacity or 0), 0))
        return _cache


def skeleton_key(ag: ArcGraph, tm: TrafficMatrix) -> Tuple[bytes, str, bool]:
    """``(structure digest, TM sparsity digest, transpose flag)``.

    Deliberately value-free: capacities and demand magnitudes are absent,
    so every capacity overlay of one ensemble maps to one skeleton.  The
    transpose flag is :meth:`~repro.core.ArcGraph.transpose_safe` — it
    depends on capacity *symmetry* (not values) and changes the solve
    orientation, so it must split the key.
    """
    return (ag.structure_digest, tm.sparsity_digest(), ag.transpose_safe())


def skeleton_for(ag: ArcGraph, tm: TrafficMatrix) -> Tuple[LPSkeleton, bool]:
    """``(skeleton, cache_hit)`` for one instance, building on miss."""
    cache = model_cache()
    key = skeleton_key(ag, tm)
    skel = cache.get(key)
    if skel is not None:
        return skel, True
    d = tm.demand
    pattern = d > 0
    # Orientation mirrors _aggregated_demand: solve the side with fewer
    # active commodity groups, when capacity symmetry allows it.  Both
    # counts are pure functions of the sparsity pattern, so the choice is
    # stable across every capacity overlay sharing this key.
    rows_active = int(np.count_nonzero(pattern.any(axis=1)))
    cols_active = int(np.count_nonzero(pattern.any(axis=0)))
    transposed = key[2] and cols_active < rows_active
    skel = LPSkeleton(ag, pattern.T.copy() if transposed else pattern, transposed)
    cache.put(key, skel)
    return skel, False


def request_group_key(request) -> Optional[str]:
    """Skeleton grouping key of a batch request, or ``None`` if ungrouped.

    The batch layer chunks same-key ``lp`` requests to one worker each
    round so a failure ensemble pays one skeleton build per worker.  Only
    a grouping heuristic — correctness never depends on it.
    """
    if getattr(request, "engine", None) != "lp":
        return None
    try:
        ag = as_arcgraph(request.topology)
        sparsity = request.tm.sparsity_digest()
    except (TypeError, AttributeError):
        return None
    flag = "T" if ag.transpose_safe() else "N"
    return f"{ag.structure_digest.hex()}:{sparsity}:{flag}"


def group_chunks(keys: List[Optional[str]], workers: int) -> List[List[int]]:
    """Partition request indices into pool chunks by skeleton key.

    Same-key requests are split into at most ``workers`` chunks — wide
    enough to keep every worker busy, coarse enough that each worker
    builds the skeleton once per batch.  ``None`` keys stay singleton
    chunks.  Index order within a chunk follows submission order.
    """
    chunks: List[List[int]] = []
    grouped: "OrderedDict[str, List[int]]" = OrderedDict()
    for i, key in enumerate(keys):
        if key is None:
            chunks.append([i])
        else:
            grouped.setdefault(key, []).append(i)
    workers = max(int(workers), 1)
    for members in grouped.values():
        n_chunks = min(len(members), workers)
        size = -(-len(members) // n_chunks)
        for start in range(0, len(members), size):
            chunks.append(members[start : start + size])
    return chunks


__all__ = [
    "DEFAULT_CAPACITY",
    "LPModelCache",
    "LPSkeleton",
    "group_chunks",
    "model_cache",
    "request_group_key",
    "reset_model_cache",
    "skeleton_for",
    "skeleton_key",
]
