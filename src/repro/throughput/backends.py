"""Pluggable LP backend registry for the dense throughput engine.

The ``lp`` engine assembles one sparse LP and hands it to a *backend*: a
named chain of ``scipy.optimize.linprog`` methods tried in order until one
succeeds (or proves infeasibility).  Historically the chain was hard-coded
— interior point with a simplex fallback; the registry makes it a named,
selectable, cache-keyed knob so the HiGHS-simplex vs IPM vs MWU ablation
(`ablation-lp`) is a registry sweep rather than a fork of the solver.

Selection precedence for one solve: explicit ``lp_backend`` argument /
``SolveRequest`` param > ambient :func:`use_lp_backend` context (the CLI's
``--lp-backend`` and ``Session(lp_backend=...)`` land here) >
``REPRO_LP_BACKEND`` environment variable > ``"auto"``.  The resolved
backend name is frozen into every ``lp`` request's params at construction,
so cache keys fully determine the solver configuration that produced a
stored value.

Registered backends:

* ``auto`` — ``highs-ipm`` then ``highs`` fallback (the historical chain;
  IPM is 10-20x faster than simplex on these degenerate block LPs, the
  fallback catches its rare convergence failures).
* ``highs`` — HiGHS's own choice, effectively dual simplex on these LPs.
* ``highs-ds`` — dual simplex, forced.
* ``highs-ipm`` — interior point only, no simplex fallback.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.utils.envknobs import knob_str


@dataclass(frozen=True)
class LPBackend:
    """One named way of solving the assembled throughput LP.

    Attributes
    ----------
    name:
        Registry key; what ``--lp-backend`` selects and cache keys record.
    methods:
        ``scipy.optimize.linprog`` method names tried in order.  A method
        that succeeds — or returns status 2 (infeasible), which is an
        *answer*, not a failure — ends the chain; anything else falls
        through to the next method.
    description:
        One line for ``--help`` and the generated API.md table.
    """

    name: str
    methods: Tuple[str, ...]
    description: str

    def __post_init__(self) -> None:
        if not self.methods:
            raise ValueError(f"backend {self.name!r} declares no methods")


#: The registry.  Mutated only via :func:`register_lp_backend`.
LP_BACKENDS: Dict[str, LPBackend] = {}


def register_lp_backend(backend: LPBackend) -> LPBackend:
    """Add ``backend`` to the registry (idempotent for identical entries)."""
    existing = LP_BACKENDS.get(backend.name)
    if existing is not None and existing != backend:
        raise ValueError(f"LP backend {backend.name!r} already registered")
    LP_BACKENDS[backend.name] = backend
    return backend


register_lp_backend(
    LPBackend(
        "auto",
        ("highs-ipm", "highs"),
        "Interior point with simplex fallback (default; fastest on these "
        "degenerate block LPs).",
    )
)
register_lp_backend(
    LPBackend(
        "highs",
        ("highs",),
        "HiGHS's own method choice — effectively dual simplex on these LPs.",
    )
)
register_lp_backend(
    LPBackend("highs-ds", ("highs-ds",), "HiGHS dual simplex, forced.")
)
register_lp_backend(
    LPBackend(
        "highs-ipm",
        ("highs-ipm",),
        "HiGHS interior point only, no simplex fallback.",
    )
)

#: Backend used when nothing selects one explicitly.
DEFAULT_LP_BACKEND = "auto"

_backend_var: ContextVar[Optional[str]] = ContextVar(
    "repro_lp_backend", default=None
)


def default_lp_backend() -> str:
    """The ambient backend name: context > ``REPRO_LP_BACKEND`` > auto."""
    name = _backend_var.get()
    if name is not None:
        return name
    return knob_str("REPRO_LP_BACKEND", DEFAULT_LP_BACKEND)


def resolve_lp_backend(name: Optional[str] = None) -> LPBackend:
    """The :class:`LPBackend` for ``name`` (``None`` = ambient default)."""
    if name is None:
        name = default_lp_backend()
    try:
        return LP_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {name!r}; expected one of "
            f"{sorted(LP_BACKENDS)}"
        ) from None


@contextmanager
def use_lp_backend(name: str) -> Iterator[str]:
    """Install ``name`` as the ambient LP backend within the ``with`` block.

    This is how ``repro <exp> --lp-backend highs-ipm`` reroutes every dense
    solve of an invocation; requests that set ``params['lp_backend']``
    explicitly (the ablation sweep) are unaffected.
    """
    resolve_lp_backend(name)  # fail fast on unknown names
    token = _backend_var.set(name)
    try:
        yield name
    finally:
        _backend_var.reset(token)


def normalize_lp_backend_param(params: Dict) -> Dict:
    """Canonicalize the ``lp_backend`` entry of a solver-params dict.

    The resolved backend is frozen into the params — and therefore into
    the batch layer's content keys — so two runs under different ambient
    backends never share a cache entry.  The default backend is *omitted*
    rather than spelled out, giving every configuration exactly one
    canonical form (and keeping default-backend keys identical however
    the request was built).  Returns a new dict when a change is needed;
    the input is never mutated.
    """
    resolved = resolve_lp_backend(params.get("lp_backend")).name
    if resolved == DEFAULT_LP_BACKEND:
        if "lp_backend" in params:
            params = {k: v for k, v in params.items() if k != "lp_backend"}
        return params
    if params.get("lp_backend") != resolved:
        params = {**params, "lp_backend": resolved}
    return params


#: linprog methods that honor a starting-point hint.  The HiGHS wrappers
#: currently ignore ``x0`` (scipy warns), so a warm-start solution hint is
#: only forwarded where it is consumed; hint-derived *bound* tightening
#: (see :mod:`repro.throughput.warmstart`) works on every method.
X0_METHODS = ("revised simplex",)


def run_linprog_chain(backend: LPBackend, x0=None, **linprog_kwargs):
    """Run ``backend``'s method chain; returns ``(result, method_used)``.

    Mirrors the historical hard-coded behavior for ``auto``: a method that
    succeeds or proves infeasibility (status 2) ends the chain, any other
    failure tries the next method; the last method's result is returned
    regardless.  ``x0`` (a warm-start solution hint) is passed through to
    methods in :data:`X0_METHODS` and silently dropped elsewhere.
    """
    from scipy.optimize import linprog

    res = None
    method = backend.methods[0]
    for method in backend.methods:
        kwargs = dict(linprog_kwargs)
        if x0 is not None and method in X0_METHODS:
            kwargs["x0"] = x0
        res = linprog(method=method, **kwargs)
        if res.success or res.status == 2:
            break
    return res, method
