"""Warm-start hints for capacity-overlay solves (the what-if engine's math).

A :class:`SolveHint` packages what one *parent* LP solve (with
``want_duals=True``) knows that is transferable to every capacity overlay
of the same instance — same arc structure, same traffic matrix, only the
capacity vector ``c'`` changed:

* **Dual upper bound** — the parent's optimal capacity duals ``y`` are a
  valid length function for any child.  By concurrent-flow weak duality,
  ``t(c') <= (y . c') / sum_ij d_ij dist_y(i, j)``, and at the parent
  optimum the denominator equals ``(y . c) / t(c)``, so

      ``t(c') <= t(c) * (y . c') / (y . c)``

  — an O(arcs) dot product, no shortest paths, no solve.
* **Flow-scaling lower bound** — the parent's optimal per-arc usage ``u``
  is a feasible flow for demand ``t(c) * d``; scaled by
  ``alpha = min_e c'_e / u_e`` (over used arcs) it fits the child's
  capacities, so ``t(c') >= alpha * t(c)``.  ``alpha`` may exceed 1:
  failing links the parent optimum never used leaves the parent flow
  feasible unscaled, and the two bounds meet at ``t(c)``.

When the two bounds agree to ``rtol`` the child's throughput is known
without solving — the batch layer answers the request from the hint alone
(``skipped_by_bound`` in its stats).  When they do not, the hint still
tightens the child LP: :func:`repro.throughput.lp.solve_throughput_lp`
clamps the throughput variable's box to the hinted interval (with
:data:`BOUND_SLACK` relative slack so ~1e-9 solver noise in the parent's
duals can never cut off the true optimum).

Both bounds are exact (not heuristic) up to the parent solve's own
numerical accuracy; uniform degradations (``c' = f * c``) are the
degenerate case where they coincide at ``f * t(c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Relative slack applied to hint bounds before they constrain a child LP,
#: and the floor for bound-skip tolerances.  Parent duals/usage are solver
#: output (~1e-9 relative accuracy); 1e-6 keeps the tightened box safely
#: outside that noise.
BOUND_SLACK = 1e-6

#: Usage below this fraction of the busiest arc is treated as numerical
#: zero when computing the flow-scaling factor (a 1e-12 ghost flow on a
#: failed arc must not collapse the lower bound).
USAGE_FLOOR = 1e-9


@dataclass(frozen=True)
class SolveHint:
    """Transferable knowledge from a parent solve (see module docstring).

    Attributes
    ----------
    value:
        The parent's optimal throughput ``t(c)``.
    caps:
        The parent's capacity vector ``c`` (canonical arc order).
    duals:
        Nonnegative capacity duals ``y`` at the parent optimum (``None``
        disables the upper bound).
    usage:
        Total optimal flow per arc ``u`` (``None`` disables the lower
        bound).
    rtol:
        Relative gap at which the two bounds "agree" and a solve may be
        skipped; floored at :data:`BOUND_SLACK`.
    """

    value: float
    caps: np.ndarray
    duals: Optional[np.ndarray] = None
    usage: Optional[np.ndarray] = None
    rtol: float = BOUND_SLACK

    @classmethod
    def from_result(cls, result, caps, rtol: float = BOUND_SLACK) -> "SolveHint":
        """Build a hint from a duals-carrying :class:`ThroughputResult`.

        ``result.meta`` arrays may be lists (results rebuilt from the JSON
        cache) — coerced here, so warm reruns hint identically to cold
        ones.
        """
        meta = result.meta or {}
        duals = meta.get("capacity_duals")
        usage = meta.get("arc_usage")
        return cls(
            value=float(result.value),
            caps=np.ascontiguousarray(caps, dtype=np.float64),
            duals=(
                np.ascontiguousarray(duals, dtype=np.float64)
                if duals is not None
                else None
            ),
            usage=(
                np.ascontiguousarray(usage, dtype=np.float64)
                if usage is not None
                else None
            ),
            rtol=max(float(rtol), BOUND_SLACK),
        )

    def bounds_for(self, child_caps: np.ndarray) -> Tuple[float, float]:
        """``(lower, upper)`` throughput bounds for capacity vector
        ``child_caps`` (``(0.0, inf)`` when a side's data is missing)."""
        caps = np.asarray(child_caps, dtype=np.float64)
        if caps.shape != self.caps.shape:
            raise ValueError(
                f"child caps must have shape {self.caps.shape}, got {caps.shape}"
            )
        lower, upper = 0.0, float("inf")
        if self.value <= 0:
            # A zero-throughput parent bounds nothing useful; capacity
            # overlays of a disconnected-demand instance stay 0 only if
            # they cannot add capacity, which with_caps overlays can.
            return (0.0, float("inf"))
        if self.duals is not None:
            parent_weight = float(self.duals @ self.caps)
            if parent_weight > 0:
                upper = self.value * float(self.duals @ caps) / parent_weight
        if self.usage is not None:
            used = self.usage > USAGE_FLOOR * float(self.usage.max(initial=0.0))
            if np.any(used):
                alpha = float(np.min(caps[used] / self.usage[used]))
                lower = self.value * max(alpha, 0.0)
            else:  # parent routed nothing — the trivial bound
                lower = 0.0
        # Numerical noise in duals/usage can cross the bounds by ~1e-9;
        # report a consistent interval.
        if lower > upper:
            lower = upper
        return (lower, upper)

    def answers(self, child_caps: np.ndarray) -> Optional[Tuple[float, float]]:
        """The ``(value, upper)`` pair when the bounds close the query.

        Returns ``None`` when a solve is still needed.  The returned value
        is the certified-feasible lower bound (conservative side); the
        interval width is at most ``rtol`` relative.
        """
        lower, upper = self.bounds_for(child_caps)
        if not np.isfinite(upper):
            return None
        if upper <= lower * (1.0 + self.rtol) + self.rtol * max(self.value, 1e-12):
            return (lower, upper)
        return None

    # ------------------------------------------------------------ vectorized
    def bounds_for_many(
        self, caps_stack: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`bounds_for` over an ``(S, n_arcs)`` stack of capacity
        vectors — the whole ensemble's screens as two numpy reductions.

        The flow-scaling lower bound is bit-identical to the scalar path
        (elementwise division and an exact min).  The dual upper bound is
        one matrix-vector product; BLAS may order the dot sums differently
        than the scalar path, so the two can differ in the last ulp —
        harmless, because bound-screened answers are never cached and
        every sweep (cold or warm) takes this same vectorized path.
        """
        caps = np.asarray(caps_stack, dtype=np.float64)
        if caps.ndim != 2 or caps.shape[1:] != self.caps.shape:
            raise ValueError(
                f"caps stack must have shape (S, {self.caps.shape[0]}), "
                f"got {caps.shape}"
            )
        n = caps.shape[0]
        lower = np.zeros(n)
        upper = np.full(n, np.inf)
        if self.value <= 0:
            return lower, upper
        if self.duals is not None:
            parent_weight = float(self.duals @ self.caps)
            if parent_weight > 0:
                upper = self.value * (caps @ self.duals) / parent_weight
        if self.usage is not None:
            used = self.usage > USAGE_FLOOR * float(self.usage.max(initial=0.0))
            if np.any(used):
                alpha = np.min(caps[:, used] / self.usage[used], axis=1)
                lower = self.value * np.maximum(alpha, 0.0)
        np.minimum(lower, upper, out=lower)
        return lower, upper

    def answers_many(
        self, caps_stack: np.ndarray
    ) -> List[Optional[Tuple[float, float]]]:
        """:meth:`answers` for every row of ``caps_stack`` at once.

        Returns one entry per capacity vector: the certified
        ``(value, upper)`` pair when the bounds close the query, else
        ``None`` (that instance still needs a solve).
        """
        lower, upper = self.bounds_for_many(caps_stack)
        threshold = lower * (1.0 + self.rtol) + self.rtol * max(self.value, 1e-12)
        closed = np.isfinite(upper) & (upper <= threshold)
        return [
            (float(lower[i]), float(upper[i])) if closed[i] else None
            for i in range(lower.size)
        ]

    def screen_many(self, caps_stack: np.ndarray) -> List["BoundScreen"]:
        """Precomputed :class:`BoundScreen` verdicts for a request batch.

        The what-if engine attaches these to its child
        :class:`~repro.batch.jobs.SolveRequest` objects so the batch
        layer's bound-skip check consumes the ensemble-wide matmul result
        instead of re-deriving each scenario's bounds in a Python loop.
        """
        return [BoundScreen(answer=a) for a in self.answers_many(caps_stack)]


@dataclass(frozen=True)
class BoundScreen:
    """A precomputed bound-screen verdict for one request.

    ``answer`` is the certified ``(value, upper)`` pair when the parent's
    bounds closed the query, or ``None`` when the instance must solve.
    Distinct from "no screen ran" (no ``BoundScreen`` at all): a carried
    ``None`` tells the batch layer the screening already happened, so it
    must not repeat the scalar bound math per request.  Advisory only —
    never part of a request's key, params, or cached value.
    """

    answer: Optional[Tuple[float, float]] = None
