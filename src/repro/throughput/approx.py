"""Garg–Könemann multiplicative-weights approximation of max concurrent flow.

A from-scratch implementation of the Fleischer-style width-independent
(1 − ε)-approximation: arc lengths start at δ/c and are multiplied by
(1 + ε · sent/c) whenever flow is sent, so congested arcs become expensive
and later flow routes around them.  One *phase* routes every commodity's
full demand along current-shortest paths; phases repeat until the total
length volume Σ c(e) ℓ(e) reaches 1.

We report the *scaling* estimate: accumulate all routed flow, find the most
overloaded arc, and scale everything down until it fits.  Every commodity
then receives (phases / max-overload) of its demand concurrently, so the
estimate is a certified feasible lower bound on true throughput; tests
cross-validate it against the exact LP within the ε tolerance.

This engine exists for two reasons: scale (its memory is O(arcs), not
O(sources × arcs)) and the solver-ablation bench the paper's Gurobi-vs-size
discussion motivates (DESIGN.md `ablation-lp`).
"""

from __future__ import annotations

import time
from typing import Union

import numpy as np
from scipy.sparse import csgraph

from repro.core.arcgraph import ArcGraph, as_arcgraph
from repro.throughput.lp import ThroughputResult, zero_demand_result
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix


def _extract_path(predecessors: np.ndarray, src: int, dst: int) -> np.ndarray:
    """Node path src -> dst from a Dijkstra predecessor row (dst-first build)."""
    path = [dst]
    v = dst
    while v != src:
        v = int(predecessors[v])
        if v < 0:  # pragma: no cover - disconnected guard
            raise ValueError("destination unreachable")
        path.append(v)
    return np.asarray(path[::-1], dtype=np.int64)


def solve_throughput_mwu(
    topology: Union[Topology, ArcGraph],
    tm: TrafficMatrix,
    epsilon: float = 0.05,
    max_phases: int = 100_000,
) -> ThroughputResult:
    """Approximate throughput via multiplicative weights.

    **Semantics** — a *certified feasible lower bound*: the returned value
    is always achievable (the scaled flow fits the capacities), and the
    classic guarantee places it within (1 − ε)³ of the exact optimum.
    Units follow the TM, exactly as for the ``lp`` engine.
    **Determinism** — no randomness: phase order, path selection, and
    tie-breaking are fixed by the instance, so equal instances give
    bit-identical results.  **Memory** — O(arcs), independent of the
    source count; this is the bounded-memory path the automatic policy
    can select for huge instances (see
    :func:`repro.throughput.sharded.select_engine`).

    Parameters
    ----------
    epsilon:
        Accuracy knob; the classic guarantee is (1 − ε)³ of optimal, and the
        returned value is always a feasible (lower-bound) throughput.
    max_phases:
        Safety valve; the δ-based termination always fires first in practice.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    ag = as_arcgraph(topology)
    n = ag.n_nodes
    if tm.n_nodes != n:
        raise ValueError("TM / topology size mismatch")
    if tm.total_demand() <= 0:
        return zero_demand_result("mwu")
    tails, heads, caps = ag.arc_arrays()
    m = ag.n_arcs

    sources = np.flatnonzero(tm.demand.sum(axis=1) > 0)
    dest_lists = {int(s): np.flatnonzero(tm.demand[s]) for s in sources}

    # A demand pair with no positive-capacity route caps throughput at
    # exactly 0.0 (the lp engine's infeasible answer); detect it up front
    # so the phase loop never chases an unreachable destination.
    hop = csgraph.dijkstra(
        ag.csr_with(np.where(caps > 0, 1.0, np.inf)),
        directed=True,
        indices=sources,
    )
    for row, s in enumerate(sources):
        if np.any(~np.isfinite(hop[row, dest_lists[int(s)]])):
            return ThroughputResult(
                value=0.0,
                engine="mwu",
                n_variables=m,
                n_constraints=m,
                meta={"status": "infeasible", "epsilon": epsilon},
            )

    delta = (1 + epsilon) * ((1 + epsilon) * m) ** (-1.0 / epsilon)
    # Zero-capacity arcs (failure overlays) take infinite length, so the
    # shortest-path routing below never touches them.
    with np.errstate(divide="ignore"):
        lengths = np.full(m, delta, dtype=np.float64) / caps
    load = np.zeros(m, dtype=np.float64)

    t0 = time.perf_counter()
    phases = 0
    while phases < max_phases and float(caps @ lengths) < 1.0:
        for s in sources:
            dests = dest_lists[int(s)]
            remaining = tm.demand[s, dests].copy()
            while np.any(remaining > 0):
                # Arc order is CSR-canonical, so the length function wraps
                # into a CSR matrix with zero sorting or conversion cost.
                graph = ag.csr_with(lengths)
                dist, pred = csgraph.dijkstra(
                    graph,
                    directed=True,
                    indices=int(s),
                    return_predecessors=True,
                )
                for j, v in enumerate(dests):
                    d = remaining[j]
                    if d <= 0:
                        continue
                    path = _extract_path(pred, int(s), int(v))
                    arc_ids = ag.arc_ids(path[:-1], path[1:])
                    bottleneck = float(caps[arc_ids].min())
                    send = min(d, bottleneck)
                    load[arc_ids] += send
                    lengths[arc_ids] *= 1.0 + epsilon * send / caps[arc_ids]
                    remaining[j] -= send
                # Loop again (with fresh shortest paths) only if some
                # commodity had demand above its bottleneck.
        phases += 1
    elapsed = time.perf_counter() - t0
    if phases == 0:  # pragma: no cover - cannot happen with delta < 1/m
        raise RuntimeError("MWU made no progress")
    # Only positive-capacity arcs can carry load; zero-cap overlay arcs
    # would contribute 0/0 here.
    pos = caps > 0
    overload = float(np.max(load[pos] / caps[pos]))
    value = phases / overload if overload > 0 else 0.0
    return ThroughputResult(
        value=value,
        engine="mwu",
        n_variables=m,
        n_constraints=m,
        solve_seconds=elapsed,
        meta={"phases": phases, "epsilon": epsilon, "max_overload": overload},
    )
