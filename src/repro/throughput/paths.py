"""Path enumeration and path-restricted throughput (paper §V, Fig. 15).

The paper re-evaluates Yuan et al.'s fat-tree-vs-Jellyfish comparison by
computing exact LP throughput *restricted to the same path sets* their
routing scheme uses.  This module provides the two pieces: Yen's k-shortest
loopless paths and a path-formulation concurrent-flow LP.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.throughput.lp import ThroughputResult, zero_demand_result
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.validation import require_positive_int

Path = Tuple[int, ...]


def k_shortest_paths(graph: nx.Graph, src: int, dst: int, k: int) -> List[Path]:
    """Yen's algorithm: up to ``k`` shortest loopless src->dst paths (hops).

    Deterministic: candidate ties break lexicographically on the node tuple.
    """
    require_positive_int(k, "k")
    if src == dst:
        raise ValueError("src and dst must differ")
    try:
        first = tuple(nx.shortest_path(graph, src, dst))
    except nx.NetworkXNoPath:
        return []
    paths: List[Path] = [first]
    candidates: List[Tuple[int, Path]] = []
    seen = {first}
    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur = prev[i]
            root = prev[: i + 1]
            removed_edges = []
            removed_nodes = []
            g = graph.copy()
            for p in paths:
                if len(p) > i and p[: i + 1] == root and g.has_edge(p[i], p[i + 1]):
                    g.remove_edge(p[i], p[i + 1])
                    removed_edges.append((p[i], p[i + 1]))
            for node in root[:-1]:
                g.remove_node(node)
                removed_nodes.append(node)
            try:
                spur_path = tuple(nx.shortest_path(g, spur, dst))
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            total = root[:-1] + spur_path
            if total not in seen:
                seen.add(total)
                heapq.heappush(candidates, (len(total), total))
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def paths_for_pairs(
    topology: Topology,
    pairs: Sequence[Tuple[int, int]],
    k: int,
) -> Dict[Tuple[int, int], List[Path]]:
    """k shortest paths for every (src, dst) switch pair in ``pairs``."""
    out: Dict[Tuple[int, int], List[Path]] = {}
    g = nx.Graph(topology.graph)  # strip multi-edges; capacity handled by LP
    for src, dst in pairs:
        out[(src, dst)] = k_shortest_paths(g, src, dst, k)
    return out


def solve_throughput_on_paths(
    topology: Topology,
    tm: TrafficMatrix,
    path_sets: Dict[Tuple[int, int], List[Path]],
) -> ThroughputResult:
    """Exact max-concurrent-flow restricted to the given path sets.

    maximize t  s.t.  sum of a pair's path flows >= t * demand(pair),
                      per-arc total path flow <= capacity.

    **Semantics** — exact optimum *over the restricted path space*, hence
    a lower bound on the unrestricted LP value, reaching it once the path
    sets are flow-decomposition-rich (the cross-engine tests pin both
    directions).  Units follow the TM, as for every engine.
    **Determinism** — a pure function of the instance *and the path
    sets*; callers who cache on instance content must hash path-set
    provenance too (see the ``paths`` engine note in
    :func:`repro.batch.jobs.instance_key`).

    A demand pair with no supplied path (a disconnection) yields value
    0.0 with ``meta["status"] == "unroutable-commodity"``; an empty TM
    yields NaN (:func:`repro.throughput.lp.zero_demand_result`).
    """
    ag = topology.compile()
    n = ag.n_nodes
    if tm.n_nodes != n:
        raise ValueError("TM / topology size mismatch")
    caps = ag.caps
    m = ag.n_arcs

    srcs, dsts, weights = tm.pairs()
    n_pairs = srcs.size
    if n_pairs == 0:
        return zero_demand_result("paths")

    # Flatten all paths, remembering which pair each belongs to.
    path_pair: List[int] = []
    path_arcs: List[np.ndarray] = []
    for pi in range(n_pairs):
        key = (int(srcs[pi]), int(dsts[pi]))
        plist = path_sets.get(key, [])
        if not plist:
            # A demand pair with no path (disconnection) pins the
            # path-restricted optimum at exactly 0.0 — the same answer
            # the unrestricted LP gives, per the safe_ratio convention.
            return ThroughputResult(
                value=0.0,
                engine="paths",
                meta={"status": "unroutable-commodity", "pair": list(key)},
            )
        for p in plist:
            nodes = np.asarray(p, dtype=np.int64)
            arcs = ag.arc_ids(nodes[:-1], nodes[1:])
            path_pair.append(pi)
            path_arcs.append(arcs)
    n_paths = len(path_arcs)
    n_var = n_paths + 1  # + t

    # Demand rows: -sum_{p in pair} y_p + weight * t <= 0.
    rows = np.asarray(path_pair)
    cols = np.arange(n_paths)
    demand_block = sp.coo_matrix(
        (-np.ones(n_paths), (rows, cols)), shape=(n_pairs, n_var)
    ).tolil()
    demand_block[:, n_paths] = weights[:, None]
    # Capacity rows: sum_{p ni e} y_p <= cap(e).
    cap_rows = np.concatenate([arcs for arcs in path_arcs]) if n_paths else np.empty(0)
    cap_cols = np.concatenate(
        [np.full(arcs.size, j) for j, arcs in enumerate(path_arcs)]
    )
    cap_block = sp.coo_matrix(
        (np.ones(cap_rows.size), (cap_rows, cap_cols)), shape=(m, n_var)
    )
    A_ub = sp.vstack([demand_block.tocoo(), cap_block]).tocsc()
    b_ub = np.concatenate([np.zeros(n_pairs), caps])
    c = np.zeros(n_var)
    c[n_paths] = -1.0
    t0 = time.perf_counter()
    res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    elapsed = time.perf_counter() - t0
    if not res.success:  # pragma: no cover
        raise RuntimeError(f"path LP failed: {res.message}")
    return ThroughputResult(
        value=float(res.x[n_paths]),
        engine="paths",
        n_variables=n_var,
        n_constraints=n_pairs + m,
        solve_seconds=elapsed,
        meta={"n_paths": n_paths},
    )
