"""Replication of Yuan et al.'s LLSKR-style throughput methodology (Fig. 15).

Yuan et al. (SC'13) compared fat trees and Jellyfish by (a) splitting each
flow into subflows routed on a restricted path set and (b) *estimating* each
subflow's rate as the inverse of the maximum number of subflows sharing a
link along its path — not by solving the flow problem.  The paper replicates
their result and then shows it flips once (Comparison 2) throughput is
computed exactly on the same paths, and (Comparison 3) equipment is
equalized.

The exact LLSKR path rules are tied to Yuan's simulator; per the DESIGN.md
substitution policy we reproduce the *methodology*: subflows = the k shortest
paths of each pair (spread over distinct first hops where available), the
counting estimator, and the exact path-restricted LP on identical paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.throughput.paths import (
    Path,
    ThroughputResult,
    paths_for_pairs,
    solve_throughput_on_paths,
)
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.validation import require_positive_int


def _spread_first_hops(paths: List[Path], k: int) -> List[Path]:
    """Prefer paths with distinct first hops (LLSKR spreads subflows across
    neighbors), then fill with the remaining shortest ones."""
    chosen: List[Path] = []
    used_first = set()
    for p in paths:
        if len(chosen) >= k:
            break
        if p[1] not in used_first:
            chosen.append(p)
            used_first.add(p[1])
    for p in paths:
        if len(chosen) >= k:
            break
        if p not in chosen:
            chosen.append(p)
    return chosen


def llskr_path_sets(
    topology: Topology,
    tm: TrafficMatrix,
    subflows: int = 4,
    path_pool: int = 8,
) -> Dict[Tuple[int, int], List[Path]]:
    """LLSKR-style subflow path sets for every demand pair of ``tm``.

    ``path_pool`` shortest paths are enumerated per pair; ``subflows`` are
    selected with first-hop spreading.
    """
    require_positive_int(subflows, "subflows")
    require_positive_int(path_pool, "path_pool")
    srcs, dsts, _ = tm.pairs()
    pairs = [(int(s), int(d)) for s, d in zip(srcs, dsts)]
    pools = paths_for_pairs(topology, pairs, max(path_pool, subflows))
    return {pair: _spread_first_hops(pools[pair], subflows) for pair in pairs}


@dataclass
class CountingEstimate:
    """Result of the Yuan-style counting estimator.

    Throughputs are per *server flow* — Yuan et al. split each end-to-end
    server flow into subflows and report the average over flows, so networks
    with different server counts are compared in the same per-flow units.
    """

    mean_flow_throughput: float
    min_flow_throughput: float
    per_flow: np.ndarray
    flow_weights: np.ndarray


def counting_estimator(
    topology: Topology,
    tm: TrafficMatrix,
    path_sets: Dict[Tuple[int, int], List[Path]],
) -> CountingEstimate:
    """Yuan et al.'s throughput estimate: invert max link-sharing counts.

    Granularity matters: the unit of sharing is the *server* subflow.  A
    switch-level demand pair (u, v) stands for ``w = D[u,v] * N_servers``
    server flows (exact for all-to-all); each splits into k subflows, one
    per path, so a path carries w server-subflows.  A subflow's rate is the
    worst fair share along its path, ``min over links of capacity /
    (server-subflows sharing the link)``; a server flow's throughput is the
    sum of its subflow rates (capped at 1).  The reported mean weighs each
    pair by its server-flow count.

    This is an *estimator*, not a flow computation — exactly the
    methodological gap Fig. 15, Comparison 2 isolates.
    """
    ag = topology.compile()
    caps = ag.caps
    m = ag.n_arcs
    n_servers = max(topology.n_servers, 1)
    usage = np.zeros(m, dtype=np.float64)
    flow_paths: List[List[np.ndarray]] = []
    srcs, dsts, weights = tm.pairs()
    flow_counts = weights * n_servers  # server flows represented per pair
    for s, d, w in zip(srcs, dsts, flow_counts):
        plist = path_sets[(int(s), int(d))]
        arcs_list = []
        for p in plist:
            nodes = np.asarray(p, dtype=np.int64)
            arcs = ag.arc_ids(nodes[:-1], nodes[1:])
            usage[arcs] += float(w)
            arcs_list.append(arcs)
        flow_paths.append(arcs_list)
    per_flow = np.zeros(len(flow_paths))
    for i, arcs_list in enumerate(flow_paths):
        rate = 0.0
        for arcs in arcs_list:
            max_sharing = float(usage[arcs].max())
            rate += float(caps[arcs].min()) / max_sharing
        per_flow[i] = min(rate, 1.0)
    return CountingEstimate(
        mean_flow_throughput=float(np.average(per_flow, weights=flow_counts)),
        min_flow_throughput=float(per_flow.min()),
        per_flow=per_flow,
        flow_weights=flow_counts,
    )


def llskr_exact_throughput(
    topology: Topology,
    tm: TrafficMatrix,
    subflows: int = 4,
    path_pool: int = 8,
) -> ThroughputResult:
    """Exact LP throughput restricted to the LLSKR-style path sets
    (Fig. 15, Comparison 2).

    This is the batch layer's ``"paths"`` engine.  **Semantics** — exact
    on its restricted path space, therefore a lower bound on the
    unrestricted ``"lp"`` value (never above it); units follow the TM.
    **Determinism** — deterministic for a fixed as-built graph: the
    BFS/Yen enumeration tie-breaks equal-length paths by adjacency
    insertion order, which is why the batch content key hashes the
    iteration order for this engine.
    """
    sets = llskr_path_sets(topology, tm, subflows=subflows, path_pool=path_pool)
    return solve_throughput_on_paths(topology, tm, sets)
