"""Throughput engines: exact LP, MWU approximation, path-restricted, bounds."""

from repro.throughput.lp import ThroughputResult, solve_throughput_lp
from repro.throughput.approx import solve_throughput_mwu
from repro.throughput.mcf import throughput
from repro.throughput.bounds import (
    a2a_throughput,
    volumetric_upper_bound,
    worst_case_lower_bound,
)
from repro.throughput.paths import (
    k_shortest_paths,
    paths_for_pairs,
    solve_throughput_on_paths,
)
from repro.throughput.llskr import (
    CountingEstimate,
    counting_estimator,
    llskr_exact_throughput,
    llskr_path_sets,
)

__all__ = [
    "ThroughputResult",
    "solve_throughput_lp",
    "solve_throughput_mwu",
    "throughput",
    "a2a_throughput",
    "volumetric_upper_bound",
    "worst_case_lower_bound",
    "k_shortest_paths",
    "paths_for_pairs",
    "solve_throughput_on_paths",
    "CountingEstimate",
    "counting_estimator",
    "llskr_exact_throughput",
    "llskr_path_sets",
]
