"""Throughput engines: exact LP, MWU approximation, sharded, paths, bounds.

Engine semantics at a glance (the per-name contracts live in
:data:`repro.throughput.mcf.ENGINE_GUARANTEES` and render into API.md):

* ``lp`` — exact, deterministic, O(sources x arcs) memory.
* ``mwu`` — certified feasible lower bound, (1 - eps)^3 guarantee, O(arcs).
* ``sharded`` — exact when converged / fallen back, else a certified
  [lower, upper] sandwich; per-shard memory only.
* ``paths`` — exact on the restricted path set (lower bound overall).
* ``auto`` — the size policy choosing between them.
"""

from repro.throughput.lp import ThroughputResult, solve_throughput_lp
from repro.throughput.approx import solve_throughput_mwu
from repro.throughput.warmstart import BOUND_SLACK, SolveHint
from repro.throughput.backends import (
    LP_BACKENDS,
    LPBackend,
    default_lp_backend,
    register_lp_backend,
    resolve_lp_backend,
    use_lp_backend,
)
from repro.throughput.mcf import ENGINE_GUARANTEES, throughput
from repro.throughput.bounds import (
    a2a_throughput,
    volumetric_upper_bound,
    worst_case_lower_bound,
)
from repro.throughput.sharded import (
    CapacitySlicedTopology,
    ShardPolicy,
    ShardProgress,
    auto_blocks,
    dense_lp_size,
    resolve_shard_params,
    select_engine,
    solve_throughput_sharded,
    use_shard_policy,
    use_shard_progress,
)
from repro.throughput.paths import (
    k_shortest_paths,
    paths_for_pairs,
    solve_throughput_on_paths,
)
from repro.throughput.llskr import (
    CountingEstimate,
    counting_estimator,
    llskr_exact_throughput,
    llskr_path_sets,
)

__all__ = [
    "CapacitySlicedTopology",
    "ENGINE_GUARANTEES",
    "LP_BACKENDS",
    "LPBackend",
    "ShardPolicy",
    "ShardProgress",
    "SolveHint",
    "BOUND_SLACK",
    "ThroughputResult",
    "default_lp_backend",
    "register_lp_backend",
    "resolve_lp_backend",
    "use_lp_backend",
    "auto_blocks",
    "dense_lp_size",
    "resolve_shard_params",
    "select_engine",
    "solve_throughput_lp",
    "solve_throughput_mwu",
    "solve_throughput_sharded",
    "throughput",
    "use_shard_policy",
    "use_shard_progress",
    "a2a_throughput",
    "volumetric_upper_bound",
    "worst_case_lower_bound",
    "k_shortest_paths",
    "paths_for_pairs",
    "solve_throughput_on_paths",
    "CountingEstimate",
    "counting_estimator",
    "llskr_exact_throughput",
    "llskr_path_sets",
]
