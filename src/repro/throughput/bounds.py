"""Theoretical throughput bounds (paper Theorem 2 and the volumetric bound).

* Theorem 2: if the all-to-all TM achieves throughput t on G, every
  hose-model TM achieves >= t/2 (two-hop Valiant routing over the reserved
  A2A overlay).  ``T_A2A / 2`` is therefore a TM-independent lower bound on
  worst-case throughput, the reference line of Figs. 2 and 4.
* Volumetric bound: throughput <= total capacity / (demand-weighted shortest
  distance volume) — the "total work" argument of §II-B's intuition that can
  be tighter than any cut.
"""

from __future__ import annotations

import numpy as np

from repro.throughput.lp import ThroughputResult, solve_throughput_lp
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all


def a2a_throughput(topology: Topology) -> ThroughputResult:
    """Throughput of the all-to-all TM on ``topology`` (exact dense LP).

    Exact and deterministic (it *is* the ``lp`` engine on the A2A matrix);
    the A2A matrix is hose-normalized by construction, so the value is in
    the paper's per-server throughput units.
    """
    return solve_throughput_lp(topology, all_to_all(topology))


def worst_case_lower_bound(topology: Topology) -> float:
    """Theorem-2 lower bound on the throughput of *any* hose TM: T_A2A / 2.

    A certified bound, not an estimate: the two-hop Valiant argument makes
    it achievable by construction.  Same units as :func:`a2a_throughput`;
    deterministic (one exact LP solve).
    """
    return a2a_throughput(topology).value / 2.0


def volumetric_upper_bound(topology: Topology, tm: TrafficMatrix) -> float:
    """Total-capacity / flow-volume upper bound on throughput.

    Every unit of demand (u, v) consumes at least dist(u, v) arc-capacity, so
    t * sum(D[u,v] * dist(u,v)) <= total arc capacity.  A certified upper
    bound (the uniform-length instance of the metric relaxation the
    sharded engine evaluates each round); exact only when shortest-path
    routing is simultaneously optimal for every pair.  Deterministic;
    units follow the TM.
    """
    if tm.n_nodes != topology.n_switches:
        raise ValueError("TM / topology size mismatch")
    dist = topology.compile().hop_distances()
    volume = float((tm.demand * np.where(np.isfinite(dist), dist, 0.0)).sum())
    if volume <= 0:
        raise ValueError("traffic matrix has no positive-distance demand")
    if np.any(np.isinf(dist[tm.demand > 0])):
        return 0.0
    return topology.total_capacity() / volume
