"""Spectral helpers: normalized Laplacian and Fiedler-style sweeps.

The eigenvector of the second-smallest eigenvalue of the normalized
Laplacian orders nodes so that some prefix cut is within Cheeger's bound of
the sparsest cut (paper Appendix C, "eigenvector based optimizations").
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.topologies.base import Topology


def normalized_laplacian(topology: Topology) -> np.ndarray:
    """Dense normalized Laplacian ``I - D^-1/2 A D^-1/2`` (capacity-weighted)."""
    adj = topology.compile().adjacency().toarray()
    deg = adj.sum(axis=1)
    if np.any(deg == 0):
        raise ValueError("normalized Laplacian undefined for isolated nodes")
    d_inv_sqrt = 1.0 / np.sqrt(deg)
    lap = -adj * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
    np.fill_diagonal(lap, 1.0)
    return lap


def second_eigenvector(topology: Topology) -> np.ndarray:
    """Eigenvector of the second-smallest normalized-Laplacian eigenvalue."""
    lap = normalized_laplacian(topology)
    # Dense symmetric solve; cut experiments run on graphs of at most a few
    # hundred nodes, where this is faster and more robust than Lanczos.
    _, vecs = scipy.linalg.eigh(lap, subset_by_index=(1, 1))
    return vecs[:, 0]


def sweep_order(topology: Topology) -> np.ndarray:
    """Node order for the spectral sweep: ascending second eigenvector."""
    vec = second_eigenvector(topology)
    return np.argsort(vec, kind="stable")
