"""Cut sparsity with respect to a demand matrix (paper §II-B).

The sparsity of a cut S is the ratio of its capacity to the demand crossing
it.  In the directed-arc model each undirected crossing cable contributes
one unit of capacity *per direction*, and a feasible throughput t must fit
both directions:

    t * demand(S -> S~) <= capacity(S, S~)      (and symmetrically)

so  sparsity(S) = capacity / max(demand(S->S~), demand(S~->S)), and
min-over-S sparsity upper-bounds throughput — the invariant the whole cut
analysis rests on, and a property test in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all


@dataclass
class CutResult:
    """A cut and its sparsity."""

    sparsity: float
    side: np.ndarray  # boolean membership of S
    capacity: float
    demand_across: float
    found_by: str = "exact"


def _check_tm(topology: Topology, tm: TrafficMatrix) -> None:
    if tm.n_nodes != topology.n_switches:
        raise ValueError(
            f"TM has {tm.n_nodes} nodes but topology has {topology.n_switches}"
        )


def cut_sparsity(
    topology: Topology, tm: TrafficMatrix, side: np.ndarray
) -> CutResult:
    """Sparsity of one cut.  ``side`` is a boolean S-membership vector.

    Cuts with zero demand across have infinite sparsity (they bound nothing).
    """
    _check_tm(topology, tm)
    side = np.asarray(side, dtype=bool)
    n = topology.n_switches
    if side.shape != (n,):
        raise ValueError(f"side must have shape ({n},)")
    if not side.any() or side.all():
        raise ValueError("cut side must be a proper nonempty subset")
    adj = topology.compile().adjacency()
    s = side.astype(np.float64)
    capacity = float(s @ adj @ (1.0 - s))
    d_fwd = float(s @ tm.demand @ (1.0 - s))
    d_rev = float((1.0 - s) @ tm.demand @ s)
    demand = max(d_fwd, d_rev)
    sparsity = capacity / demand if demand > 0 else np.inf
    return CutResult(
        sparsity=sparsity, side=side.copy(), capacity=capacity, demand_across=demand
    )


def _sides_matrix_sparsity(
    topology: Topology, tm: TrafficMatrix, sides: np.ndarray
) -> np.ndarray:
    """Vectorized sparsity of many cuts: ``sides`` is (n_cuts, n) boolean."""
    adj = topology.compile().adjacency()
    S = sides.astype(np.float64)
    comp = 1.0 - S
    caps = np.einsum("ij,ij->i", S @ adj, comp)
    d_fwd = np.einsum("ij,ij->i", S @ tm.demand, comp)
    d_rev = np.einsum("ij,ij->i", comp @ tm.demand, S)
    demand = np.maximum(d_fwd, d_rev)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(demand > 0, caps / demand, np.inf)
    return out


def sparsest_cut_bruteforce(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    max_nodes: int = 22,
) -> CutResult:
    """Exact sparsest cut by enumerating all 2^(n-1) proper subsets.

    ``tm=None`` means the uniform (all-to-all) demand — the classic uniform
    sparsest cut.  Refuses graphs larger than ``max_nodes``.
    """
    n = topology.n_switches
    if n > max_nodes:
        raise ValueError(
            f"brute force limited to {max_nodes} nodes, graph has {n}"
        )
    if tm is None:
        tm = all_to_all(topology)
    _check_tm(topology, tm)
    # Enumerate subsets containing node 0 (each unordered cut once): id i
    # encodes the membership of nodes 1..n-1, node 0 always in S.  id 0 is
    # the singleton {0}; the last id is the full set and is dropped.
    n_subsets = 1 << (n - 1)
    ids = np.arange(0, n_subsets, dtype=np.uint64)
    masks = (ids << np.uint64(1)) | np.uint64(1)
    sides = ((masks[:, None] >> np.arange(n).astype(np.uint64)) & 1).astype(bool)
    keep = ~sides.all(axis=1)
    sides = sides[keep]
    if sides.shape[0] == 0:
        raise ValueError("graph too small for a proper cut")
    sparsities = _sides_matrix_sparsity(topology, tm, sides)
    best = int(np.argmin(sparsities))
    result = cut_sparsity(topology, tm, sides[best])
    result.found_by = "bruteforce"
    return result


def uniform_sparsest_cut_bruteforce(topology: Topology, max_nodes: int = 22) -> CutResult:
    """Exact uniform sparsest cut (all-to-all demand)."""
    return sparsest_cut_bruteforce(topology, None, max_nodes=max_nodes)
