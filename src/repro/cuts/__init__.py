"""Cut metrics: sparsest cut, bisection bandwidth, and the estimator suite."""

from repro.cuts.sparsest import (
    CutResult,
    cut_sparsity,
    sparsest_cut_bruteforce,
    uniform_sparsest_cut_bruteforce,
)
from repro.cuts.bisection import (
    bisection_bandwidth,
    bisection_bandwidth_bruteforce,
    bisection_bandwidth_heuristic,
    bisection_capacity,
)
from repro.cuts.heuristics import (
    SparseCutReport,
    eigenvector_sweep_cuts,
    expanding_region_cuts,
    find_sparse_cut,
    limited_bruteforce_cut,
    one_node_cuts,
    two_node_cuts,
)
from repro.cuts.spectral import normalized_laplacian, second_eigenvector, sweep_order

__all__ = [
    "CutResult",
    "cut_sparsity",
    "sparsest_cut_bruteforce",
    "uniform_sparsest_cut_bruteforce",
    "bisection_bandwidth",
    "bisection_bandwidth_bruteforce",
    "bisection_bandwidth_heuristic",
    "bisection_capacity",
    "SparseCutReport",
    "eigenvector_sweep_cuts",
    "expanding_region_cuts",
    "find_sparse_cut",
    "limited_bruteforce_cut",
    "one_node_cuts",
    "two_node_cuts",
    "normalized_laplacian",
    "second_eigenvector",
    "sweep_order",
]
