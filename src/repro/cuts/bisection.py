"""Bisection bandwidth (paper §II-B metric (a)).

Bisection bandwidth is the capacity of the worst-case cut splitting the
network into two equal halves.  Like the paper we also express it relative
to a demand matrix (capacity / demand crossing) so it is directly comparable
to throughput; the pure capacity form is available too.

Exact computation enumerates balanced subsets (feasible to ~22 nodes);
larger graphs use the better of a Kernighan–Lin bisection and a balanced
spectral sweep cut.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

import networkx as nx
import numpy as np

from repro.cuts.sparsest import CutResult, _sides_matrix_sparsity, cut_sparsity
from repro.cuts.spectral import sweep_order
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all
from repro.utils.rng import SeedLike, ensure_rng


def _balanced_sides_exact(n: int) -> np.ndarray:
    """All balanced subsets containing node 0 (each bisection once)."""
    half = n // 2
    others = list(range(1, n))
    sides = []
    for combo in combinations(others, half - 1):
        side = np.zeros(n, dtype=bool)
        side[0] = True
        side[list(combo)] = True
        sides.append(side)
    return np.array(sides, dtype=bool)


def bisection_bandwidth_bruteforce(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    max_nodes: int = 22,
) -> CutResult:
    """Exact worst-case balanced cut.  Odd n uses floor(n/2) | ceil(n/2)."""
    n = topology.n_switches
    if n > max_nodes:
        raise ValueError(f"exact bisection limited to {max_nodes} nodes, got {n}")
    if n < 2:
        raise ValueError("bisection needs at least 2 nodes")
    if tm is None:
        tm = all_to_all(topology)
    elif tm.n_nodes != n:
        raise ValueError(f"TM has {tm.n_nodes} nodes but topology has {n}")
    sides = _balanced_sides_exact(n)
    vals = _sides_matrix_sparsity(topology, tm, sides)
    best = int(np.argmin(vals))
    res = cut_sparsity(topology, tm, sides[best])
    res.found_by = "bisection_bruteforce"
    return res


def bisection_bandwidth_heuristic(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    seed: SeedLike = 0,
    kl_restarts: int = 3,
) -> CutResult:
    """Best balanced cut from Kernighan–Lin restarts + balanced spectral sweep."""
    n = topology.n_switches
    if n < 2:
        raise ValueError("bisection needs at least 2 nodes")
    if tm is None:
        tm = all_to_all(topology)
    elif tm.n_nodes != n:
        raise ValueError(f"TM has {tm.n_nodes} nodes but topology has {n}")
    rng = ensure_rng(seed)
    sides = []
    g = nx.Graph(topology.graph)
    for _ in range(kl_restarts):
        part = nx.algorithms.community.kernighan_lin_bisection(
            g, seed=int(rng.integers(0, 2**31 - 1))
        )
        side = np.zeros(n, dtype=bool)
        side[list(part[0])] = True
        sides.append(side)
    order = sweep_order(topology)
    half = n // 2
    spectral_side = np.zeros(n, dtype=bool)
    spectral_side[order[:half]] = True
    sides.append(spectral_side)
    vals = _sides_matrix_sparsity(topology, tm, np.array(sides, dtype=bool))
    best = int(np.argmin(vals))
    res = cut_sparsity(topology, tm, sides[best])
    res.found_by = "bisection_heuristic"
    return res


def bisection_bandwidth(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    seed: SeedLike = 0,
) -> CutResult:
    """Exact when feasible, otherwise the heuristic."""
    if topology.n_switches <= 18:
        return bisection_bandwidth_bruteforce(topology, tm)
    return bisection_bandwidth_heuristic(topology, tm, seed=seed)


def bisection_capacity(topology: Topology, seed: SeedLike = 0) -> float:
    """Raw bisection capacity (cables crossing the worst balanced cut)."""
    res = bisection_bandwidth(topology, None, seed=seed)
    return res.capacity
