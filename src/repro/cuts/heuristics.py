"""The paper's sparse-cut estimator suite (Appendix C).

Five heuristics, each returning its best cut; :func:`find_sparse_cut` runs
all of them and reports the overall winner plus which estimators found it —
the data behind Table II.

* limited brute force (capped at 10,000 cuts);
* one-node cuts;
* two-node cuts;
* expanding-region cuts (BFS balls of growing radius around every node);
* eigenvector sweep of the normalized Laplacian's second eigenvector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cuts.sparsest import (
    CutResult,
    _sides_matrix_sparsity,
    cut_sparsity,
    sparsest_cut_bruteforce,
)
from repro.cuts.spectral import sweep_order
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all
from repro.utils.rng import SeedLike, ensure_rng

#: Tolerance when deciding that two sparsities are "the same cut value".
SPARSITY_RTOL = 1e-9


def _best_of(topology: Topology, tm: TrafficMatrix, sides: np.ndarray, tag: str) -> Optional[CutResult]:
    """Best cut among the rows of boolean matrix ``sides``."""
    if sides.size == 0:
        return None
    # Discard degenerate rows (empty or full side).
    any_in = sides.any(axis=1)
    any_out = ~sides.all(axis=1)
    sides = sides[any_in & any_out]
    if sides.shape[0] == 0:
        return None
    vals = _sides_matrix_sparsity(topology, tm, sides)
    best = int(np.argmin(vals))
    res = cut_sparsity(topology, tm, sides[best])
    res.found_by = tag
    return res


def limited_bruteforce_cut(
    topology: Topology,
    tm: TrafficMatrix,
    max_cuts: int = 10_000,
    seed: SeedLike = 0,
) -> Optional[CutResult]:
    """Brute force capped at ``max_cuts`` cuts (the paper's 10,000 cap).

    Below the cap this is exact; above it, cuts are sampled uniformly (each
    node joining S with probability 1/2, node 0 pinned to S).
    """
    n = topology.n_switches
    if n <= 1:
        return None
    total = 1 << (n - 1)
    if total - 1 <= max_cuts:
        res = sparsest_cut_bruteforce(topology, tm, max_nodes=n)
        res.found_by = "bruteforce"
        return res
    rng = ensure_rng(seed)
    sides = rng.random((max_cuts, n)) < 0.5
    sides[:, 0] = True
    res = _best_of(topology, tm, sides, "bruteforce")
    return res


def one_node_cuts(topology: Topology, tm: TrafficMatrix) -> Optional[CutResult]:
    """All n cuts isolating a single node."""
    n = topology.n_switches
    sides = np.eye(n, dtype=bool)
    return _best_of(topology, tm, sides, "one_node")


def two_node_cuts(topology: Topology, tm: TrafficMatrix) -> Optional[CutResult]:
    """All n(n-1)/2 cuts isolating a pair of nodes."""
    n = topology.n_switches
    if n < 3:
        return None
    idx_u, idx_v = np.triu_indices(n, k=1)
    sides = np.zeros((idx_u.size, n), dtype=bool)
    sides[np.arange(idx_u.size), idx_u] = True
    sides[np.arange(idx_u.size), idx_v] = True
    return _best_of(topology, tm, sides, "two_node")


def expanding_region_cuts(topology: Topology, tm: TrafficMatrix) -> Optional[CutResult]:
    """BFS-ball cuts: for every node, S = ball of radius k, k = 0..diameter."""
    dist = topology.compile().hop_distances()
    n = topology.n_switches
    finite = dist[np.isfinite(dist)]
    diameter = int(finite.max()) if finite.size else 0
    sides_list: List[np.ndarray] = []
    for radius in range(diameter):  # radius = diameter would be the full set
        sides_list.append(dist <= radius)
    if not sides_list:
        return None
    sides = np.vstack(sides_list)
    return _best_of(topology, tm, sides, "expanding")


def eigenvector_sweep_cuts(topology: Topology, tm: TrafficMatrix) -> Optional[CutResult]:
    """The n-1 prefix cuts of the spectral sweep order."""
    order = sweep_order(topology)
    n = topology.n_switches
    sides = np.zeros((n - 1, n), dtype=bool)
    for i in range(n - 1):
        sides[i, order[: i + 1]] = True
    return _best_of(topology, tm, sides, "eigenvector")


@dataclass
class SparseCutReport:
    """Best sparse cut found by the full estimator suite.

    ``estimator_values`` maps estimator name to its best sparsity;
    ``winners`` lists every estimator whose value ties the overall best
    (Table II counts winners per estimator).
    """

    best: CutResult
    estimator_values: Dict[str, float] = field(default_factory=dict)
    winners: List[str] = field(default_factory=list)


def find_sparse_cut(
    topology: Topology,
    tm: Optional[TrafficMatrix] = None,
    max_bruteforce_cuts: int = 10_000,
    seed: SeedLike = 0,
) -> SparseCutReport:
    """Run every Appendix-C estimator; return the best cut and the census.

    ``tm=None`` uses all-to-all demand (uniform sparsest cut).
    """
    if tm is None:
        tm = all_to_all(topology)
    elif tm.n_nodes != topology.n_switches:
        raise ValueError(
            f"TM has {tm.n_nodes} nodes but topology has {topology.n_switches}"
        )
    estimators = {
        "bruteforce": lambda: limited_bruteforce_cut(
            topology, tm, max_cuts=max_bruteforce_cuts, seed=seed
        ),
        "one_node": lambda: one_node_cuts(topology, tm),
        "two_node": lambda: two_node_cuts(topology, tm),
        "expanding": lambda: expanding_region_cuts(topology, tm),
        "eigenvector": lambda: eigenvector_sweep_cuts(topology, tm),
    }
    results: Dict[str, CutResult] = {}
    for name, fn in estimators.items():
        res = fn()
        if res is not None and math.isfinite(res.sparsity):
            results[name] = res
    if not results:
        raise ValueError("no estimator produced a valid cut")
    best_name = min(results, key=lambda k: results[k].sparsity)
    best = results[best_name]
    winners = [
        name
        for name, res in results.items()
        if res.sparsity <= best.sparsity * (1 + SPARSITY_RTOL)
    ]
    return SparseCutReport(
        best=best,
        estimator_values={k: v.sparsity for k, v in results.items()},
        winners=winners,
    )
