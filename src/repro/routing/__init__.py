"""Routing-scheme evaluation: how much throughput a routing policy forfeits.

The paper's §V argues that measuring topologies under a *specific routing
scheme* (e.g. single-path, as in [47]) reveals the routing's limits rather
than the topology's; its own methodology uses optimal multipath flow.  This
subpackage quantifies that argument: throughput under single shortest-path
routing and under ECMP, compared to the optimal-flow LP.
"""

from repro.routing.schemes import (
    RoutingReport,
    ecmp_throughput,
    routing_gap_report,
    single_path_throughput,
)

__all__ = [
    "RoutingReport",
    "ecmp_throughput",
    "routing_gap_report",
    "single_path_throughput",
]
