"""Concrete routing schemes and their throughput (paper §V).

Both schemes route every demand on shortest paths and are *oblivious* (no
load adaptation), so their throughput is computed directly from link loads:

* **Single shortest path**: each demand follows one deterministic shortest
  path (lowest-neighbor-first tie-breaking, as a switch FIB would).
* **ECMP**: each demand splits equally over all shortest paths, computed by
  the standard per-node equal splitting over next hops on shortest paths.

Throughput of an oblivious routing = 1 / (max link load at unit demand
scale), the largest t at which the fixed routing fits.  The gap to
:func:`repro.throughput.throughput` (optimal multipath flow) is the
"routing gap" — what a scheme forfeits vs what the topology could do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.batch import SolveRequest, solve_values
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.numeric import safe_ratio


def _arc_index(topology: Topology) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict]:
    tails, heads, caps = topology.compile().arc_arrays()
    index = {(int(u), int(v)): e for e, (u, v) in enumerate(zip(tails, heads))}
    return tails, heads, caps, index


def single_path_throughput(topology: Topology, tm: TrafficMatrix) -> float:
    """Throughput under deterministic single-shortest-path routing.

    Next hop at u toward destination v is the lowest-numbered neighbor on a
    shortest path — the deterministic FIB a simple control plane would
    install.  Returns max t with t * loads <= capacities.
    """
    n = topology.n_switches
    if tm.n_nodes != n:
        raise ValueError("TM / topology size mismatch")
    dist = topology.compile().hop_distances()
    tails, heads, caps, index = _arc_index(topology)
    neighbors = {v: sorted(topology.graph.neighbors(v)) for v in range(n)}
    load = np.zeros(caps.size)
    srcs, dsts, weights = tm.pairs()
    for s, d, w in zip(srcs, dsts, weights):
        u = int(s)
        while u != d:
            nxt = next(
                nb for nb in neighbors[u] if dist[nb, d] == dist[u, d] - 1
            )
            load[index[(u, nxt)]] += w
            u = nxt
    max_util = float((load / caps).max())
    if max_util <= 0:
        raise ValueError("traffic matrix has no routable demand")
    return 1.0 / max_util


def ecmp_throughput(topology: Topology, tm: TrafficMatrix) -> float:
    """Throughput under ECMP (equal split over all shortest paths).

    Splitting is the standard per-hop rule: at node u with demand toward d,
    flow divides equally among all neighbors one hop closer to d.  Loads are
    computed destination-by-destination with a vectorized relaxation over
    nodes in decreasing-distance order.
    """
    n = topology.n_switches
    if tm.n_nodes != n:
        raise ValueError("TM / topology size mismatch")
    dist = topology.compile().hop_distances()
    tails, heads, caps, index = _arc_index(topology)
    neighbors = {v: list(topology.graph.neighbors(v)) for v in range(n)}
    load = np.zeros(caps.size)
    for d in range(n):
        col = tm.demand[:, d]
        if col.sum() == 0:
            continue
        # inflow[u]: demand at u still heading to d (own demand + relayed).
        inflow = col.astype(np.float64).copy()
        order = np.argsort(-dist[:, d], kind="stable")  # far nodes first
        for u in order:
            u = int(u)
            if u == d or inflow[u] <= 0 or not np.isfinite(dist[u, d]):
                continue
            downhill = [nb for nb in neighbors[u] if dist[nb, d] == dist[u, d] - 1]
            share = inflow[u] / len(downhill)
            for nb in downhill:
                load[index[(u, nb)]] += share
                inflow[nb] += share
    max_util = float((load / caps).max())
    if max_util <= 0:
        raise ValueError("traffic matrix has no routable demand")
    return 1.0 / max_util


@dataclass
class RoutingReport:
    """Throughput of one (topology, TM) pair under three routing policies."""

    topology_name: str
    tm_kind: str
    optimal: float
    ecmp: float
    single_path: float

    @property
    def ecmp_gap(self) -> float:
        """Fraction of optimal throughput ECMP achieves (NaN for 0/0)."""
        return safe_ratio(self.ecmp, self.optimal)

    @property
    def single_path_gap(self) -> float:
        return safe_ratio(self.single_path, self.optimal)


def routing_gap_report(
    topology: Topology, tm: TrafficMatrix, optimal: Optional[float] = None
) -> RoutingReport:
    """Optimal-flow vs ECMP vs single-path throughput for one instance.

    ``optimal`` may be supplied by callers that batched the LP solve
    elsewhere (the routing-gap experiment batches its whole sweep); when
    omitted, the solve routes through the ambient batch solver, so it is
    memoized and parallelized under ``run_experiment``.
    """
    if optimal is None:
        optimal = solve_values([SolveRequest(topology, tm, tag=topology.name)])[0]
    return RoutingReport(
        topology_name=topology.name,
        tm_kind=tm.kind,
        optimal=optimal,
        ecmp=ecmp_throughput(topology, tm),
        single_path=single_path_throughput(topology, tm),
    )
