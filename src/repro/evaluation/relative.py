"""Relative throughput: topology vs same-equipment random graph (paper §IV).

``relative_throughput`` evaluates a TM family on a topology and on
``samples`` independent same-equipment random graphs, returning the ratio.
TM families that adapt to the graph (longest matching, random matching) are
regenerated for each random graph; fixed matrices (e.g. a placed Facebook
TM) are re-placed on the random graph's identical server layout.

All LP solves route through the ambient :class:`~repro.batch.BatchSolver`
(see :mod:`repro.batch.context`): instance construction — topologies, TMs,
random-graph baselines — happens eagerly in seed order (so results are
bit-identical to the historical serial code), and the resulting
``SolveRequest`` batch is executed by the solver, which may parallelize it
and memoize repeats.  ``relative_throughput_many`` batches *entire sweeps*
into one submission, which is where multicore actually pays off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch import BatchSolver, SolveRequest, get_solver
from repro.evaluation.equipment import same_equipment_random_graph
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, spawn_rngs

#: A TM family: builds the matrix for a given topology instance.
TMFactory = Callable[[Topology, SeedLike], TrafficMatrix]

#: One relative-throughput evaluation: (topology, tm_factory, samples, seed).
RelativeSpec = Tuple[Topology, TMFactory, int, SeedLike]


@dataclass
class RelativeThroughputResult:
    """Throughput of a topology normalized by its random-graph equivalent."""

    topology_name: str
    absolute: float
    random_absolute_mean: float
    random_absolute_values: List[float]
    relative: float
    n_samples: int


def _spec_requests(
    topology: Topology, tm_factory: TMFactory, samples: int, seed: SeedLike, engine: str
) -> List[SolveRequest]:
    """The 1 + samples solve requests of one relative-throughput evaluation.

    RNG consumption order matches the historical serial implementation
    exactly: the topology's own TM first, then alternating random graph /
    random TM draws.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, 2 * samples + 1)
    requests = [
        SolveRequest(topology, tm_factory(topology, rngs[0]), engine=engine, tag="self")
    ]
    for i in range(samples):
        rand = same_equipment_random_graph(topology, seed=rngs[1 + 2 * i])
        rand_tm = tm_factory(rand, rngs[2 + 2 * i])
        requests.append(SolveRequest(rand, rand_tm, engine=engine, tag=f"rand{i}"))
    return requests


#: Max requests submitted per solve_many call.  Bounds peak memory: each
#: request holds a dense n x n demand matrix and a topology, so a whole
#: paper-scale ladder sweep must not sit in RAM at once.  64 in-flight
#: instances keep any realistic worker pool saturated.
_CHUNK_SIZE = 64


def relative_throughput_many(
    specs: Sequence[RelativeSpec],
    engine: str = "lp",
    solver: Optional[BatchSolver] = None,
) -> List[RelativeThroughputResult]:
    """Evaluate many relative-throughput points as chunked solve batches.

    Each spec is ``(topology, tm_factory, samples, seed)``.  The LPs of all
    specs are submitted through :meth:`BatchSolver.solve_many` in chunks of
    ``_CHUNK_SIZE``, so a whole figure sweep parallelizes across instances
    (not just the 1 + samples instances of a single point) while only a
    bounded window of topologies/TMs is alive at a time; completed chunks
    retain only their float values.
    """
    # Validate every spec before solving anything: a bad spec mid-sweep
    # must not waste the LPs already solved (and samples=0 would otherwise
    # surface later as a np.mean([]) NaN + RuntimeWarning).
    for _topology, _factory, samples, _seed in specs:
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
    solver = solver or get_solver()
    values: List[float] = []
    bounds: List[Tuple[int, int]] = []
    buffer: List[SolveRequest] = []

    def flush() -> None:
        if buffer:
            values.extend(o.require().value for o in solver.solve_many(buffer))
            buffer.clear()

    for topology, tm_factory, samples, seed in specs:
        start = len(values) + len(buffer)
        buffer.extend(_spec_requests(topology, tm_factory, samples, seed, engine))
        bounds.append((start, len(values) + len(buffer)))
        if len(buffer) >= _CHUNK_SIZE:
            flush()
    flush()

    results: List[RelativeThroughputResult] = []
    for (topology, _factory, samples, _seed), (start, stop) in zip(specs, bounds):
        spec_values = values[start:stop]
        absolute, rand_values = spec_values[0], spec_values[1:]
        mean = float(np.mean(rand_values))
        if mean > 0:
            rel = absolute / mean
        elif absolute == 0:
            # 0/0: the comparison is undefined, not infinitely good.
            rel = float("nan")
        else:
            rel = np.inf
        results.append(
            RelativeThroughputResult(
                topology_name=topology.name,
                absolute=absolute,
                random_absolute_mean=mean,
                random_absolute_values=rand_values,
                relative=rel,
                n_samples=samples,
            )
        )
    return results


def relative_throughput(
    topology: Topology,
    tm_factory: TMFactory,
    samples: int = 3,
    seed: SeedLike = 0,
    engine: str = "lp",
    solver: Optional[BatchSolver] = None,
) -> RelativeThroughputResult:
    """Throughput of ``topology`` divided by the mean over ``samples``
    same-equipment random graphs (each with its own TM from the factory)."""
    return relative_throughput_many(
        [(topology, tm_factory, samples, seed)], engine=engine, solver=solver
    )[0]


def relative_path_length(
    topology: Topology, samples: int = 3, seed: SeedLike = 0
) -> float:
    """Mean server-pair distance relative to same-equipment random graphs
    (the Slim Fly short-paths comparison, Fig. 9)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, samples)
    own = topology.server_pair_mean_distance()
    rand_vals = [
        same_equipment_random_graph(topology, seed=r).server_pair_mean_distance()
        for r in rngs
    ]
    return own / float(np.mean(rand_vals))
