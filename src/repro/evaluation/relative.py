"""Relative throughput: topology vs same-equipment random graph (paper §IV).

``relative_throughput`` evaluates a TM family on a topology and on
``samples`` independent same-equipment random graphs, returning the ratio.
TM families that adapt to the graph (longest matching, random matching) are
regenerated for each random graph; fixed matrices (e.g. a placed Facebook
TM) are re-placed on the random graph's identical server layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.evaluation.equipment import same_equipment_random_graph
from repro.throughput.mcf import throughput
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, spawn_rngs

#: A TM family: builds the matrix for a given topology instance.
TMFactory = Callable[[Topology, SeedLike], TrafficMatrix]


@dataclass
class RelativeThroughputResult:
    """Throughput of a topology normalized by its random-graph equivalent."""

    topology_name: str
    absolute: float
    random_absolute_mean: float
    random_absolute_values: List[float]
    relative: float
    n_samples: int


def relative_throughput(
    topology: Topology,
    tm_factory: TMFactory,
    samples: int = 3,
    seed: SeedLike = 0,
    engine: str = "lp",
) -> RelativeThroughputResult:
    """Throughput of ``topology`` divided by the mean over ``samples``
    same-equipment random graphs (each with its own TM from the factory)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, 2 * samples + 1)
    tm = tm_factory(topology, rngs[0])
    absolute = throughput(topology, tm, engine=engine).value
    rand_values: List[float] = []
    for i in range(samples):
        rand = same_equipment_random_graph(topology, seed=rngs[1 + 2 * i])
        rand_tm = tm_factory(rand, rngs[2 + 2 * i])
        rand_values.append(throughput(rand, rand_tm, engine=engine).value)
    mean = float(np.mean(rand_values))
    rel = absolute / mean if mean > 0 else np.inf
    return RelativeThroughputResult(
        topology_name=topology.name,
        absolute=absolute,
        random_absolute_mean=mean,
        random_absolute_values=rand_values,
        relative=rel,
        n_samples=samples,
    )


def relative_path_length(
    topology: Topology, samples: int = 3, seed: SeedLike = 0
) -> float:
    """Mean server-pair distance relative to same-equipment random graphs
    (the Slim Fly short-paths comparison, Fig. 9)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, samples)
    own = topology.server_pair_mean_distance()
    rand_vals = [
        same_equipment_random_graph(topology, seed=r).server_pair_mean_distance()
        for r in rngs
    ]
    return own / float(np.mean(rand_vals))
