"""Relative throughput: topology vs same-equipment random graph (paper §IV).

``relative_throughput`` evaluates a TM family on a topology and on
``samples`` independent same-equipment random graphs, returning the ratio.
TM families that adapt to the graph (longest matching, random matching) are
regenerated for each random graph; fixed matrices (e.g. a placed Facebook
TM) are re-placed on the random graph's identical server layout.

All LP solves route through the ambient :class:`~repro.batch.BatchSolver`
(see :mod:`repro.batch.context`): instance construction — topologies, TMs,
random-graph baselines — happens eagerly in seed order (so results are
bit-identical to the historical serial code), and the resulting
``SolveRequest`` batch is executed by the solver, which may parallelize it
and memoize repeats.  ``relative_throughput_iter`` batches *entire sweeps*
through the solver's incremental submission path — multicore pays off
across the sweep, and each point's result streams out as its solves land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch import BatchSolver, SolveRequest, get_solver, iter_outcome_values
from repro.evaluation.equipment import same_equipment_random_graph
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, spawn_rngs

#: A TM family: builds the matrix for a given topology instance.
TMFactory = Callable[[Topology, SeedLike], TrafficMatrix]

#: One relative-throughput evaluation: (topology, tm_factory, samples, seed).
RelativeSpec = Tuple[Topology, TMFactory, int, SeedLike]


@dataclass
class RelativeThroughputResult:
    """Throughput of a topology normalized by its random-graph equivalent."""

    topology_name: str
    absolute: float
    random_absolute_mean: float
    random_absolute_values: List[float]
    relative: float
    n_samples: int


def _spec_requests(
    topology: Topology,
    tm_factory: TMFactory,
    samples: int,
    seed: SeedLike,
    engine: Optional[str],

) -> List[SolveRequest]:
    """The 1 + samples solve requests of one relative-throughput evaluation.

    RNG consumption order matches the historical serial implementation
    exactly: the topology's own TM first, then alternating random graph /
    random TM draws.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, 2 * samples + 1)
    requests = [
        SolveRequest(topology, tm_factory(topology, rngs[0]), engine=engine, tag="self")
    ]
    for i in range(samples):
        rand = same_equipment_random_graph(topology, seed=rngs[1 + 2 * i])
        rand_tm = tm_factory(rand, rngs[2 + 2 * i])
        requests.append(SolveRequest(rand, rand_tm, engine=engine, tag=f"rand{i}"))
    return requests


#: Max requests submitted per solve_many call.  Bounds peak memory: each
#: request holds a dense n x n demand matrix and a topology, so a whole
#: paper-scale ladder sweep must not sit in RAM at once.  64 in-flight
#: instances keep any realistic worker pool saturated.
_CHUNK_SIZE = 64


def _spec_result(
    topology_name: str, samples: int, spec_values: List[float]
) -> RelativeThroughputResult:
    """Fold one spec's ``1 + samples`` solve values into a result record."""
    absolute, rand_values = spec_values[0], spec_values[1:]
    mean = float(np.mean(rand_values))
    if mean > 0:
        rel = absolute / mean
    elif absolute == 0:
        # 0/0: the comparison is undefined, not infinitely good.
        rel = float("nan")
    else:
        rel = np.inf
    return RelativeThroughputResult(
        topology_name=topology_name,
        absolute=absolute,
        random_absolute_mean=mean,
        random_absolute_values=rand_values,
        relative=rel,
        n_samples=samples,
    )


def relative_throughput_iter(
    specs: Sequence[RelativeSpec],
    engine: Optional[str] = None,
    solver: Optional[BatchSolver] = None,
) -> Iterator[RelativeThroughputResult]:
    """Evaluate many relative-throughput points, yielding each as it's ready.

    Each spec is ``(topology, tm_factory, samples, seed)``.  The LPs of all
    specs are submitted through the solver's incremental
    :meth:`~repro.batch.BatchSolver.submit` /
    :meth:`~repro.batch.BatchSolver.iter_outcomes` path in chunks of
    ``_CHUNK_SIZE``, so a whole figure sweep parallelizes across instances
    (not just the 1 + samples instances of a single point) while only a
    bounded window of topologies/TMs is alive at a time — and each spec's
    result is yielded the moment its last solve lands, letting callers emit
    figure rows while the rest of the sweep is still solving.  Values,
    ordering, and solve stats are bit-identical to the all-at-once
    :func:`relative_throughput_many`.
    """
    specs = list(specs)
    # Validate every spec before solving anything: a bad spec mid-sweep
    # must not waste the LPs already solved (and samples=0 would otherwise
    # surface later as a np.mean([]) NaN + RuntimeWarning).
    for _topology, _factory, samples, _seed in specs:
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
    solver = solver or get_solver()
    pending: List[Tuple[RelativeSpec, int]] = []
    buffer: List[SolveRequest] = []

    def drain() -> Iterator[RelativeThroughputResult]:
        # iter_outcome_values owns the streaming protocol (nested-stream
        # guard, submission, in-order release, drain on early exit); this
        # only regroups its value stream back into per-spec results.
        values = iter_outcome_values(list(buffer), solver=solver)
        buffer.clear()
        for (topology, _factory, samples, _seed), n_requests in pending:
            spec_values = [next(values) for _ in range(n_requests)]
            yield _spec_result(topology.name, samples, spec_values)
        values.close()  # release the solver's stream promptly, not at GC
        pending.clear()

    for spec in specs:
        topology, tm_factory, samples, seed = spec
        requests = _spec_requests(topology, tm_factory, samples, seed, engine)
        buffer.extend(requests)
        pending.append((spec, len(requests)))
        if len(buffer) >= _CHUNK_SIZE:
            yield from drain()
    yield from drain()


def relative_throughput_many(
    specs: Sequence[RelativeSpec],
    engine: Optional[str] = None,
    solver: Optional[BatchSolver] = None,
) -> List[RelativeThroughputResult]:
    """All-at-once form of :func:`relative_throughput_iter` (a list)."""
    return list(relative_throughput_iter(specs, engine=engine, solver=solver))


def relative_throughput(
    topology: Topology,
    tm_factory: TMFactory,
    samples: int = 3,
    seed: SeedLike = 0,
    engine: Optional[str] = None,
    solver: Optional[BatchSolver] = None,
) -> RelativeThroughputResult:
    """Throughput of ``topology`` divided by the mean over ``samples``
    same-equipment random graphs (each with its own TM from the factory)."""
    return relative_throughput_many(
        [(topology, tm_factory, samples, seed)], engine=engine, solver=solver
    )[0]


def relative_path_length(
    topology: Topology, samples: int = 3, seed: SeedLike = 0
) -> float:
    """Mean server-pair distance relative to same-equipment random graphs
    (the Slim Fly short-paths comparison, Fig. 9)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rngs = spawn_rngs(seed, samples)
    own = topology.server_pair_mean_distance()
    rand_vals = [
        same_equipment_random_graph(topology, seed=r).server_pair_mean_distance()
        for r in rngs
    ]
    return own / float(np.mean(rand_vals))
