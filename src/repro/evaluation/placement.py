"""Throughput-aware workload placement (the paper's second future-work item).

§VI: "can we leverage the result that rack-level randomization of workload
placement can improve performance to provide better task placement?"  Fig. 14
showed *random* shuffling already helps skewed TMs on structured topologies;
this module searches for placements *better than random* by local search:
swap two racks' positions, keep the swap if LP throughput improves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.context import get_solver
from repro.batch.jobs import SolveRequest
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.numeric import safe_ratio
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class PlacementResult:
    """Outcome of the placement search."""

    placement: np.ndarray  # role r -> node placement[r]
    tm: TrafficMatrix
    throughput: float
    baseline_throughput: float
    n_evaluations: int

    @property
    def gain(self) -> float:
        """throughput / baseline (NaN for the undefined 0/0 case)."""
        return safe_ratio(self.throughput, self.baseline_throughput)


def optimize_placement(
    topology: Topology,
    rack_tm: TrafficMatrix,
    max_evaluations: int = 40,
    seed: SeedLike = 0,
    restarts: int = 2,
) -> PlacementResult:
    """Search rack -> location assignments maximizing LP throughput.

    ``rack_tm`` is a rack-level demand matrix with at most as many racks as
    the topology has server locations.  The search runs ``restarts``
    random-restart hill climbs over position swaps, sharing one evaluation
    budget.  The baseline is the identity ("sampled") placement.

    Each candidate costs one LP solve; use small topologies.
    """
    hosts = topology.server_nodes
    n_racks = rack_tm.n_nodes
    if n_racks > hosts.size:
        raise ValueError(
            f"TM has {n_racks} racks but topology offers {hosts.size} locations"
        )
    rng = ensure_rng(seed)
    n = topology.n_switches
    solver = get_solver()

    def placed(positions: np.ndarray) -> TrafficMatrix:
        tm = rack_tm.embedded(n, positions)
        return tm.normalized_hose(topology.servers)

    def evaluate(positions: np.ndarray) -> float:
        # Each candidate is one ambient-solver job: under an experiment run
        # the search shares the run's result cache (revisited placements are
        # free); standalone it degrades to the historical inline solve.
        request = SolveRequest(topology, placed(positions), tag="placement")
        return solver.solve(request).require().value

    baseline_pos = hosts[:n_racks].copy()
    baseline = evaluate(baseline_pos)
    best_pos, best_t = baseline_pos, baseline
    evals = 0
    for restart in range(restarts):
        if restart == 0:
            pos = baseline_pos.copy()
            current = baseline
        else:
            pos = rng.permutation(hosts)[:n_racks]
            current = evaluate(pos)
            evals += 1
        while evals < max_evaluations:
            i, j = rng.choice(n_racks, size=2, replace=False)
            cand = pos.copy()
            cand[i], cand[j] = cand[j], cand[i]
            t = evaluate(cand)
            evals += 1
            if t > current * (1 + 1e-9):
                pos, current = cand, t
        if current > best_t:
            best_pos, best_t = pos, current
        if evals >= max_evaluations:
            break
    return PlacementResult(
        placement=best_pos,
        tm=placed(best_pos),
        throughput=best_t,
        baseline_throughput=baseline,
        n_evaluations=evals,
    )
