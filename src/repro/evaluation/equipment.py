"""Same-equipment random graphs — the paper's normalization device (§IV).

Topologies cannot be compared on raw throughput because they are built from
different equipment.  The paper's solution: for each topology, build a
uniform-random graph with *exactly* the same equipment — the same switches
(degree per node) and the same server placement — and report throughput
relative to it.

Construction: configuration model on the topology's degree sequence, then
degree-preserving 2-swaps to remove self-loops and parallel edges, then
degree-preserving 2-swaps to connect components.  Every step preserves the
per-node degree, so the equipment signature is preserved exactly (a property
test in the suite).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import SeedLike, ensure_rng


def _config_model_simple_connected(
    degrees: np.ndarray, rng: np.random.Generator, max_attempts: int = 60
) -> nx.Graph:
    """Random connected graph with the given per-node degree sequence.

    Prefers a simple graph; dense or parallel-cable equipment (e.g. HyperX
    with link multiplicity K > 1, or degree >= n) may not be realizable as a
    simple graph, in which case a connected multigraph without self-loops is
    returned — the paper's normalizer only fixes "number of links per node",
    not simplicity.
    """
    for _ in range(max_attempts):
        g = nx.configuration_model(
            degrees.tolist(), seed=int(rng.integers(0, 2**31 - 1))
        )
        simple = _repair_simple(g, rng)
        if simple is None:
            continue
        connected = _repair_connected(simple, rng)
        if connected is None:
            continue
        return connected
    # Multigraph fallback: only self-loops must go (they carry no capacity).
    for _ in range(max_attempts):
        g = nx.configuration_model(
            degrees.tolist(), seed=int(rng.integers(0, 2**31 - 1))
        )
        multi = _repair_selfloops_multigraph(g, rng)
        if multi is None:
            continue
        connected = _repair_connected_multigraph(multi, rng)
        if connected is None:
            continue
        return connected
    raise RuntimeError("failed to realize degree sequence as a connected graph")


def _repair_selfloops_multigraph(multigraph: nx.MultiGraph, rng: np.random.Generator):
    """Remove self-loops by 2-swaps, keeping parallel edges.  None on failure."""
    g = nx.MultiGraph(multigraph)
    for _ in range(20_000):
        loops = list(nx.selfloop_edges(g))
        if not loops:
            return g
        u, _ = loops[0]
        edges = [e for e in g.edges() if e[0] != e[1]]
        if not edges:
            return None
        for _ in range(200):
            x, y = edges[int(rng.integers(len(edges)))]
            if u in (x, y):
                continue
            g.remove_edge(u, u)
            g.remove_edge(x, y)
            g.add_edge(u, x)
            g.add_edge(u, y)
            break
        else:
            return None
    return None


def _repair_connected_multigraph(graph: nx.MultiGraph, rng: np.random.Generator):
    """Join multigraph components by 2-swaps (self-loop-free).  None on failure."""
    g = nx.MultiGraph(graph)
    for _ in range(10_000):
        comps = list(nx.connected_components(g))
        if len(comps) == 1:
            return g
        comps.sort(key=len, reverse=True)
        big, small = comps[0], comps[1]
        big_edges = [
            (u, v) for u, v, _ in g.edges(big, keys=True) if u in big and v in big
        ]
        small_edges = [
            (u, v) for u, v, _ in g.edges(small, keys=True) if u in small and v in small
        ]
        if not big_edges or not small_edges:
            return None
        u, v = big_edges[int(rng.integers(len(big_edges)))]
        x, y = small_edges[int(rng.integers(len(small_edges)))]
        g.remove_edge(u, v)
        g.remove_edge(x, y)
        g.add_edge(u, x)
        g.add_edge(v, y)
    return None


def _repair_simple(multigraph: nx.MultiGraph, rng: np.random.Generator):
    """Remove self-loops and parallel edges by degree-preserving 2-swaps.

    A bad edge (u, v) and a random edge (x, y) are replaced by (u, x) and
    (v, y) when that introduces no new conflict.  Returns None on failure.
    """
    g = nx.MultiGraph(multigraph)
    for _ in range(20_000):
        bad = None
        for u, v in nx.selfloop_edges(g):
            bad = (u, v)
            break
        if bad is None:
            seen = set()
            for u, v in g.edges():
                key = (min(u, v), max(u, v))
                if key in seen:
                    bad = (u, v)
                    break
                seen.add(key)
        if bad is None:
            return nx.Graph(g)
        u, v = bad
        edges = list(g.edges())
        for _ in range(200):
            x, y = edges[int(rng.integers(len(edges)))]
            if rng.random() < 0.5:
                x, y = y, x
            if len({u, v, x, y}) < (3 if u == v else 4):
                continue
            if g.has_edge(u, x) or g.has_edge(v, y):
                continue
            g.remove_edge(u, v)
            g.remove_edge(x, y)
            g.add_edge(u, x)
            g.add_edge(v, y)
            break
        else:
            return None
    return None


def _repair_connected(graph: nx.Graph, rng: np.random.Generator):
    """Join components by 2-swaps that keep the graph simple.  None on failure."""
    g = nx.Graph(graph)
    for _ in range(10_000):
        comps = list(nx.connected_components(g))
        if len(comps) == 1:
            return g
        # Swap an edge of the largest component with an edge of another.
        comps.sort(key=len, reverse=True)
        big, small = comps[0], comps[1]
        big_edges = [e for e in g.edges(big) if e[0] in big and e[1] in big]
        small_edges = [e for e in g.edges(small) if e[0] in small and e[1] in small]
        if not big_edges or not small_edges:
            return None  # a tree-like fragment: cannot swap without breaking degrees
        done = False
        for _ in range(200):
            u, v = big_edges[int(rng.integers(len(big_edges)))]
            x, y = small_edges[int(rng.integers(len(small_edges)))]
            if g.has_edge(u, x) or g.has_edge(v, y):
                continue
            g.remove_edge(u, v)
            g.remove_edge(x, y)
            g.add_edge(u, x)
            g.add_edge(v, y)
            done = True
            break
        if not done:
            return None
    return None


def jellyfish_from_equipment(topology: Topology, seed: SeedLike = None) -> Topology:
    """A Jellyfish built from the same *total* equipment, servers respread.

    Where :func:`same_equipment_random_graph` keeps every node's server count
    and degree (the Figs. 5-6 normalizer), this builder models the paper's
    "Jellyfish with the same equipment as X" comparisons (Figs. 12, 15,
    Comparison 3): the same switches with the same port counts, but servers
    spread evenly over all switches the way Jellyfish attaches them, with the
    remaining ports wired randomly.
    """
    rng = ensure_rng(seed)
    radix = topology.degree_sequence() + topology.servers  # ports per switch
    n = topology.n_switches
    total_servers = topology.n_servers
    base, extra = divmod(total_servers, n)
    servers = np.full(n, base, dtype=np.int64)
    servers[:extra] += 1
    # Give the i-th highest-radix node the i-th largest server count so no
    # node's network degree goes negative.
    order = np.argsort(-radix, kind="stable")
    assigned = np.zeros(n, dtype=np.int64)
    assigned[order] = np.sort(servers)[::-1]
    degrees = radix - assigned
    if np.any(degrees < 1):
        raise ValueError("equipment too small to respread servers")
    if degrees.sum() % 2 != 0:
        # Parity fix: move one server between two nodes with spare ports.
        donors = np.flatnonzero(assigned > 0)
        assigned[donors[0]] -= 1
        receivers = np.flatnonzero(degrees > 1)
        assigned[receivers[-1]] += 1
        degrees = radix - assigned
    g = _config_model_simple_connected(degrees, rng)
    topo = Topology(
        name=f"jellyfish_equip[{topology.name}]",
        graph=nx.convert_node_labels_to_integers(g),
        servers=assigned,
        family="jellyfish_equivalent",
        params={"source": topology.name},
    )
    topo.validate()
    return topo


def same_equipment_random_graph(topology: Topology, seed: SeedLike = None) -> Topology:
    """A Jellyfish-style random graph with ``topology``'s exact equipment.

    Node v keeps its server count and degree; only the wiring is randomized.
    """
    rng = ensure_rng(seed)
    degrees = topology.degree_sequence()
    if degrees.sum() % 2 != 0:  # pragma: no cover - impossible from a real graph
        raise ValueError("degree sequence sum must be even")
    g = _config_model_simple_connected(degrees, rng)
    rand = Topology(
        name=f"random[{topology.name}]",
        graph=nx.convert_node_labels_to_integers(g),
        servers=topology.servers.copy(),
        family="random_equivalent",
        params={"source": topology.name},
    )
    rand.validate()
    new_deg = rand.degree_sequence()
    if not np.array_equal(np.sort(new_deg), np.sort(degrees)):  # pragma: no cover
        raise RuntimeError("degree sequence was not preserved")
    if not np.array_equal(new_deg, degrees):
        # configuration_model keeps per-node degrees, so this means relabeling
        # broke alignment; equipment must match per node for server placement.
        raise RuntimeError("per-node degrees were not preserved")
    return rand
