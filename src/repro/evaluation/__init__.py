"""Evaluation framework: equipment matching, relative throughput, experiments."""

from repro.evaluation.equipment import same_equipment_random_graph
from repro.evaluation.relative import (
    RelativeThroughputResult,
    relative_path_length,
    relative_throughput,
)
from repro.evaluation.failures import FailureCurve, fail_links, failure_sweep
from repro.evaluation.placement import PlacementResult, optimize_placement
from repro.evaluation.runner import (
    SCALES,
    ExperimentResult,
    ScaleConfig,
    scale_from_env,
)

__all__ = [
    "FailureCurve",
    "fail_links",
    "failure_sweep",
    "PlacementResult",
    "optimize_placement",
    "same_equipment_random_graph",
    "RelativeThroughputResult",
    "relative_path_length",
    "relative_throughput",
    "SCALES",
    "ExperimentResult",
    "ScaleConfig",
    "scale_from_env",
]
