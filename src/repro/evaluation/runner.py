"""Experiment infrastructure: scale profiles and result records.

Every experiment accepts a :class:`ScaleConfig`.  ``REPRO_SCALE`` (env var:
``small`` | ``medium`` | ``large``) selects how far the parameter sweeps go:
``small`` keeps every LP at laptop-in-minutes size (the CI default),
``large`` approaches the paper's instance sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.utils.envknobs import knob_str
from repro.utils.tables import render_table


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs that bound experiment cost.

    Attributes
    ----------
    name:
        Profile name.
    max_servers:
        Cap on servers for scale-ladder sweeps (x axis of Figs. 5-9).
    max_switches:
        Safety cap on LP size; instances above it are skipped.
    samples:
        Random-graph samples per relative-throughput point (paper uses 10).
    shuffles:
        Shuffle samples for the Facebook experiments.
    """

    name: str
    max_servers: int
    max_switches: int
    samples: int
    shuffles: int


SCALES: Dict[str, ScaleConfig] = {
    "small": ScaleConfig("small", max_servers=80, max_switches=90, samples=2, shuffles=2),
    "medium": ScaleConfig(
        "medium", max_servers=300, max_switches=300, samples=3, shuffles=3
    ),
    "large": ScaleConfig(
        "large", max_servers=1100, max_switches=1100, samples=5, shuffles=5
    ),
}


def scale_from_env(default: str = "small") -> ScaleConfig:
    """The scale selected by the ``REPRO_SCALE`` environment variable."""
    name = knob_str("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; expected one of {sorted(SCALES)}"
        )
    return SCALES[name]


@dataclass
class ExperimentResult:
    """Uniform record for one paper table/figure reproduction.

    ``rows`` are the same rows the paper's artifact reports; ``notes`` holds
    the shape claims checked and any scale caveats; ``checks`` maps
    shape-claim names to booleans (benches assert on them).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: str = ""
    checks: Dict[str, bool] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """ASCII rendering: the textual analogue of the paper's artifact."""
        body = render_table(self.headers, self.rows, title=self.title)
        parts = [body]
        if self.checks:
            checkstr = ", ".join(
                f"{k}={'PASS' if v else 'FAIL'}" for k, v in self.checks.items()
            )
            parts.append(f"shape checks: {checkstr}")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
