"""Cut-metric experiments: Fig. 1, Fig. 3, Table II, and the butterfly-25 case.

These reproduce §II-B and §III-B: cuts upper-bound throughput but do not
predict it — including the concrete 25-switch flattened butterfly where the
sparsest cut is strictly above the worst-case throughput, and the Fig. 1
construction where the cut ordering of two graphs contradicts their
throughput ordering.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, iter_solve_instances, solve_values
from repro.cuts.bisection import bisection_bandwidth
from repro.cuts.heuristics import find_sparse_cut
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.expander import clustered_random_graph, subdivided_expander
from repro.topologies.flattened_butterfly import flattened_butterfly
from repro.topologies.natural import natural_network_suite
from repro.topologies.registry import DISPLAY_NAMES, FAMILY_ORDER, scale_ladder
from repro.traffic.synthetic import all_to_all
from repro.traffic.worstcase import longest_matching
from repro.utils.rng import stable_seed

#: Relative slack when calling a cut "equal to" throughput (LP tolerance +
#: heuristic luck); the paper uses exact equality on exact cuts.
MATCH_RTOL = 0.02


@experiment(
    "fig1",
    title="Sparsest cut can mis-rank networks (Theorem 1 construction)",
    artifact="Figure 1",
    tags=("figure", "theory", "cuts"),
    scale_sensitive=False,
    checks=(
        "cut_upper_bounds_throughput",
        "subdivision_widens_gap",
        "gap_B_exceeds_gap_A",
    ),
)
def fig1(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 1 / Theorem 1: sparsest cut can mis-rank networks.

    Graph A: clustered random graph (cut-limited: cut ~ throughput).
    Graph B: subdivided expander (volume-limited: cut >> throughput).
    Increasing the subdivision length p widens B's cut/throughput gap, and
    for suitable p the cut ordering contradicts the throughput ordering.
    """
    scale = scale or scale_from_env()
    del scale  # fixed small sizes: brute-force cuts must stay exact-ish
    rows: List[tuple] = []
    graphs = [("A(clustered)", clustered_random_graph(48, 3, 1, seed=stable_seed((seed, "A"))))]
    for p in (2, 3):
        graphs.append(
            (
                f"B(subdivided,p={p})",
                subdivided_expander(16, 6, p, seed=stable_seed((seed, "B", p))),
            )
        )
    gaps: Dict[str, float] = {}
    results: Dict[str, tuple] = {}
    for name, topo, tm, t in iter_solve_instances(graphs, all_to_all):
        cut = find_sparse_cut(topo, tm, seed=stable_seed((seed, name))).best.sparsity
        rows.append(emit_row((name, topo.n_switches, t, cut, cut / t)))
        gaps[name] = cut / t
        results[name] = (t, cut)
    checks = {
        "cut_upper_bounds_throughput": all(r[3] >= r[2] * (1 - 1e-6) for r in rows),
        "subdivision_widens_gap": gaps["B(subdivided,p=3)"]
        > gaps["B(subdivided,p=2)"] * 0.999,
        "gap_B_exceeds_gap_A": gaps["B(subdivided,p=3)"] > gaps["A(clustered)"],
    }
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1 / Theorem 1 — sparsest cut vs throughput on graphs A and B",
        headers=["graph", "switches", "throughput", "sparse_cut", "cut_over_throughput"],
        rows=rows,
        checks=checks,
        notes=(
            "The volumetric limit (long subdivided paths) makes B's cut a "
            "progressively worse proxy as p grows — choosing by cut would "
            "favor the wrong graph."
        ),
    )


def _cut_scatter_instances(scale: ScaleConfig, seed: int):
    """Small instances from every family + natural networks for Fig. 3 / Table II."""
    instances = []
    cap = min(scale.max_switches, 64)
    for family in FAMILY_ORDER:
        for topo in scale_ladder(family, scale.max_servers, seed=stable_seed((seed, family))):
            if topo.n_switches <= cap and topo.n_servers >= 4:
                instances.append((DISPLAY_NAMES[family], topo))
    n_nat = {"small": 12, "medium": 30, "large": 66}[scale.name]
    for topo in natural_network_suite(seed=stable_seed((seed, "nat")), count=n_nat):
        if topo.n_switches <= cap:
            instances.append(("Natural", topo))
    return instances


@experiment(
    "fig3",
    title="Throughput vs sparse cut (longest matching TM)",
    artifact="Figure 3",
    tags=("figure", "cuts"),
    checks=("cut_upper_bounds_throughput", "cut_differs_for_many"),
)
def fig3(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 3: throughput vs best-heuristic sparse cut under longest matching."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    instances = _cut_scatter_instances(scale, seed)
    for label, topo, tm, t in iter_solve_instances(instances, longest_matching):
        rep = find_sparse_cut(topo, tm, seed=stable_seed((seed, topo.name)))
        rows.append(emit_row((label, topo.name, t, rep.best.sparsity, rep.best.sparsity / t)))
    n_gap = sum(1 for r in rows if r[3] > r[2] * (1 + MATCH_RTOL))
    checks = {
        "cut_upper_bounds_throughput": all(r[3] >= r[2] * (1 - 1e-6) for r in rows),
        "cut_differs_for_many": n_gap >= max(3, len(rows) // 3),
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3 — throughput vs sparse cut (longest matching TM)",
        headers=["family", "instance", "throughput", "sparse_cut", "ratio"],
        rows=rows,
        checks=checks,
        notes=f"{n_gap}/{len(rows)} instances have cut strictly above throughput.",
    )


@experiment(
    "table2",
    title="Sparse-cut estimator census (longest matching TM)",
    artifact="Table II",
    tags=("table", "cuts"),
    checks=("eigenvector_finds_most", "cut_often_differs_from_throughput"),
)
def table2(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Table II: which estimator finds the sparsest cut; does it match throughput?"""
    scale = scale or scale_from_env()
    counts: Dict[str, Dict[str, int]] = {}
    instances = _cut_scatter_instances(scale, seed)
    for label, topo, tm, t in iter_solve_instances(instances, longest_matching):
        rep = find_sparse_cut(topo, tm, seed=stable_seed((seed, topo.name)))
        fam = counts.setdefault(
            label,
            {
                "total": 0,
                "matches": 0,
                "bruteforce": 0,
                "one_node": 0,
                "two_node": 0,
                "expanding": 0,
                "eigenvector": 0,
            },
        )
        fam["total"] += 1
        if rep.best.sparsity <= t * (1 + MATCH_RTOL):
            fam["matches"] += 1
        for winner in rep.winners:
            fam[winner] += 1
    rows = [
        emit_row(
            (
                label,
                c["total"],
                c["matches"],
                c["bruteforce"],
                c["one_node"],
                c["two_node"],
                c["expanding"],
                c["eigenvector"],
            )
        )
        for label, c in counts.items()
    ]
    totals = {k: sum(c[k] for c in counts.values()) for k in next(iter(counts.values()))}
    rows.append(
        emit_row(
            (
                "TOTAL",
                totals["total"],
                totals["matches"],
                totals["bruteforce"],
                totals["one_node"],
                totals["two_node"],
                totals["expanding"],
                totals["eigenvector"],
            )
        )
    )
    checks = {
        "eigenvector_finds_most": totals["eigenvector"]
        >= max(totals["one_node"], totals["two_node"], totals["expanding"]),
        # At brute-force-feasible sizes cuts often coincide with throughput
        # (the paper notes gaps grow with n); require only a nontrivial
        # fraction of strict gaps here.
        "cut_often_differs_from_throughput": totals["matches"]
        <= totals["total"] * 0.8,
    }
    return ExperimentResult(
        experiment_id="table2",
        title="Table II — sparse-cut estimator census (longest matching TM)",
        headers=[
            "family",
            "total",
            "cut==throughput",
            "bruteforce",
            "one_node",
            "two_node",
            "expanding",
            "eigenvector",
        ],
        rows=rows,
        checks=checks,
        notes="Paper totals (581 networks): 82 matches; eigenvector won 499.",
    )


@experiment(
    "butterfly25",
    title="25-switch flattened butterfly: cut != worst-case throughput",
    artifact="§III-B case study",
    tags=("cuts",),
    scale_sensitive=False,
    checks=("cut_strictly_above_throughput", "throughput_close_to_paper"),
)
def butterfly25(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """§III-B case study: the 5-ary 3-stage flattened butterfly.

    Paper: throughput 0.565 < sparsest cut 0.6 despite only 25 switches.
    """
    del scale
    topo = flattened_butterfly(5, 3)
    tm = longest_matching(topo)
    t = solve_values([SolveRequest(topo, tm, tag="butterfly25")])[0]
    rep = find_sparse_cut(topo, tm, seed=seed)
    bis = bisection_bandwidth(topo, tm, seed=seed)
    rows = [
        emit_row(r)
        for r in (
            ("throughput (LM)", t),
            ("best sparse cut", rep.best.sparsity),
            ("bisection bandwidth", bis.sparsity),
            ("paper throughput", 0.565),
            ("paper sparsest cut", 0.6),
        )
    ]
    checks = {
        "cut_strictly_above_throughput": rep.best.sparsity > t * (1 + 1e-6),
        "throughput_close_to_paper": abs(t - 0.565) <= 0.08,
    }
    return ExperimentResult(
        experiment_id="butterfly25",
        title="§III-B — 25-switch flattened butterfly: cut != worst-case throughput",
        headers=["quantity", "value"],
        rows=rows,
        checks=checks,
        notes=(
            "Our LM and sparsity conventions differ slightly from the paper's "
            "instance, but the qualitative separation is the reproduced claim."
        ),
    )
