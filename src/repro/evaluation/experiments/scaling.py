"""Scaling experiments: relative throughput vs size (Figs. 5-9, Table I).

The paper's headline finding lives here: as networks grow, proposals based
on expander graphs (Jellyfish, Long Hop, Slim Fly) keep relative throughput
near 1 while structured topologies degrade.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.api import emit_row, experiment
from repro.evaluation.experiments.factories import (
    UNIFORM_TM_FACTORIES,
    lm_factory,
)
from repro.evaluation.relative import (
    RelativeSpec,
    relative_path_length,
    relative_throughput_iter,
)
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.hyperx import hyperx_for_terminals
from repro.topologies.longhop import longhop
from repro.topologies.registry import (
    DISPLAY_NAMES,
    GROUP1,
    GROUP2,
    scale_ladder,
)
from repro.topologies.slimfly import slimfly, slimfly_valid_q
from repro.utils.rng import stable_seed


def _relative_over_ladder(
    families: Sequence[str],
    scale: ScaleConfig,
    seed: int,
    tm_names: Sequence[str] = ("A2A", "RM", "LM"),
) -> Iterator[tuple]:
    """Yield one figure row per ladder point as its solves complete."""
    specs: List[RelativeSpec] = []
    points: List[tuple] = []
    for family in families:
        ladder = scale_ladder(family, scale.max_servers, seed=stable_seed((seed, family)))
        for topo in ladder:
            if topo.n_switches > scale.max_switches or topo.n_servers < 4:
                continue
            for tm_name in tm_names:
                factory = UNIFORM_TM_FACTORIES[tm_name]
                specs.append(
                    (
                        topo,
                        factory,
                        scale.samples,
                        stable_seed((seed, family, topo.name, tm_name)),
                    )
                )
                points.append((family, topo, tm_name))
    for (family, topo, tm_name), res in zip(points, relative_throughput_iter(specs)):
        yield (DISPLAY_NAMES[family], topo.n_servers, tm_name, res.relative, res.absolute)


def _group_checks(rows: List[tuple]) -> Dict[str, bool]:
    """Shape checks shared by Figs. 5 and 6."""
    checks: Dict[str, bool] = {}
    # Jellyfish is its own benchmark: relative throughput ~ 1.
    jf = [r[3] for r in rows if r[0] == "Jellyfish"]
    if jf:
        checks["jellyfish_near_1"] = all(0.8 <= v <= 1.25 for v in jf)
    # Relative throughput should be bounded (no absurd values anywhere).
    checks["values_sane"] = all(0.05 < r[3] < 3.0 for r in rows)
    return checks


@experiment(
    "fig5",
    title="Relative throughput vs servers (structured families)",
    artifact="Figure 5",
    tags=("figure", "sweep"),
    checks=(
        "jellyfish_near_1",
        "values_sane",
        "fattree_absolute_lm_is_1",
        "hypercube_lm_degrades_with_scale",
        "flatbf_lm_below_random_at_largest",
    ),
)
def fig5(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 5: relative throughput vs #servers, structured families."""
    scale = scale or scale_from_env()
    rows = [emit_row(r) for r in _relative_over_ladder(GROUP1, scale, seed)]
    checks = _group_checks(rows)

    def lm_points(family: str):
        return sorted(
            (r[1], r[3]) for r in rows if r[0] == DISPLAY_NAMES[family] and r[2] == "LM"
        )

    # Nonblocking fat tree: absolute LM throughput is exactly 1 at any size.
    ft_abs = [r[4] for r in rows if r[0] == "Fat tree" and r[2] == "LM"]
    checks["fattree_absolute_lm_is_1"] = all(abs(v - 1.0) < 1e-4 for v in ft_abs)
    # Hypercube relative throughput degrades with scale under LM (the
    # clearest Fig. 5 trend; DCell legitimately *excels* at small scale,
    # which is the paper's own small-scale finding).
    hc = lm_points("hypercube")
    if len(hc) >= 2:
        checks["hypercube_lm_degrades_with_scale"] = hc[-1][1] < hc[0][1]
    # Flattened butterfly ends below the random graph under LM.
    fb = lm_points("flattened_butterfly")
    if fb:
        checks["flatbf_lm_below_random_at_largest"] = fb[-1][1] < 1.05
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 — relative throughput vs servers (BCube, DCell, Dragonfly, Fat tree, Flattened BF, Hypercube)",
        headers=["topology", "servers", "tm", "rel_throughput", "abs_throughput"],
        rows=rows,
        checks=checks,
        notes=(
            "Paper finding reproduced: at small scale DCell (and the "
            "nonblocking fat tree) beat the random graph; degradation with "
            "scale shows first on hypercube / flattened butterfly."
        ),
    )


@experiment(
    "fig6",
    title="Relative throughput vs servers (expander families)",
    artifact="Figure 6",
    tags=("figure", "sweep"),
    checks=(
        "jellyfish_near_1",
        "values_sane",
        "long_hop_near_random",
        "slim_fly_near_random",
    ),
)
def fig6(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 6: relative throughput vs #servers, expander-family group."""
    scale = scale or scale_from_env()
    rows = [emit_row(r) for r in _relative_over_ladder(GROUP2, scale, seed)]
    checks = _group_checks(rows)
    # Expander claim: Long Hop and Slim Fly stay near the random graph.
    for fam, lo in (("Long Hop", 0.7), ("Slim Fly", 0.7)):
        vals = [r[3] for r in rows if r[0] == fam]
        if vals:
            checks[f"{fam.replace(' ', '_').lower()}_near_random"] = all(
                v >= lo for v in vals
            )
    return ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6 — relative throughput vs servers (HyperX, Jellyfish, Long Hop, Slim Fly)",
        headers=["topology", "servers", "tm", "rel_throughput", "abs_throughput"],
        rows=rows,
        checks=checks,
    )


@experiment(
    "fig7",
    title="HyperX relative throughput (LM) by designed bisection",
    artifact="Figure 7",
    tags=("figure", "sweep"),
    checks=("bisection_no_guarantee", "values_sane"),
)
def fig7(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 7: HyperX under longest matching at bisection 0.2 / 0.4 / 0.5."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    # The sweep is sized by the *design's switch count*, not by terminals:
    # high-concentration HyperX packs hundreds of terminals onto few
    # switches, and lattices below 8 switches are degenerate (near-complete
    # graphs where relative throughput is trivially 1).
    terminal_targets = (24, 48, 96, 192, 384, 768)
    values_by_bisection: Dict[float, List[float]] = {}
    specs: List[RelativeSpec] = []
    points: List[tuple] = []
    for beta in (0.2, 0.4, 0.5):
        seen = set()
        for n_term in terminal_targets:
            topo = hyperx_for_terminals(radix=24, n_terminals=n_term, bisection=beta)
            if (
                topo is None
                or topo.n_switches > scale.max_switches
                or topo.n_switches < 8
            ):
                continue
            key = topo.name
            if key in seen:
                continue
            seen.add(key)
            specs.append(
                (topo, lm_factory, scale.samples, stable_seed((seed, "hyperx", beta, n_term)))
            )
            points.append((beta, topo))
    for (beta, topo), res in zip(points, relative_throughput_iter(specs)):
        rows.append(
            emit_row(
                (
                    beta,
                    topo.name,
                    topo.n_servers,
                    topo.params["relative_bisection"],
                    res.relative,
                )
            )
        )
        values_by_bisection.setdefault(beta, []).append(res.relative)
    # High bisection does not guarantee high performance: some design meeting
    # a >= 0.4 bisection target still falls well short of the random graph.
    high_beta_vals = values_by_bisection.get(0.4, []) + values_by_bisection.get(0.5, [])
    checks = {
        "bisection_no_guarantee": any(v < 0.9 for v in high_beta_vals)
        if high_beta_vals
        else False,
        "values_sane": all(0.05 < r[4] < 3.0 for r in rows),
    }
    return ExperimentResult(
        experiment_id="fig7",
        title="Fig. 7 — HyperX relative throughput (LM) by designed bisection",
        headers=["bisection", "design", "servers", "achieved_bisection", "rel_throughput"],
        rows=rows,
        checks=checks,
    )


@experiment(
    "fig8",
    title="Long Hop relative throughput under longest matching",
    artifact="Figure 8",
    tags=("figure", "sweep"),
    checks=("tracks_random_graph", "never_beats_random_by_much"),
)
def fig8(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 8: Long Hop relative throughput (LM) approaches 1 with servers.

    The paper plots each Long Hop dimension as a curve over *total servers*
    (the x axis grows by attaching more servers per switch); relative LM
    throughput climbs toward 1 along each curve because aggregating more
    per-switch matchings smooths the TM.  We sweep servers-per-switch for
    the dimensions that fit the scale budget.
    """
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    last_per_dim: Dict[int, List[float]] = {}
    dims = [d for d in (4, 5, 6, 7) if 2**d <= scale.max_switches]

    def spread_lm_factory(topology, tm_seed):
        from repro.traffic.worstcase import longest_matching

        return longest_matching(topology, seed=tm_seed, spread_ties=True)

    specs: List[RelativeSpec] = []
    points: List[tuple] = []
    for dim in dims:
        for servers_per_node in (1, 4, 10):
            topo = longhop(dim, servers_per_node=servers_per_node)
            if topo.n_servers > scale.max_servers * 4:
                break
            specs.append(
                (
                    topo,
                    spread_lm_factory,
                    scale.samples,
                    stable_seed((seed, "lh", dim, servers_per_node)),
                )
            )
            points.append((dim, servers_per_node, topo))
    for (dim, servers_per_node, topo), res in zip(points, relative_throughput_iter(specs)):
        rows.append(
            emit_row(
                (dim, servers_per_node, topo.n_servers, topo.params["degree"], res.relative)
            )
        )
        last_per_dim.setdefault(dim, []).append(res.relative)
    all_vals = [r[4] for r in rows]
    checks = {
        # Paper's two Fig. 8 claims that are scale-independent: Long Hop
        # performs well (near the random graph) but no better than it.  The
        # asymptotic "approaches 1" needs paper-scale sizes (1000+ servers).
        "tracks_random_graph": all(v >= 0.7 for v in all_vals)
        and float(np.mean(all_vals)) >= 0.85,
        "never_beats_random_by_much": all(v <= 1.15 for v in all_vals),
    }
    del last_per_dim
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8 — Long Hop relative throughput under longest matching",
        headers=["dimension", "servers_per_switch", "servers", "degree", "rel_throughput"],
        rows=rows,
        checks=checks,
        notes="Paper: Long Hop performs well but no better than random graphs.",
    )


@experiment(
    "fig9",
    title="Slim Fly relative throughput and relative path length (LM)",
    artifact="Figure 9",
    tags=("figure", "sweep"),
    checks=("paths_shorter_than_random", "short_paths_dont_buy_throughput"),
)
def fig9(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 9: Slim Fly — short paths do not translate to higher throughput."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    specs: List[RelativeSpec] = []
    kept: List[tuple] = []
    for q in slimfly_valid_q(37):
        topo = slimfly(q)
        if topo.n_switches > scale.max_switches:
            break
        specs.append((topo, lm_factory, scale.samples, stable_seed((seed, "sf", q))))
        kept.append((q, topo))
    for (q, topo), res in zip(kept, relative_throughput_iter(specs)):
        rel_p = relative_path_length(
            topo, samples=scale.samples, seed=stable_seed((seed, "sfp", q))
        )
        rows.append(emit_row((q, topo.n_servers, res.relative, rel_p)))
    checks = {
        "paths_shorter_than_random": all(r[3] < 0.97 for r in rows),
        "short_paths_dont_buy_throughput": all(r[2] <= 1.15 for r in rows),
    }
    return ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9 — Slim Fly relative throughput and relative path length (LM)",
        headers=["q", "servers", "rel_throughput", "rel_path_length"],
        rows=rows,
        notes="Paper: path length ~0.85-0.9 of random graph; LM throughput <= random.",
        checks=checks,
    )


@experiment(
    "table1",
    title="Relative throughput (%) at the largest size tested",
    artifact="Table I",
    tags=("table", "sweep"),
    checks=("lm_hurts_structured_families", "fattree_lm_at_least_a2a"),
)
def table1(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Table I: relative throughput at the largest size tested, per TM."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    checks: Dict[str, bool] = {}
    lm_worse_than_a2a = True
    fattree_lm_better = False
    specs: List[RelativeSpec] = []
    points: List[tuple] = []
    for family in GROUP1:
        ladder = [
            t
            for t in scale_ladder(family, scale.max_servers, seed=stable_seed((seed, family)))
            if t.n_switches <= scale.max_switches and t.n_servers >= 4
        ]
        if not ladder:
            continue
        topo = ladder[-1]
        for tm_name in ("A2A", "RM", "LM"):
            specs.append(
                (
                    topo,
                    UNIFORM_TM_FACTORIES[tm_name],
                    scale.samples,
                    stable_seed((seed, family, tm_name, "t1")),
                )
            )
        points.append((family, topo))
    results = relative_throughput_iter(specs)
    for family, topo in points:
        vals = {tm_name: next(results).relative for tm_name in ("A2A", "RM", "LM")}
        rows.append(
            emit_row(
                (
                    DISPLAY_NAMES[family],
                    topo.n_servers,
                    100 * vals["A2A"],
                    100 * vals["RM"],
                    100 * vals["LM"],
                )
            )
        )
        if family == "fattree":
            fattree_lm_better = vals["LM"] >= vals["A2A"] - 0.02
        elif vals["LM"] > vals["A2A"] * 1.1:
            lm_worse_than_a2a = False
    checks["lm_hurts_structured_families"] = lm_worse_than_a2a
    checks["fattree_lm_at_least_a2a"] = fattree_lm_better
    return ExperimentResult(
        experiment_id="table1",
        title="Table I — relative throughput (%) at the largest size tested",
        headers=["family", "servers", "A2A_%", "RM_%", "LM_%"],
        rows=rows,
        notes=(
            "Paper (at ~10x larger sizes): BCube 73/90/51, DCell 93/97/79, "
            "Dragonfly 95/76/72, Fat tree 65/73/89, FlatBF 59/71/47, "
            "Hypercube 72/84/51."
        ),
        checks=checks,
    )
