"""TM-hardness ladder experiments: Fig. 2, Fig. 4, and the Theorem-2 check.

These reproduce the paper's central methodological claims:

* the hardness ordering A2A >= RM(10) >= RM(2) >= RM(1) >= LM >= T_A2A/2;
* longest matching reaches the lower bound on hypercubes (and nearly on the
  other structured families), is within 1.5x on random graphs, and equals
  A2A on fat trees;
* Theorem 2: every hose TM's throughput is at least half of A2A's.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, get_solver, values_by_tag
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.base import Topology
from repro.topologies.fattree import fat_tree
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.topologies.registry import DISPLAY_NAMES, FAMILY_ORDER, representative
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.synthetic import all_to_all, random_matching
from repro.traffic.worstcase import kodialam_tm, longest_matching
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs, stable_seed

#: Ordering tolerance: RM is random, so adjacent rungs may invert by a hair.
LADDER_TOL = 0.08


def _rm_requests(
    topology: Topology, k: int, samples: int, seed: SeedLike
) -> List[SolveRequest]:
    """The ``samples`` RM(k) solve requests, drawn in historical seed order."""
    return [
        SolveRequest(
            topology,
            random_matching(topology, n_matchings=k, seed=r),
            tag=f"RM({k})",
        )
        for r in spawn_rngs(seed, samples)
    ]


def _tm_ladder_point(
    topology: Topology, samples: int, seed: SeedLike
) -> Dict[str, float]:
    """All Fig. 2 TM throughputs for one topology instance (one batch)."""
    requests = [SolveRequest(topology, all_to_all(topology), tag="A2A")]
    for k in (10, 2, 1):
        requests.extend(_rm_requests(topology, k, samples, (seed, k)))
    requests.append(SolveRequest(topology, kodialam_tm(topology), tag="Kodialam"))
    requests.append(SolveRequest(topology, longest_matching(topology), tag="LM"))
    by_tag = values_by_tag(get_solver().solve_many(requests))
    a2a = by_tag["A2A"][0]
    return {
        "A2A": a2a,
        # .get degrades samples=0 configs to NaN like the serial code did.
        "RM(10)": float(np.mean(by_tag.get("RM(10)", []))),
        "RM(2)": float(np.mean(by_tag.get("RM(2)", []))),
        "RM(1)": float(np.mean(by_tag.get("RM(1)", []))),
        "Kodialam": by_tag["Kodialam"][0],
        "LM": by_tag["LM"][0],
        "LB": a2a / 2.0,
    }


def _spawn_int(seed) -> int:
    """Stable derived integer seed from a (seed, tag) tuple."""
    return stable_seed(seed) % (2**31 - 1)


@experiment(
    "fig2",
    title="Throughput of the TM hardness ladder",
    artifact="Figure 2",
    tags=("figure", "sweep"),
    checks=(
        "hardness_ladder",
        "lm_above_lower_bound",
        "hypercube_lm_hits_bound",
        "fattree_lm_equals_a2a",
        "rrg_lm_within_1.5x_bound",
    ),
)
def fig2(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 2: TM ladder on hypercubes, random regular graphs, fat trees."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    checks: Dict[str, bool] = {}
    rng = ensure_rng(seed)

    panels: List[tuple[str, Topology]] = []
    for dim in range(3, 12):
        if 2**dim > scale.max_switches:
            break
        panels.append(("hypercube", hypercube(dim)))
        panels.append(("random_graph", jellyfish(2**dim, dim, seed=rng)))
    for k in range(4, 21, 2):
        if 5 * k * k // 4 > scale.max_switches:
            break
        panels.append(("fat_tree", fat_tree(k)))

    ladder_ok = True
    lm_above_lb = True
    hypercube_tight = True
    fattree_flat = True
    rrg_within_1p5 = True
    for panel, topo in panels:
        vals = _tm_ladder_point(topo, scale.samples, (seed, topo.name))
        degree = topo.params.get("dim") or topo.params.get("degree") or topo.params.get("k")
        for tm_name, v in vals.items():
            rows.append(emit_row((panel, degree, topo.n_servers, tm_name, v)))
        order = [vals["A2A"], vals["RM(10)"], vals["RM(2)"], vals["RM(1)"], vals["LM"]]
        for hi, lo in zip(order, order[1:]):
            if lo > hi * (1 + LADDER_TOL):
                ladder_ok = False
        if vals["LM"] < vals["LB"] * (1 - 1e-6):
            lm_above_lb = False
        if panel == "hypercube" and vals["LM"] > vals["LB"] * 1.02:
            hypercube_tight = False
        if panel == "fat_tree" and abs(vals["LM"] - vals["A2A"]) > 0.2 * vals["A2A"]:
            fattree_flat = False
        if panel == "random_graph" and vals["LM"] > vals["LB"] * 1.5:
            rrg_within_1p5 = False
    checks["hardness_ladder"] = ladder_ok
    checks["lm_above_lower_bound"] = lm_above_lb
    checks["hypercube_lm_hits_bound"] = hypercube_tight
    checks["fattree_lm_equals_a2a"] = fattree_flat
    checks["rrg_lm_within_1.5x_bound"] = rrg_within_1p5
    return ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2 — throughput of TM ladder (absolute, hose-tight units)",
        headers=["panel", "degree", "servers", "tm", "throughput"],
        rows=rows,
        checks=checks,
        notes=(
            "Directed-arc capacity convention: A2A = 2x lower bound by "
            "construction (Fig. 4 normalization); orderings and tightness "
            "ratios are the reproduced shapes."
        ),
    )


@experiment(
    "fig4",
    title="Throughput normalized by the Theorem-2 lower bound",
    artifact="Figure 4",
    tags=("figure",),
    checks=("hardness_ladder", "all_in_[1,2]_band"),
)
def fig4(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 4: throughput under A2A / RM(5) / RM(1) / LM, normalized by the
    Theorem-2 lower bound, for the 10 topology families."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    ladder_ok = True
    bound_ok = True
    for family in FAMILY_ORDER:
        topo = representative(family, seed=_spawn_int((seed, family)))
        if topo.n_switches > scale.max_switches:
            continue
        requests = [SolveRequest(topo, all_to_all(topo), tag="A2A")]
        requests.extend(_rm_requests(topo, 5, scale.samples, (seed, family, 5)))
        requests.extend(_rm_requests(topo, 1, scale.samples, (seed, family, 1)))
        requests.append(SolveRequest(topo, longest_matching(topo), tag="LM"))
        by_tag = values_by_tag(get_solver().solve_many(requests))
        a2a = by_tag["A2A"][0]
        lb = a2a / 2.0
        vals = {
            "A2A": a2a,
            "RM(5)": float(np.mean(by_tag.get("RM(5)", []))),
            "RM(1)": float(np.mean(by_tag.get("RM(1)", []))),
            "LM": by_tag["LM"][0],
        }
        normalized = {k: v / lb for k, v in vals.items()}
        rows.append(
            emit_row(
                (
                    DISPLAY_NAMES[family],
                    normalized["A2A"],
                    normalized["RM(5)"],
                    normalized["RM(1)"],
                    normalized["LM"],
                )
            )
        )
        seqs = [normalized["A2A"], normalized["RM(5)"], normalized["RM(1)"], normalized["LM"]]
        for hi, lo in zip(seqs, seqs[1:]):
            if lo > hi * (1 + LADDER_TOL):
                ladder_ok = False
        if normalized["LM"] < 1.0 - 1e-6 or normalized["A2A"] > 2.0 + 1e-6:
            bound_ok = False
    return ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4 — throughput normalized by lower bound (A2A = 2 by construction)",
        headers=["topology", "A2A", "RM(5)", "RM(1)", "LM"],
        rows=rows,
        checks={
            "hardness_ladder": ladder_ok,
            "all_in_[1,2]_band": bound_ok,
        },
        notes="Every TM sits in [1, 2]: above the Theorem-2 bound, below A2A.",
    )


@experiment(
    "theorem2",
    title="Every hose TM achieves at least half of A2A throughput",
    artifact="Theorem 2",
    tags=("theory",),
    scale_sensitive=False,
    checks=("theorem2_holds",),
)
def theorem2_check(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Empirical Theorem 2: min over TMs of T(TM) / (T_A2A / 2) >= 1."""
    scale = scale or scale_from_env()
    del scale  # sizes fixed: the claim is per-graph, small graphs suffice
    rng = ensure_rng(seed)
    rows: List[tuple] = []
    ok = True
    for trial in range(6):
        n = int(rng.integers(8, 20))
        d = int(rng.integers(3, min(6, n - 1)))
        if (n * d) % 2:
            n += 1
        topo = jellyfish(n, d, seed=rng)
        # TM construction consumes ``rng`` in the historical order; only the
        # (order-independent) solves are batched.
        requests = [SolveRequest(topo, all_to_all(topo), tag="A2A")]
        for tm_name, tm in [
            ("RM", random_matching(topo, seed=rng)),
            ("LM", longest_matching(topo)),
            ("KODIALAM", kodialam_tm(topo)),
            ("RANDOM_HOSE", _random_hose_tm(topo, rng)),
        ]:
            requests.append(SolveRequest(topo, tm, tag=tm_name))
        outcomes = get_solver().solve_many(requests)
        a2a = outcomes[0].require().value
        lb = a2a / 2.0
        worst_ratio = np.inf
        for o in outcomes[1:]:
            ratio = o.require().value / lb
            worst_ratio = min(worst_ratio, ratio)
            if ratio < 1.0 - 1e-6:
                ok = False
        rows.append(emit_row((trial, topo.name, a2a, lb, worst_ratio)))
    return ExperimentResult(
        experiment_id="theorem2",
        title="Theorem 2 — every hose TM achieves >= T_A2A / 2",
        headers=["trial", "topology", "T_A2A", "lower_bound", "min_ratio_to_bound"],
        rows=rows,
        checks={"theorem2_holds": ok},
    )


def _random_hose_tm(topo: Topology, rng: np.random.Generator) -> TrafficMatrix:
    """A random dense hose-feasible TM (adversarially unstructured)."""
    n = topo.n_switches
    raw = rng.random((n, n))
    np.fill_diagonal(raw, 0.0)
    tm = TrafficMatrix(demand=raw, kind="random_hose")
    return tm.normalized_hose(topo.servers)
