# repro-lint: allow[R006] — shared TM-factory helpers, not an experiment module
"""Shared TM factories for the experiment modules.

A factory has the signature ``(topology, seed) -> TrafficMatrix`` so that
relative-throughput comparisons can regenerate the matrix for each
same-equipment random graph (adaptive TMs like longest matching must be
recomputed per graph; see :mod:`repro.evaluation.relative`).
"""

from __future__ import annotations

from typing import Callable

from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.nonuniform import elephant_matching
from repro.traffic.synthetic import all_to_all, random_matching
from repro.traffic.worstcase import longest_matching
from repro.utils.rng import SeedLike

TMFactory = Callable[[Topology, SeedLike], TrafficMatrix]


def a2a_factory(topology: Topology, seed: SeedLike = None) -> TrafficMatrix:
    """All-to-all."""
    del seed
    return all_to_all(topology)


def rm_factory(n_matchings: int) -> TMFactory:
    """Random matching RM(k) factory."""

    def build(topology: Topology, seed: SeedLike = None) -> TrafficMatrix:
        return random_matching(topology, n_matchings=n_matchings, seed=seed)

    return build


def lm_factory(topology: Topology, seed: SeedLike = None) -> TrafficMatrix:
    """Longest matching (deterministic per topology)."""
    return longest_matching(topology, seed)


def elephant_factory(percent_large: float) -> TMFactory:
    """Longest matching with x% weight-10 elephants."""

    def build(topology: Topology, seed: SeedLike = None) -> TrafficMatrix:
        return elephant_matching(topology, percent_large, seed=seed)

    return build


#: The three uniform-weight TM families of Figs. 5-6.
UNIFORM_TM_FACTORIES = {
    "A2A": a2a_factory,
    "RM": rm_factory(1),
    "LM": lm_factory,
}
