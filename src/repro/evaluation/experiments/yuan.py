"""Fig. 15 — replication of the Yuan et al. fat-tree-vs-Jellyfish comparison.

Three comparisons isolate two methodological problems in [48]:

1. **Comparison 1** (their method): LLSKR-style subflow routing with the
   counting estimator, on unequal equipment (Jellyfish gets ~25% more
   servers).  Result: near parity.
2. **Comparison 2**: exact LP throughput restricted to the *same* paths,
   same unequal equipment.  Jellyfish pulls ahead.
3. **Comparison 3**: exact LP, equal equipment (the Jellyfish instance is a
   same-equipment random graph of the fat tree).  The gap widens further.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, solve_values
from repro.evaluation.equipment import jellyfish_from_equipment
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.throughput.llskr import (
    counting_estimator,
    llskr_path_sets,
)
from repro.topologies.base import Topology
from repro.topologies.fattree import fat_tree
from repro.topologies.jellyfish import jellyfish
from repro.traffic.synthetic import all_to_all
from repro.utils.rng import stable_seed


def _yuan_jellyfish(ft: Topology, seed: int) -> Topology:
    """The unequal-equipment Jellyfish of [48]: same switch count and switch
    radix as the fat tree, but exactly ~1.25x the servers (160 vs 128 at
    k=8), spread as evenly as the count allows."""
    import networkx as nx

    from repro.evaluation.equipment import _config_model_simple_connected
    from repro.topologies.base import Topology as T
    from repro.utils.rng import ensure_rng

    k = ft.params["k"]
    n_sw = ft.n_switches
    n_servers = int(round(ft.n_servers * 1.25))
    base, extra = divmod(n_servers, n_sw)
    servers = np.full(n_sw, base, dtype=np.int64)
    servers[:extra] += 1
    degrees = k - servers
    if np.any(degrees < 2):
        raise ValueError(f"fat tree k={k} too small for the Yuan construction")
    if degrees.sum() % 2 != 0:
        # Move one server to keep the degree sum even.
        donor = int(np.argmax(servers))
        receiver = int(np.argmin(servers))
        servers[donor] -= 1
        servers[receiver] += 1
        degrees = k - servers
    rng = ensure_rng(seed)
    g = _config_model_simple_connected(degrees, rng)
    topo = T(
        name=f"yuan_jellyfish(k={k})",
        graph=nx.convert_node_labels_to_integers(g),
        servers=servers,
        family="jellyfish",
        params={"k": k, "n_servers": n_servers},
    )
    topo.validate()
    return topo


@experiment(
    "fig15",
    title="Yuan et al. replication: estimator and equipment effects",
    artifact="Figure 15",
    tags=("figure",),
    checks=(
        "counting_estimator_hides_jellyfish_advantage",
        "exact_lp_improves_jellyfish",
        "equal_equipment_widens_gap",
    ),
)
def fig15(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 15 — the three comparisons."""
    scale = scale or scale_from_env()
    k = 4 if scale.max_switches < 45 else 6
    ft = fat_tree(k)
    jf_unequal = _yuan_jellyfish(ft, seed=stable_seed((seed, "jf")))
    # "Equalizing all equipment": a Jellyfish proper with the fat tree's
    # switches and server count, servers respread evenly (paper §V).
    jf_equal = jellyfish_from_equipment(ft, seed=stable_seed((seed, "jfe")))

    subflows, pool = 4, 6
    values: Dict[str, Dict[str, float]] = {"fat_tree": {}, "jellyfish": {}}

    # Comparison 1: counting estimator (their method), unequal equipment.
    # The estimator is closed-form (no LP), so it stays inline.
    for name, topo in (("fat_tree", ft), ("jellyfish", jf_unequal)):
        tm = all_to_all(topo)
        sets = llskr_path_sets(topo, tm, subflows=subflows, path_pool=pool)
        est = counting_estimator(topo, tm, sets)
        values[name]["comparison1"] = est.mean_flow_throughput
    # Comparisons 2 and 3: exact LP restricted to the same LLSKR-style
    # paths, batched through the "paths" engine — the path sets are a
    # deterministic function of (instance, subflows, path_pool), so the
    # engine reconstructs them identically and results cache soundly.
    # (The fat tree appears in both comparisons with the same instance;
    # its duplicate key makes the second solve a cache hit.)
    comparisons = [
        ("fat_tree", "comparison2", ft),
        ("jellyfish", "comparison2", jf_unequal),
        ("fat_tree", "comparison3", ft),
        ("jellyfish", "comparison3", jf_equal),
    ]
    lp_values = solve_values(
        [
            SolveRequest(
                topo,
                all_to_all(topo),
                engine="paths",
                params={"subflows": subflows, "path_pool": pool},
                tag=f"{name}/{comp}",
            )
            for name, comp, topo in comparisons
        ]
    )
    for (name, comp, _topo), value in zip(comparisons, lp_values):
        values[name][comp] = value

    rows: List[tuple] = []
    ratios = {}
    for comp in ("comparison1", "comparison2", "comparison3"):
        ftv = values["fat_tree"][comp]
        jfv = values["jellyfish"][comp]
        ratios[comp] = jfv / ftv
        rows.append(emit_row((comp, ftv, jfv, jfv / ftv)))
    checks = {
        # The methodological claim: under the counting estimator with
        # unequal equipment, Jellyfish shows no advantage (paper: "similar
        # throughput"; at this scale our path rules land at or below parity).
        "counting_estimator_hides_jellyfish_advantage": ratios["comparison1"]
        <= 1.1,
        "exact_lp_improves_jellyfish": ratios["comparison2"]
        > ratios["comparison1"] * 1.02,
        "equal_equipment_widens_gap": ratios["comparison3"]
        > ratios["comparison2"] * 1.02,
    }
    return ExperimentResult(
        experiment_id="fig15",
        title="Fig. 15 — Yuan et al. replication: estimator and equipment effects",
        headers=["comparison", "fat_tree", "jellyfish", "jellyfish/fat_tree"],
        rows=rows,
        checks=checks,
        notes=(
            "Paper (k=8, 80 switches): comparison 1 parity; comparison 2 "
            "Jellyfish +30%; comparison 3 +65%."
        ),
    )
