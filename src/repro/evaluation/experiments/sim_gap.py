"""sim-gap: achieved (simulated) throughput vs the LP optimum vs the MWU bound.

The LP answers "what could an omniscient router achieve"; the ``sim``
engine answers "what do max-min fair flows on fixed ECMP routes actually
capture".  This experiment measures the gap across the topology families
with the TM hardness ladder on the x-axis, sandwiching each instance:

    sim  <=  lp  <=  mwu / (1 - eps)^3

Both inequalities are structural — the simulator's allocation is a
feasible flow, and the MWU value divided by its guarantee factor is a
certified upper bound — so the checks hold to solver accuracy on every
instance, not just in aggregate.  The interesting column is ``capture``
(sim / lp): how much of the LP headroom fair fixed-route transport keeps,
per family and per TM hardness rung.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, get_solver, values_by_tag
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.base import Topology
from repro.topologies.fattree import fat_tree
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.traffic.synthetic import all_to_all, random_matching
from repro.traffic.worstcase import longest_matching
from repro.utils.numeric import safe_ratio
from repro.utils.rng import ensure_rng

#: MWU accuracy for the upper-bound column; coarse is fine (the bound is
#: divided by (1 - eps)^3, so eps only widens the sandwich).
SIM_GAP_EPSILON = 0.25

#: Feasibility slack: sim may exceed lp only by accumulated float noise.
SIM_LP_SLACK = 1e-9


@experiment(
    "sim-gap",
    title="Simulated achieved throughput vs LP optimum vs MWU bound",
    artifact="sim-vs-LP gap table",
    tags=("table", "sweep", "sim"),
    checks=("sim_below_lp", "lp_within_mwu_upper", "sim_positive"),
)
def sim_gap(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Sandwich sim <= lp <= mwu-upper across families x TM ladder."""
    scale = scale or scale_from_env()
    rng = ensure_rng(seed)
    rows: List[tuple] = []
    sim_below = True
    lp_below_upper = True
    sim_positive = True

    panels: List[tuple[str, Topology]] = []
    for dim in range(3, 12):
        if 2**dim > scale.max_switches:
            break
        panels.append(("hypercube", hypercube(dim)))
        panels.append(("random_graph", jellyfish(2**dim, dim, seed=rng)))
    for k in range(4, 21, 2):
        if 5 * k * k // 4 > scale.max_switches:
            break
        panels.append(("fat_tree", fat_tree(k)))

    upper_factor = (1.0 - SIM_GAP_EPSILON) ** 3
    for panel, topo in panels:
        ladder = [
            ("A2A", all_to_all(topo)),
            ("RM(1)", random_matching(topo, n_matchings=1, seed=(seed, topo.name))),
            ("LM", longest_matching(topo)),
        ]
        requests = []
        for tm_name, tm in ladder:
            requests.append(SolveRequest(topo, tm, engine="sim", tag=f"sim:{tm_name}"))
            requests.append(SolveRequest(topo, tm, engine="lp", tag=f"lp:{tm_name}"))
            requests.append(
                SolveRequest(
                    topo,
                    tm,
                    engine="mwu",
                    params={"epsilon": SIM_GAP_EPSILON},
                    tag=f"mwu:{tm_name}",
                )
            )
        by_tag: Dict[str, list] = values_by_tag(get_solver().solve_many(requests))
        for tm_name, _ in ladder:
            sim_v = by_tag[f"sim:{tm_name}"][0]
            lp_v = by_tag[f"lp:{tm_name}"][0]
            mwu_upper = by_tag[f"mwu:{tm_name}"][0] / upper_factor
            capture = safe_ratio(sim_v, lp_v)
            rows.append(
                emit_row(
                    (panel, topo.name, tm_name, sim_v, lp_v, mwu_upper, capture)
                )
            )
            if sim_v > lp_v * (1.0 + SIM_LP_SLACK):
                sim_below = False
            if lp_v > mwu_upper * (1.0 + SIM_LP_SLACK):
                lp_below_upper = False
            if not sim_v > 0.0:
                sim_positive = False
    return ExperimentResult(
        experiment_id="sim-gap",
        title="sim-gap — achieved (max-min, ECMP) vs optimal (LP) throughput",
        headers=["panel", "topology", "tm", "sim", "lp", "mwu_upper", "capture"],
        rows=rows,
        checks={
            "sim_below_lp": sim_below,
            "lp_within_mwu_upper": lp_below_upper,
            "sim_positive": sim_positive,
        },
        notes=(
            "capture = sim/lp: the fraction of LP headroom max-min fair "
            "flows on fixed ECMP routes retain.  sim <= lp is structural "
            "(the allocation is a feasible flow); mwu_upper = mwu/(1-eps)^3 "
            "is the certified upper bound."
        ),
    )
