"""Solver and TM ablations (DESIGN.md `ablation-lp`).

Design choices the paper's methodology section motivates, now measurable
in one registry-driven artifact:

* **HiGHS simplex vs IPM vs MWU** — every single-method backend in the
  LP backend registry (:data:`repro.throughput.LP_BACKENDS`) solves the
  same longest-matching instances, alongside the MWU engine's O(arcs)
  approximation.  The exact backends must agree to solver accuracy; the
  MWU estimate must land within its ε guarantee at a fraction of the
  memory.  Adding a backend to the registry adds a row here — the sweep
  enumerates the registry, it does not name solvers.
* **Longest matching vs Kodialam TM** — the paper chose longest matching
  because it produces far fewer flows, shrinking the throughput LP (they
  report ~6x faster, 8x larger networks on the same memory).  We measure
  flows, LP variables, and solve time for both.

Every solve is an ordinary :class:`~repro.batch.SolveRequest` through the
ambient batch solver, so the ablation parallelizes over ``--workers`` and
memoizes per (instance, engine, backend) like every other artifact.
ROADMAP: run at ``--scale medium`` for the reportable comparison.
"""

from __future__ import annotations

from typing import List

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, get_solver
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.throughput.backends import LP_BACKENDS
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.traffic.worstcase import kodialam_tm, longest_matching
from repro.utils.rng import stable_seed

#: Relative agreement demanded of the exact backends (HiGHS default
#: tolerances are ~1e-9; 1e-6 leaves headroom for IPM crossover noise).
BACKEND_RTOL = 1e-6


def _single_method_backends():
    """The registry's concrete (single-method) backends, name-sorted.

    ``auto`` is excluded: it is a fallback chain over these, not a third
    solver — including it would double-count whichever method it picks.
    """
    return [
        backend
        for _, backend in sorted(LP_BACKENDS.items())
        if len(backend.methods) == 1
    ]


@experiment(
    "ablation-lp",
    title="LP backends, MWU, and near-worst-case TM cost",
    artifact="Ablation (DESIGN.md)",
    tags=("ablation",),
    checks=(
        "lp_backends_agree",
        "mwu_within_tolerance_below_lp",
        "lm_never_more_flows_than_kodialam",
    ),
)
def ablation_solvers(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Registry-driven LP backend sweep, MWU accuracy, and LM vs Kodialam size."""
    scale = scale or scale_from_env()
    solver = get_solver()
    rows: List[tuple] = []
    topos = [hypercube(4), jellyfish(24, 5, seed=stable_seed((seed, "j1")))]
    if scale.max_switches >= 64:
        topos.append(jellyfish(48, 6, seed=stable_seed((seed, "j2"))))
    backends = _single_method_backends()
    backends_ok = True
    mwu_ok = True
    lm_smaller = True
    for topo in topos:
        lm = longest_matching(topo)
        kd = kodialam_tm(topo)
        requests = [
            SolveRequest(
                topo,
                lm,
                engine="lp",
                params={"lp_backend": backend.name},
                tag=backend.name,
            )
            for backend in backends
        ]
        requests.append(SolveRequest(topo, kd, engine="lp", tag="kodialam"))
        requests.append(
            SolveRequest(topo, lm, engine="mwu", params={"epsilon": 0.05}, tag="mwu")
        )
        outcomes = solver.solve_many(requests)
        by_tag = {o.tag: o.require() for o in outcomes}
        for backend in backends:
            res = by_tag[backend.name]
            rows.append(
                emit_row(
                    (
                        topo.name,
                        f"LM ({backend.name})",
                        lm.n_flows,
                        res.n_variables,
                        res.value,
                        res.solve_seconds,
                    )
                )
            )
        lp_kd = by_tag["kodialam"]
        rows.append(
            emit_row(
                (
                    topo.name,
                    "Kodialam",
                    kd.n_flows,
                    lp_kd.n_variables,
                    lp_kd.value,
                    lp_kd.solve_seconds,
                )
            )
        )
        mwu = by_tag["mwu"]
        rows.append(
            emit_row(
                (topo.name, "LM (MWU)", lm.n_flows, mwu.n_variables, mwu.value, mwu.solve_seconds)
            )
        )
        values = [by_tag[backend.name].value for backend in backends]
        ref = values[0]
        if any(abs(v - ref) > BACKEND_RTOL * max(abs(ref), 1.0) for v in values):
            backends_ok = False
        if not (0.8 * ref <= mwu.value <= ref * (1 + 1e-6)):
            mwu_ok = False
        if lm.n_flows > kd.n_flows:
            lm_smaller = False
    checks = {
        "lp_backends_agree": backends_ok,
        "mwu_within_tolerance_below_lp": mwu_ok,
        "lm_never_more_flows_than_kodialam": lm_smaller,
    }
    return ExperimentResult(
        experiment_id="ablation-lp",
        title="Ablation — LP backends, MWU, and near-worst-case TM cost",
        headers=["topology", "variant", "flows", "lp_variables", "throughput", "seconds"],
        rows=rows,
        checks=checks,
        notes=(
            "Backends enumerate the LP backend registry (simplex vs interior "
            "point on identical instances); the MWU row is the O(arcs) "
            "engine.  Paper: longest matching's fewer flows let it scale to "
            "1024 nodes where the Kodialam TM stopped at 128 (32 GB, Gurobi)."
        ),
    )
