"""Solver and TM ablations (DESIGN.md `ablation-lp`).

Two design choices the paper's methodology section motivates:

* **Exact LP vs MWU approximation** — the MWU engine's feasible estimate
  should land within its ε guarantee at a fraction of the LP's memory.
* **Longest matching vs Kodialam TM** — the paper chose longest matching
  because it produces far fewer flows, shrinking the throughput LP (they
  report ~6x faster, 8x larger networks on the same memory).  We measure
  flows, LP variables, and solve time for both.
"""

from __future__ import annotations

from typing import List

from repro.api import emit_row, experiment
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.throughput.lp import solve_throughput_lp
from repro.throughput.approx import solve_throughput_mwu
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.traffic.worstcase import kodialam_tm, longest_matching
from repro.utils.rng import stable_seed


@experiment(
    "ablation-lp",
    title="Solver engines and near-worst-case TM cost",
    artifact="Ablation (DESIGN.md)",
    tags=("ablation",),
    checks=("mwu_within_tolerance_below_lp", "lm_never_more_flows_than_kodialam"),
)
def ablation_solvers(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """LP vs MWU accuracy/cost, and LM vs Kodialam LP size."""
    scale = scale or scale_from_env()
    rows: List[tuple] = []
    topos = [hypercube(4), jellyfish(24, 5, seed=stable_seed((seed, "j1")))]
    if scale.max_switches >= 64:
        topos.append(jellyfish(48, 6, seed=stable_seed((seed, "j2"))))
    mwu_ok = True
    lm_smaller = True
    for topo in topos:
        lm = longest_matching(topo)
        kd = kodialam_tm(topo)
        lp_lm = solve_throughput_lp(topo, lm)
        lp_kd = solve_throughput_lp(topo, kd)
        mwu = solve_throughput_mwu(topo, lm, epsilon=0.05)
        rows.append(
            emit_row(
                (
                    topo.name,
                    "LM",
                    lm.n_flows,
                    lp_lm.n_variables,
                    lp_lm.value,
                    lp_lm.solve_seconds,
                )
            )
        )
        rows.append(
            emit_row(
                (
                    topo.name,
                    "Kodialam",
                    kd.n_flows,
                    lp_kd.n_variables,
                    lp_kd.value,
                    lp_kd.solve_seconds,
                )
            )
        )
        rows.append(
            emit_row(
                (topo.name, "LM (MWU)", lm.n_flows, mwu.n_variables, mwu.value, mwu.solve_seconds)
            )
        )
        if not (0.8 * lp_lm.value <= mwu.value <= lp_lm.value * (1 + 1e-6)):
            mwu_ok = False
        if lm.n_flows > kd.n_flows:
            lm_smaller = False
    checks = {
        "mwu_within_tolerance_below_lp": mwu_ok,
        "lm_never_more_flows_than_kodialam": lm_smaller,
    }
    return ExperimentResult(
        experiment_id="ablation-lp",
        title="Ablation — solver engines and near-worst-case TM cost",
        headers=["topology", "variant", "flows", "lp_variables", "throughput", "seconds"],
        rows=rows,
        checks=checks,
        notes=(
            "Paper: longest matching's fewer flows let it scale to 1024 nodes "
            "where the Kodialam TM stopped at 128 (32 GB, Gurobi)."
        ),
    )
