"""Facebook-workload experiments: Figs. 13-14.

TM-H (Hadoop, near-uniform): rack shuffling changes nothing.
TM-F (frontend, skewed): shuffling spreads hot cache racks and helps every
topology except the fat tree and the expanders, which are already
placement-insensitive.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.api import emit_row, experiment
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.registry import DISPLAY_NAMES, FAMILY_ORDER, representative
from repro.traffic.facebook import (
    attach_rack_tm,
    tm_facebook_frontend,
    tm_facebook_hadoop,
)
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import stable_seed

#: Families the paper found placement-insensitive under TM-F.
INSENSITIVE = {"fattree", "jellyfish", "longhop", "slimfly"}


def _facebook_experiment(
    exp_id: str,
    title: str,
    rack_tm: TrafficMatrix,
    scale: ScaleConfig,
    seed: int,
) -> tuple[List[tuple], Dict[str, Dict[str, float]]]:
    """Sampled vs shuffled placement per family, normalized by one shared
    random-graph baseline.

    Using a *single* divisor per family (mean random-graph throughput under
    sampled placement) keeps the sampled-vs-shuffled comparison exact: both
    numerators are exact LP values, so the placement effect is noise-free.
    """
    from repro.batch import SolveRequest, get_solver, values_by_tag
    from repro.evaluation.equipment import same_equipment_random_graph

    rows: List[tuple] = []
    values: Dict[str, Dict[str, float]] = {}
    for family in FAMILY_ORDER:
        topo = representative(family, seed=stable_seed((seed, exp_id, family)))
        if topo.n_switches > scale.max_switches:
            continue
        requests = [
            SolveRequest(
                topo, attach_rack_tm(rack_tm, topo, shuffle=False), tag="sampled"
            )
        ]
        for i in range(scale.shuffles):
            requests.append(
                SolveRequest(
                    topo,
                    attach_rack_tm(
                        rack_tm,
                        topo,
                        shuffle=True,
                        seed=stable_seed((seed, exp_id, family, "sh", i)),
                    ),
                    tag="shuffled",
                )
            )
        for i in range(scale.samples):
            rand = same_equipment_random_graph(
                topo, seed=stable_seed((seed, exp_id, family, "rand", i))
            )
            requests.append(
                SolveRequest(
                    rand, attach_rack_tm(rack_tm, rand, shuffle=False), tag="baseline"
                )
            )
        by_tag = values_by_tag(get_solver().solve_many(requests))
        sampled_abs = by_tag["sampled"][0]
        # .get degrades shuffles=0 / samples=0 configs to NaN rather than
        # aborting the whole experiment (matches the old serial behavior).
        shuffled_abs = float(np.mean(by_tag.get("shuffled", [])))
        baseline = float(np.mean(by_tag.get("baseline", [])))
        n_locs = int(topo.server_nodes.size)
        rows.append(
            emit_row(
                (
                    DISPLAY_NAMES[family],
                    n_locs,
                    sampled_abs / baseline,
                    shuffled_abs / baseline,
                    shuffled_abs / sampled_abs,
                )
            )
        )
        values[family] = {
            "sampled": sampled_abs / baseline,
            "shuffled": shuffled_abs / baseline,
            "gain": shuffled_abs / sampled_abs,
        }
    return rows, values


@experiment(
    "fig13",
    title="Facebook Hadoop TM-H: sampled vs shuffled placement",
    artifact="Figure 13",
    tags=("figure", "sweep", "realworld"),
    checks=("shuffling_is_noop_under_uniform_tm",),
)
def fig13(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 13: the near-uniform Hadoop TM — shuffling is a no-op."""
    scale = scale or scale_from_env()
    rack_tm = tm_facebook_hadoop(seed=stable_seed((seed, "tmh")))
    rows, values = _facebook_experiment("fig13", "TM-H", rack_tm, scale, seed)
    gains = [v["gain"] for v in values.values()]
    noop = all(abs(g - 1.0) <= 0.15 for g in gains) and abs(
        float(np.mean(gains)) - 1.0
    ) <= 0.05
    return ExperimentResult(
        experiment_id="fig13",
        title="Fig. 13 — Facebook Hadoop TM-H: sampled vs shuffled placement",
        headers=[
            "topology",
            "rack_locations",
            "sampled_rel",
            "shuffled_rel",
            "shuffle_gain",
        ],
        rows=rows,
        checks={"shuffling_is_noop_under_uniform_tm": noop},
    )


@experiment(
    "fig14",
    title="Facebook frontend TM-F: sampled vs shuffled placement",
    artifact="Figure 14",
    tags=("figure", "sweep", "realworld"),
    checks=(
        "shuffling_helps_some_structured_topology",
        "expanders_and_fattree_less_sensitive",
    ),
)
def fig14(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 14: the skewed frontend TM-F — shuffling helps non-expanders."""
    scale = scale or scale_from_env()
    rack_tm, _roles = tm_facebook_frontend(seed=stable_seed((seed, "tmf")))
    rows, values = _facebook_experiment("fig14", "TM-F", rack_tm, scale, seed)
    sensitive_gain = [values[f]["gain"] for f in values if f not in INSENSITIVE]
    insensitive_gain = [values[f]["gain"] for f in values if f in INSENSITIVE]
    checks = {
        "shuffling_helps_some_structured_topology": any(
            g > 1.1 for g in sensitive_gain
        ),
        "expanders_and_fattree_less_sensitive": (
            float(np.mean(insensitive_gain)) < float(np.mean(sensitive_gain)) + 0.05
            if sensitive_gain and insensitive_gain
            else False
        ),
    }
    return ExperimentResult(
        experiment_id="fig14",
        title="Fig. 14 — Facebook frontend TM-F: sampled vs shuffled placement",
        headers=[
            "topology",
            "rack_locations",
            "sampled_rel",
            "shuffled_rel",
            "shuffle_gain",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Paper: randomizing placement helps all networks except Jellyfish, "
            "Long Hop, Slim Fly and fat trees under the skewed TM."
        ),
    )
