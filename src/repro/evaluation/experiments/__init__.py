"""Registry of all paper-artifact experiments.

Each entry regenerates one table or figure of the paper at the current
``REPRO_SCALE``; the CLI (``python -m repro <id>``) and the benchmark suite
both dispatch through :data:`EXPERIMENTS`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from repro.batch import BaseResultCache, BatchSolver, make_cache, use_solver
from repro.evaluation.runner import ExperimentResult, ScaleConfig
from repro.evaluation.experiments.tm_ladder import fig2, fig4, theorem2_check
from repro.evaluation.experiments.cuts_exp import butterfly25, fig1, fig3, table2
from repro.evaluation.experiments.scaling import fig5, fig6, fig7, fig8, fig9, table1
from repro.evaluation.experiments.nonuniform_exp import fig10, fig11, fig12
from repro.evaluation.experiments.realworld import fig13, fig14
from repro.evaluation.experiments.yuan import fig15
from repro.evaluation.experiments.ablation import ablation_solvers
from repro.evaluation.experiments.cut_accuracy import cut_accuracy
from repro.evaluation.experiments.routing_gap import routing_gap

ExperimentFn = Callable[..., ExperimentResult]

EXPERIMENTS: Dict[str, ExperimentFn] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "table1": table1,
    "table2": table2,
    "butterfly25": butterfly25,
    "theorem2": theorem2_check,
    "ablation-lp": ablation_solvers,
    "cut-accuracy": cut_accuracy,
    "routing-gap": routing_gap,
}


def run_experiment(
    experiment_id: str,
    scale: ScaleConfig | None = None,
    seed: int = 0,
    workers: Union[int, str] = 1,
    cache: Optional[BaseResultCache] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS` for the list).

    Parameters
    ----------
    workers:
        Worker processes for batched throughput solves: ``1`` (inline,
        the deterministic default), an int > 1, or ``"auto"``.
    cache, cache_dir:
        Persistent result memoization: pass a :class:`BaseResultCache`
        backend, or a directory to build one in (backend selected by
        ``REPRO_CACHE_BACKEND``: ``jsonl`` default, or ``sqlite``).
        ``None`` for both disables caching.  Batch statistics (requests,
        solves, cache hits, errors) land in ``result.extras["batch"]``.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    if cache is None and cache_dir is not None:
        cache = make_cache(cache_dir)
    with BatchSolver(workers=workers, cache=cache) as solver:
        with use_solver(solver):
            result = EXPERIMENTS[experiment_id](scale=scale, seed=seed)
        result.extras["batch"] = solver.stats()
    return result


__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentResult"]
