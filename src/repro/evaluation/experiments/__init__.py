"""Registry of all paper-artifact experiments.

Each experiment module registers its functions with the
``@repro.api.experiment`` decorator; importing this package populates the
declarative :data:`repro.api.REGISTRY`, which the CLI
(``python -m repro <id>``), the :class:`repro.api.Session` runner, and the
benchmark suite all dispatch through.

:data:`EXPERIMENTS` and :func:`run_experiment` are backward-compatible
shims over the registry and a single-experiment Session — historical call
sites keep working, bit-identically.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.api.spec import REGISTRY
from repro.evaluation.runner import ExperimentResult
from repro.evaluation.experiments.tm_ladder import fig2, fig4, theorem2_check
from repro.evaluation.experiments.cuts_exp import butterfly25, fig1, fig3, table2
from repro.evaluation.experiments.scaling import fig5, fig6, fig7, fig8, fig9, table1
from repro.evaluation.experiments.nonuniform_exp import fig10, fig11, fig12
from repro.evaluation.experiments.realworld import fig13, fig14
from repro.evaluation.experiments.yuan import fig15
from repro.evaluation.experiments.ablation import ablation_solvers
from repro.evaluation.experiments.cut_accuracy import cut_accuracy
from repro.evaluation.experiments.routing_gap import routing_gap
from repro.evaluation.experiments.sim_gap import sim_gap
from repro.evaluation.experiments.whatif_exp import whatif_failures

# Imported after the experiment modules so Session's lazy ensure_registered()
# finds a fully populated registry the moment this package is importable.
from repro.api.session import run_experiment

ExperimentFn = Callable[..., ExperimentResult]

#: Legacy ``{id: fn}`` view of the registry (see :data:`repro.api.REGISTRY`
#: for the full :class:`~repro.api.ExperimentSpec` metadata).
EXPERIMENTS: Dict[str, ExperimentFn] = REGISTRY.as_dict()


__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentResult"]
