"""Non-uniform TM experiments: Figs. 10-12 — the fat-tree elephant anomaly.

A longest-matching TM with x% weight-10 elephants degrades every topology
gracefully except the fat tree, whose top-of-rack links carry only their own
servers' traffic and therefore bottleneck on a single hot rack.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, iter_outcome_values
from repro.evaluation.equipment import jellyfish_from_equipment
from repro.evaluation.experiments.factories import elephant_factory
from repro.evaluation.relative import RelativeSpec, relative_throughput_iter
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.fattree import fat_tree
from repro.topologies.hypercube import hypercube
from repro.topologies.registry import DISPLAY_NAMES, GROUP1, GROUP2, representative
from repro.traffic.nonuniform import elephant_matching
from repro.utils.rng import stable_seed

#: Elephant percentages swept (paper: 1..100 on a log axis).
PERCENTS: Sequence[float] = (1.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def _sweep_group(
    families: Sequence[str], scale: ScaleConfig, seed: int
) -> Iterator[tuple]:
    """Yield one figure row per (family, percent) point as solves complete."""
    specs: List[RelativeSpec] = []
    points: List[tuple] = []
    for family in families:
        topo = representative(family, seed=stable_seed((seed, family)))
        if topo.n_switches > scale.max_switches:
            continue
        for pct in PERCENTS:
            specs.append(
                (
                    topo,
                    elephant_factory(pct),
                    scale.samples,
                    stable_seed((seed, family, pct)),
                )
            )
            points.append((family, pct))
    for (family, pct), res in zip(points, relative_throughput_iter(specs)):
        yield (DISPLAY_NAMES[family], pct, res.relative, res.absolute)


def _graceful_checks(rows: List[tuple], families: Sequence[str]) -> Dict[str, bool]:
    checks: Dict[str, bool] = {}
    for family in families:
        name = DISPLAY_NAMES[family]
        vals = [r[2] for r in rows if r[0] == name]
        if not vals:
            continue
        dip = min(vals) / max(vals)
        if family == "fattree":
            checks["fattree_dips_sharply"] = dip < 0.8
        else:
            checks.setdefault("others_degrade_gracefully", True)
            if dip < 0.45:
                checks["others_degrade_gracefully"] = False
    return checks


@experiment(
    "fig10",
    title="Relative throughput vs % of weight-10 flows (structured families)",
    artifact="Figure 10",
    tags=("figure", "sweep"),
    checks=("fattree_dips_sharply", "others_degrade_gracefully"),
)
def fig10(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 10: tunable elephant TM on the structured families."""
    scale = scale or scale_from_env()
    rows = [emit_row(r) for r in _sweep_group(GROUP1, scale, seed)]
    checks = _graceful_checks(rows, GROUP1)
    return ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10 — relative throughput vs % of weight-10 flows (group 1)",
        headers=["topology", "percent_large", "rel_throughput", "abs_throughput"],
        rows=rows,
        checks=checks,
        notes="Fat tree is the anomaly: a few elephants overload its ToR links.",
    )


@experiment(
    "fig11",
    title="Relative throughput vs % of weight-10 flows (expander families)",
    artifact="Figure 11",
    tags=("figure", "sweep"),
    checks=("others_degrade_gracefully",),
)
def fig11(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 11: tunable elephant TM on the expander families."""
    scale = scale or scale_from_env()
    rows = [emit_row(r) for r in _sweep_group(GROUP2, scale, seed)]
    checks = _graceful_checks(rows, GROUP2)
    return ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11 — relative throughput vs % of weight-10 flows (group 2)",
        headers=["topology", "percent_large", "rel_throughput", "abs_throughput"],
        rows=rows,
        checks=checks,
    )


@experiment(
    "fig12",
    title="Absolute throughput under elephant TMs (matched equipment)",
    artifact="Figure 12",
    tags=("figure", "sweep"),
    checks=("fattree_least_robust", "jellyfish_beats_fattree_at_small_pct"),
)
def fig12(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Fig. 12: absolute throughput — fat tree vs hypercube vs matched Jellyfish.

    The Jellyfish points use *exactly* the equipment of the hypercube and of
    the fat tree (same per-node degrees and server placement).
    """
    scale = scale or scale_from_env()
    hc_dim = 5 if scale.max_switches < 100 else 6
    ft_k = 6 if scale.max_switches >= 45 else 4
    topos = {
        "Hypercube": hypercube(hc_dim),
        "Fat tree": fat_tree(ft_k),
    }
    # Jellyfish proper from the same total equipment: servers respread
    # evenly, remaining ports wired randomly (the paper's Fig. 12 networks).
    topos["Jellyfish (hypercube equip.)"] = jellyfish_from_equipment(
        topos["Hypercube"], seed=stable_seed((seed, "jh"))
    )
    topos["Jellyfish (fat tree equip.)"] = jellyfish_from_equipment(
        topos["Fat tree"], seed=stable_seed((seed, "jf"))
    )
    rows: List[tuple] = []
    series: Dict[str, List[float]] = {}
    requests = [
        SolveRequest(
            topo,
            elephant_matching(topo, pct, seed=stable_seed((seed, name, pct))),
            tag=name,
        )
        for name, topo in topos.items()
        for pct in PERCENTS
    ]
    values = iter_outcome_values(requests)
    for name, topo in topos.items():
        for pct in PERCENTS:
            t = next(values)
            rows.append(emit_row((name, pct, t)))
            series.setdefault(name, []).append(t)
    dip = {name: min(v) / max(v) for name, v in series.items()}
    checks = {
        "fattree_least_robust": dip["Fat tree"]
        < min(dip[n] for n in topos if n != "Fat tree"),
        "jellyfish_beats_fattree_at_small_pct": series["Jellyfish (fat tree equip.)"][0]
        > series["Fat tree"][0],
    }
    return ExperimentResult(
        experiment_id="fig12",
        title="Fig. 12 — absolute throughput under elephant TMs (matched equipment)",
        headers=["network", "percent_large", "abs_throughput"],
        rows=rows,
        checks=checks,
    )
