"""What-if failure experiment (robustness extension; cf. arXiv:1309.7066).

Throughput-vs-failure CDFs across topology families via the incremental
what-if engine (:mod:`repro.whatif`): one parent solve per topology, every
failure/degradation scenario a warm-started capacity overlay through the
ambient batch solver.  The degradation scenarios are exact homogeneous
scalings, so they are answered by the parent-dual bound alone — the
experiment's notes record how many solves the bound skipped, which the CI
smoke job asserts is nonzero.
"""

from __future__ import annotations

from typing import List

from repro.api import emit_row, experiment
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.fattree import fat_tree
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.topologies.xpander import xpander
from repro.traffic.synthetic import all_to_all
from repro.utils.rng import stable_seed
from repro.whatif import (
    maintenance_windows,
    random_failures,
    targeted_cut_failures,
    uniform_degradation,
    whatif_sweep,
)


@experiment(
    "whatif-failures",
    title="What-if failures: throughput CDFs under random/targeted/maintenance scenarios",
    artifact="robustness extension (arXiv:1309.7066 motivation)",
    tags=("table", "robustness", "whatif"),
    checks=(
        "degradation_answered_by_bound",
        "relative_throughput_in_unit_interval",
        "targeted_cut_at_most_random_median",
    ),
)
def whatif_failures(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Failure-robustness CDFs across topology families via ``repro.whatif``."""
    scale = scale or scale_from_env()
    small = scale.max_switches < 100
    topos = [
        hypercube(4),
        fat_tree(4),
        jellyfish(24, 5, seed=stable_seed((seed, "jf"))),
        xpander(4, 6, seed=stable_seed((seed, "xp"))),
    ]
    samples = max(2, scale.samples)
    n_fail = 2 if small else 4
    rows: List[tuple] = []
    n_skipped = 0
    n_scenarios = 0
    bounds_ok = True
    cut_hurts = True
    for topo in topos:
        tm = all_to_all(topo)
        scenarios = (
            uniform_degradation(topo, factors=(0.9, 0.75, 0.5))
            + random_failures(
                topo, n_fail=n_fail, samples=samples, seed=stable_seed((seed, topo.name))
            )
            + targeted_cut_failures(topo, tm=tm, max_fail=n_fail, seed=seed)
            + maintenance_windows(topo, n_windows=4, drain=0.5)
        )
        report = whatif_sweep(topo, tm, scenarios, topology_name=topo.name)
        n_skipped += report.n_skipped_by_bound
        n_scenarios += len(report.outcomes)
        degradation_skips = sum(
            1
            for o in report.outcomes
            if o.kind == "degradation" and o.skipped_by_bound
        )
        if degradation_skips == 0:
            bounds_ok = False
        # CDF rows: per kind, the sorted relative-throughput quantiles.
        for kind in ("degradation", "random-failure", "targeted-cut", "maintenance"):
            rel = report.relative_values(kind)
            if not rel:
                continue
            if any(r < -1e-9 or r > 1 + 1e-6 for r in rel):
                cut_hurts = cut_hurts and True  # bound check handled below
            rows.append(
                emit_row(
                    (
                        topo.name,
                        kind,
                        len(rel),
                        report.parent_value,
                        rel[0],
                        rel[len(rel) // 2],
                        rel[-1],
                    )
                )
            )
        random_rel = report.relative_values("random-failure")
        cut_rel = report.relative_values("targeted-cut")
        if random_rel and cut_rel:
            # Failing the sparsest cut's links is at least as damaging as
            # the median random draw of the same budget.
            if cut_rel[0] > random_rel[len(random_rel) // 2] + 1e-6:
                cut_hurts = False
    all_rel = [
        r for row in rows for r in row[4:] if isinstance(r, float)
    ]
    in_unit = all(-1e-9 <= r <= 1 + 1e-6 for r in all_rel)
    checks = {
        "degradation_answered_by_bound": bounds_ok,
        "relative_throughput_in_unit_interval": in_unit,
        "targeted_cut_at_most_random_median": cut_hurts,
    }
    return ExperimentResult(
        experiment_id="whatif-failures",
        title="What-if failures — relative-throughput CDFs per scenario family",
        headers=[
            "topology",
            "scenario_kind",
            "n",
            "parent_throughput",
            "rel_min",
            "rel_median",
            "rel_max",
        ],
        rows=rows,
        checks=checks,
        notes=(
            f"Incremental what-if engine: {n_scenarios} scenarios, "
            f"bound-skipped {n_skipped} scenario(s) via parent capacity "
            "duals; remaining overlays solved warm-started through the "
            "batch layer (fixed TM per topology, so duals transfer)."
        ),
    )
