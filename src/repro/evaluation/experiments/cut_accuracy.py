"""§III-B quantitative claims: how accurately do cuts predict throughput?

The paper evaluates bisection bandwidth and sparsest cut on 115 brute-force-
feasible networks and reports: bisection predicted throughput in 5 of 8
families, sparsest cut in 7; average errors 7.6% (bisection) and 6.2%
(sparsest cut) where they differ.  This experiment reproduces the error
statistics on brute-force-feasible instances (<= 18 switches, exact cuts).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.api import emit_row, experiment
from repro.batch import iter_solve_instances
from repro.cuts.bisection import bisection_bandwidth_bruteforce
from repro.cuts.sparsest import sparsest_cut_bruteforce
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.topologies.jellyfish import jellyfish
from repro.topologies.registry import DISPLAY_NAMES, FAMILY_ORDER, scale_ladder
from repro.traffic.worstcase import longest_matching
from repro.utils.rng import stable_seed

#: Exact-cut feasibility cap (2^(n-1) cuts enumerated).
MAX_EXACT_NODES = 18

#: Relative tolerance for "cut equals throughput".
EQ_RTOL = 0.01


@experiment(
    "cut-accuracy",
    title="Exact cut metrics vs worst-case throughput",
    artifact="§III-B statistics",
    tags=("table", "cuts"),
    checks=(
        "cuts_upper_bound_throughput",
        "sparsest_at_least_as_accurate_as_bisection",
        "bisection_error_at_least_sparsest",
    ),
)
def cut_accuracy(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Exact bisection & sparsest cut vs throughput under longest matching."""
    scale = scale or scale_from_env()
    instances = []
    for family in FAMILY_ORDER:
        for topo in scale_ladder(family, scale.max_servers, seed=stable_seed((seed, family))):
            if topo.n_switches <= MAX_EXACT_NODES:
                instances.append((DISPLAY_NAMES[family], topo))
    n_extra = {"small": 8, "medium": 20, "large": 100}[scale.name]
    for i in range(n_extra):
        instances.append(
            ("Jellyfish", jellyfish(14, 4, seed=stable_seed((seed, "jf", i))))
        )

    rows: List[tuple] = []
    bis_errors: List[float] = []
    sc_errors: List[float] = []
    bis_matches = 0
    sc_matches = 0
    for label, topo, tm, t in iter_solve_instances(instances, longest_matching):
        bis = bisection_bandwidth_bruteforce(topo, tm).sparsity
        sc = sparsest_cut_bruteforce(topo, tm).sparsity
        bis_err = (bis - t) / t
        sc_err = (sc - t) / t
        rows.append(emit_row((label, topo.name, t, sc, bis, 100 * sc_err, 100 * bis_err)))
        if bis_err <= EQ_RTOL:
            bis_matches += 1
        else:
            bis_errors.append(bis_err)
        if sc_err <= EQ_RTOL:
            sc_matches += 1
        else:
            sc_errors.append(sc_err)
    n = len(rows)
    mean_bis = 100 * float(np.mean(bis_errors)) if bis_errors else 0.0
    mean_sc = 100 * float(np.mean(sc_errors)) if sc_errors else 0.0
    rows.append(
        emit_row(
            (
                "SUMMARY",
                f"{n} networks",
                float("nan"),
                float(sc_matches),
                float(bis_matches),
                mean_sc,
                mean_bis,
            )
        )
    )
    checks = {
        "cuts_upper_bound_throughput": all(
            r[3] >= r[2] * (1 - 1e-6) and r[4] >= r[2] * (1 - 1e-6)
            for r in rows[:-1]
        ),
        "sparsest_at_least_as_accurate_as_bisection": sc_matches >= bis_matches,
        # Bisection is restricted to balanced cuts, so its error can only be
        # >= the sparsest cut's on every instance.
        "bisection_error_at_least_sparsest": all(
            r[6] >= r[5] - 1e-9 for r in rows[:-1]
        ),
    }
    return ExperimentResult(
        experiment_id="cut-accuracy",
        title="§III-B — exact cut metrics vs worst-case throughput "
        "(brute-force-feasible networks)",
        headers=[
            "family",
            "instance",
            "throughput",
            "sparsest_cut",
            "bisection",
            "sc_err_%",
            "bis_err_%",
        ],
        rows=rows,
        checks=checks,
        notes=(
            f"Paper (115 networks): bisection exact in 5/8 families, sparsest "
            f"cut in 7/8; mean errors 7.6% / 6.2%. Here: {bis_matches}/{n} "
            f"and {sc_matches}/{n} exact; mean errors {mean_bis:.1f}% / "
            f"{mean_sc:.1f}%."
        ),
    )
