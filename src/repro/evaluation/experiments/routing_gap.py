"""Routing-gap experiment (paper §V).

The paper measures topologies under *optimal multipath flow* and criticizes
single-path evaluations ([47]): "single-path routing can perform
significantly differently than multipath."  This experiment quantifies the
claim: throughput of the same (topology, TM) pairs under single shortest
path, ECMP, and the optimal-flow LP.
"""

from __future__ import annotations

from typing import List

from repro.api import emit_row, experiment
from repro.batch import SolveRequest, iter_outcome_values
from repro.evaluation.runner import ExperimentResult, ScaleConfig, scale_from_env
from repro.routing.schemes import routing_gap_report
from repro.topologies.fattree import fat_tree
from repro.topologies.hypercube import hypercube
from repro.topologies.jellyfish import jellyfish
from repro.topologies.xpander import xpander
from repro.traffic.synthetic import all_to_all
from repro.traffic.worstcase import longest_matching
from repro.utils.rng import stable_seed


@experiment(
    "routing-gap",
    title="Routing gap: single shortest path vs ECMP vs optimal flow",
    artifact="§V routing discussion",
    tags=("table", "routing"),
    checks=(
        "single_path_never_materially_beats_ecmp",
        "ecmp_bounded_by_optimal",
        "single_path_forfeits_throughput_somewhere",
    ),
)
def routing_gap(scale: ScaleConfig | None = None, seed: int = 0) -> ExperimentResult:
    """Single-path vs ECMP vs optimal flow across representative topologies."""
    scale = scale or scale_from_env()
    topos = [
        hypercube(4 if scale.max_switches < 64 else 5),
        fat_tree(4),
        jellyfish(24, 5, seed=stable_seed((seed, "jf"))),
        xpander(4, 6, seed=stable_seed((seed, "xp"))),
    ]
    rows: List[tuple] = []
    sp_never_above_ecmp_material = True
    ecmp_never_above_opt = True
    sp_big_gap_somewhere = False
    # The optimal-flow LPs dominate the cost; batch the whole sweep so it
    # fans out over --workers and memoizes.  ECMP / single-path loads are
    # cheap closed-form computations and stay inline.
    points = [
        (topo, tm_name, tm)
        for topo in topos
        for tm_name, tm in (
            ("A2A", all_to_all(topo)),
            ("LM", longest_matching(topo)),
        )
    ]
    optimal_values = iter_outcome_values(
        [SolveRequest(topo, tm, tag=f"{topo.name}/{tm_name}") for topo, tm_name, tm in points]
    )
    for (topo, tm_name, tm), optimal in zip(points, optimal_values):
        rep = routing_gap_report(topo, tm, optimal=optimal)
        rows.append(
            emit_row(
                (
                    topo.name,
                    tm_name,
                    rep.optimal,
                    rep.ecmp,
                    rep.single_path,
                    rep.ecmp_gap,
                    rep.single_path_gap,
                )
            )
        )
        if rep.single_path > rep.ecmp * 1.05:
            sp_never_above_ecmp_material = False
        if rep.ecmp > rep.optimal * (1 + 1e-6):
            ecmp_never_above_opt = False
        if rep.single_path_gap < 0.8:
            sp_big_gap_somewhere = True
    checks = {
        "single_path_never_materially_beats_ecmp": sp_never_above_ecmp_material,
        "ecmp_bounded_by_optimal": ecmp_never_above_opt,
        "single_path_forfeits_throughput_somewhere": sp_big_gap_somewhere,
    }
    return ExperimentResult(
        experiment_id="routing-gap",
        title="§V — routing gap: single shortest path vs ECMP vs optimal flow",
        headers=[
            "topology",
            "tm",
            "optimal",
            "ecmp",
            "single_path",
            "ecmp/opt",
            "sp/opt",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Paper §V: evaluating topologies under a routing scheme measures "
            "the scheme, not the topology; multipath (ECMP) is standard "
            "practice and the LP is its upper envelope."
        ),
    )
