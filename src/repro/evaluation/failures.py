"""Link-failure robustness analysis (extension beyond the paper).

The paper evaluates pristine topologies; practical benchmark suites also ask
how throughput degrades as random links fail — one of Jellyfish's original
selling points.  This module removes a fraction of cables uniformly at
random (keeping the graph connected) and re-measures throughput, yielding a
degradation curve per topology.

Two deliberate differences from the fixed-TM what-if engine
(:mod:`repro.whatif`): the TM here is *regenerated per surviving graph* (a
near-worst-case matrix adapts to the failed topology, matching how an
adversary would), which is exactly why these solves cannot share the
parent's dual hints; and failures are graph-level edge removals, not
capacity overlays, so each draw produces a genuinely different instance.
All solves still route through the ambient :class:`~repro.batch.BatchSolver`
— cached, pooled, engine/backend-aware — and every draw derives its own
child seed up front, so draw ``i`` at fraction ``f`` reproduces
bit-identically regardless of which other fractions the sweep contains.

Not a paper artifact; documented as an extension in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import networkx as nx
import numpy as np

from repro.batch import SolveRequest, solve_values
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.numeric import safe_ratio
from repro.utils.rng import SeedLike, ensure_rng, stable_seed


def fail_links(
    topology: Topology, fraction: float, seed: SeedLike = None, max_tries: int = 60
) -> Topology:
    """Copy of ``topology`` with ``fraction`` of its cables removed.

    Sampling retries until the surviving graph is connected (a topology with
    stranded servers has throughput 0 under any all-pairs TM, which says
    nothing interesting about capacity).  Raises ``ValueError`` when the
    requested fraction cannot leave the graph connected after ``max_tries``.

    Always returns a tagged copy — including at ``fraction=0.0``, where no
    edges are removed but the result still carries the ``failed_fraction``
    param and the ``/failed=...`` name suffix, so downstream labels and
    cache provenance are uniform across a sweep's fractions.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    rng = ensure_rng(seed)
    if topology.graph.is_multigraph():
        edges = list(topology.graph.edges(keys=True))
    else:
        edges = list(topology.graph.edges())
    n_fail = int(round(len(edges) * fraction))
    if n_fail >= len(edges):
        raise ValueError("cannot fail every link")

    def _tagged(g) -> Topology:
        failed = Topology(
            name=f"{topology.name}/failed={fraction:.0%}",
            graph=g,
            servers=topology.servers.copy(),
            family=topology.family,
            params={**topology.params, "failed_fraction": fraction},
        )
        failed.validate()
        return failed

    if n_fail == 0:
        return _tagged(topology.graph.copy())
    for _ in range(max_tries):
        pick = rng.choice(len(edges), size=n_fail, replace=False)
        g = topology.graph.copy()
        for i in pick:
            g.remove_edge(*edges[i])
        if nx.is_connected(g):
            return _tagged(g)
    raise ValueError(
        f"could not remove {fraction:.0%} of links and stay connected"
    )


@dataclass
class FailureCurve:
    """Throughput degradation under increasing link-failure fractions."""

    topology_name: str
    fractions: List[float]
    throughputs: List[float]
    relative: List[float]  # normalized by the failure-free value

    def worst_relative(self) -> float:
        return min(self.relative)


def failure_sweep(
    topology: Topology,
    tm_factory: Callable[[Topology, SeedLike], TrafficMatrix],
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    samples: int = 2,
    seed: SeedLike = 0,
) -> FailureCurve:
    """Mean throughput over ``samples`` failure draws at each fraction.

    The TM is regenerated per surviving graph (a near-worst-case TM adapts
    to the failed topology, matching how an adversary would).

    **Seeding** — every draw's failure pick and TM get child seeds derived
    up front from ``(seed, fraction, draw index)`` via
    :func:`~repro.utils.rng.stable_seed` (a ``Generator`` seed contributes
    one entropy integer first).  The baseline gets its own child seed the
    same way, so the same ``seed`` yields the same baseline and the same
    per-fraction draws no matter which ``fractions`` the sweep contains —
    historically the baseline drew from the RNG *after* the sweep had
    consumed it, so reordering fractions silently changed it.

    **Execution** — instances are constructed eagerly in deterministic
    order and solved in one batch through the ambient solver
    (:func:`repro.batch.solve_values`): rows are bit-identical serial,
    multi-worker, or warm-from-cache.  The 0/0 relative case (both the
    draw and the baseline infeasible) reports NaN, not ``inf``.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if isinstance(seed, np.random.Generator):
        entropy = int(seed.integers(0, 2**63 - 1))
    else:
        entropy = stable_seed("failure-sweep", seed)
    fractions = list(fractions)

    requests: List[SolveRequest] = []
    counts: List[int] = []
    for frac in fractions:
        n_draws = samples if frac > 0 else 1
        counts.append(n_draws)
        for i in range(n_draws):
            fail_seed = stable_seed(entropy, float(frac), i, "fail")
            tm_seed = stable_seed(entropy, float(frac), i, "tm")
            failed = fail_links(topology, frac, seed=fail_seed)
            tm = tm_factory(failed, ensure_rng(tm_seed))
            requests.append(SolveRequest(failed, tm, tag=f"f={frac:g}/{i}"))
    has_zero = fractions and fractions[0] == 0.0
    if not has_zero:
        # Baseline on the pristine topology, with its own stable child
        # seed — independent of everything the sweep drew above.
        base_tm = tm_factory(topology, ensure_rng(stable_seed(entropy, "baseline")))
        requests.append(SolveRequest(topology, base_tm, tag="baseline"))

    solved = solve_values(requests)

    values: List[float] = []
    pos = 0
    for n_draws in counts:
        values.append(float(np.mean(solved[pos : pos + n_draws])))
        pos += n_draws
    base = values[0] if has_zero else solved[-1]
    relative = [safe_ratio(v, base) for v in values]
    return FailureCurve(
        topology_name=topology.name,
        fractions=fractions,
        throughputs=values,
        relative=relative,
    )
