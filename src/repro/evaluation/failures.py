"""Link-failure robustness analysis (extension beyond the paper).

The paper evaluates pristine topologies; practical benchmark suites also ask
how throughput degrades as random links fail — one of Jellyfish's original
selling points.  This module removes a fraction of cables uniformly at
random (keeping the graph connected) and re-measures throughput, yielding a
degradation curve per topology.

Not a paper artifact; documented as an extension in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import networkx as nx
import numpy as np

from repro.throughput.mcf import throughput
from repro.topologies.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.utils.rng import SeedLike, ensure_rng


def fail_links(
    topology: Topology, fraction: float, seed: SeedLike = None, max_tries: int = 60
) -> Topology:
    """Copy of ``topology`` with ``fraction`` of its cables removed.

    Sampling retries until the surviving graph is connected (a topology with
    stranded servers has throughput 0 under any all-pairs TM, which says
    nothing interesting about capacity).  Raises ``ValueError`` when the
    requested fraction cannot leave the graph connected after ``max_tries``.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    if fraction == 0.0:
        return topology
    rng = ensure_rng(seed)
    if topology.graph.is_multigraph():
        edges = list(topology.graph.edges(keys=True))
    else:
        edges = list(topology.graph.edges())
    n_fail = int(round(len(edges) * fraction))
    if n_fail == 0:
        return topology
    if n_fail >= len(edges):
        raise ValueError("cannot fail every link")
    for _ in range(max_tries):
        pick = rng.choice(len(edges), size=n_fail, replace=False)
        g = topology.graph.copy()
        for i in pick:
            g.remove_edge(*edges[i])
        if nx.is_connected(g):
            failed = Topology(
                name=f"{topology.name}/failed={fraction:.0%}",
                graph=g,
                servers=topology.servers.copy(),
                family=topology.family,
                params={**topology.params, "failed_fraction": fraction},
            )
            failed.validate()
            return failed
    raise ValueError(
        f"could not remove {fraction:.0%} of links and stay connected"
    )


@dataclass
class FailureCurve:
    """Throughput degradation under increasing link-failure fractions."""

    topology_name: str
    fractions: List[float]
    throughputs: List[float]
    relative: List[float]  # normalized by the failure-free value

    def worst_relative(self) -> float:
        return min(self.relative)


def failure_sweep(
    topology: Topology,
    tm_factory: Callable[[Topology, SeedLike], TrafficMatrix],
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    samples: int = 2,
    seed: SeedLike = 0,
) -> FailureCurve:
    """Mean throughput over ``samples`` failure draws at each fraction.

    The TM is regenerated per surviving graph (a near-worst-case TM adapts
    to the failed topology, matching how an adversary would).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    rng = ensure_rng(seed)
    fractions = list(fractions)
    values: List[float] = []
    for frac in fractions:
        draws = []
        for _ in range(samples if frac > 0 else 1):
            failed = fail_links(topology, frac, seed=rng)
            tm = tm_factory(failed, rng)
            draws.append(throughput(failed, tm).value)
        values.append(float(np.mean(draws)))
    base = values[0] if fractions[0] == 0.0 else throughput(
        topology, tm_factory(topology, rng)
    ).value
    relative = [v / base if base > 0 else np.inf for v in values]
    return FailureCurve(
        topology_name=topology.name,
        fractions=fractions,
        throughputs=values,
        relative=relative,
    )
