"""HyperX (Ahn et al., SC 2009): generalized flattened-butterfly lattices.

A regular HyperX(L, S, K, T) places ``S**L`` switches on an L-dimensional
lattice of side S, fully connects every axis-aligned line with link
multiplicity K, and attaches T terminals per switch.

The HyperX paper's design flow searches, for a given switch radix, terminal
count, and target bisection, the cheapest such lattice.  :func:`design_hyperx`
reimplements that search for regular HyperX; its discreteness is what makes
HyperX throughput jump around with scale (paper Fig. 7), so the search — not
just the lattice — is part of the reproduction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class HyperXDesign:
    """A candidate regular HyperX configuration."""

    L: int  # lattice dimensions
    S: int  # lattice side (switches per dimension)
    K: int  # link multiplicity along each dimension
    T: int  # terminals (servers) per switch

    @property
    def n_switches(self) -> int:
        return self.S**self.L

    @property
    def n_servers(self) -> int:
        return self.n_switches * self.T

    @property
    def switch_radix(self) -> int:
        """Ports used per switch: terminals + K links to each of the S-1
        other switches in each of the L dimensions."""
        return self.T + self.K * (self.S - 1) * self.L

    @property
    def n_cables(self) -> int:
        return self.L * (self.S**(self.L - 1)) * (self.S * (self.S - 1) // 2) * self.K

    @property
    def relative_bisection(self) -> float:
        """Worst-axis bisection as a fraction of terminals, K*floor(S/2)*ceil(S/2)*2/(S*T)."""
        half_lo = self.S // 2
        half_hi = self.S - half_lo
        # Cut along one axis: S**(L-1) lines, each contributing
        # half_lo*half_hi*K cables; one direction of capacity per cable.
        cut = (self.S ** (self.L - 1)) * half_lo * half_hi * self.K
        hosts_half = self.n_servers * half_lo / self.S
        return cut / hosts_half if hosts_half else 0.0


def hyperx(L: int, S: int, K: int = 1, T: int = 1) -> Topology:
    """Build a regular HyperX lattice.

    Parallel cables (K > 1) are represented as a MultiGraph so capacity
    accounting and equipment matching stay exact.
    """
    require_positive_int(L, "L")
    require_positive_int(S, "S")
    require_positive_int(K, "K")
    require_positive_int(T, "T")
    if S < 2:
        raise ValueError(f"HyperX needs lattice side S >= 2, got {S}")
    n_switch = S**L

    def node_id(coords: tuple) -> int:
        nid = 0
        for c in coords:
            nid = nid * S + c
        return nid

    g: nx.Graph = nx.MultiGraph() if K > 1 else nx.Graph()
    g.add_nodes_from(range(n_switch))
    for coords in itertools.product(range(S), repeat=L):
        nid = node_id(coords)
        for axis in range(L):
            for val in range(coords[axis] + 1, S):
                other = coords[:axis] + (val,) + coords[axis + 1 :]
                for _ in range(K):
                    g.add_edge(nid, node_id(other))
    servers = np.full(n_switch, T, dtype=np.int64)
    topo = Topology(
        name=f"hyperx(L={L},S={S},K={K},T={T})",
        graph=g,
        servers=servers,
        family="hyperx",
        params={"L": L, "S": S, "K": K, "T": T},
    )
    topo.validate()
    return topo


def design_hyperx(
    radix: int,
    n_terminals: int,
    bisection: float,
    max_L: int = 4,
    max_K: int = 4,
) -> Optional[HyperXDesign]:
    """Least-cost regular HyperX meeting the given constraints.

    Mirrors the HyperX paper's searcher restricted to regular designs: among
    all (L, S, K, T) with switch radix <= ``radix``, terminals >=
    ``n_terminals`` and relative bisection >= ``bisection``, return the one
    minimizing switch count, then cable count, then (deterministically) the
    tuple itself.  Returns None when infeasible.
    """
    require_positive_int(radix, "radix")
    require_positive_int(n_terminals, "n_terminals")
    if not 0.0 < bisection <= 1.0:
        raise ValueError(f"bisection must be in (0, 1], got {bisection}")
    best: Optional[HyperXDesign] = None
    best_key = None
    for L in range(1, max_L + 1):
        for S in range(2, radix + 2):
            if S**L > 10**6:
                break
            for K in range(1, max_K + 1):
                link_ports = K * (S - 1) * L
                if link_ports >= radix:
                    break
                t_needed = -(-n_terminals // S**L)  # ceil division
                if t_needed < 1:
                    t_needed = 1
                if t_needed + link_ports > radix:
                    continue
                cand = HyperXDesign(L=L, S=S, K=K, T=t_needed)
                if cand.relative_bisection < bisection:
                    continue
                key = (cand.n_switches, cand.n_cables, L, S, K)
                if best_key is None or key < best_key:
                    best, best_key = cand, key
    return best


def hyperx_for_terminals(
    radix: int, n_terminals: int, bisection: float
) -> Optional[Topology]:
    """Design and build the cheapest HyperX for the given requirements."""
    design = design_hyperx(radix, n_terminals, bisection)
    if design is None:
        return None
    topo = hyperx(design.L, design.S, design.K, design.T)
    topo.params["bisection_target"] = bisection
    topo.params["relative_bisection"] = design.relative_bisection
    return topo


def hyperx_scale_ladder(
    radix: int, bisection: float, terminal_counts: List[int]
) -> List[Topology]:
    """The HyperX instances the Fig. 7 sweep evaluates, deduplicated."""
    out: List[Topology] = []
    seen = set()
    for n_term in terminal_counts:
        design = design_hyperx(radix, n_term, bisection)
        if design is None:
            continue
        if design in seen:
            continue
        seen.add(design)
        out.append(hyperx_for_terminals(radix, n_term, bisection))
    return out
