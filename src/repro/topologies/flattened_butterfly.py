"""Flattened butterfly (Kim, Dally, Abts 2007): the k-ary n-flat.

Flattening a k-ary n-stage butterfly yields ``k**(n-1)`` switches arranged in
an (n-1)-dimensional array of side k, fully connected along every axis, with
k terminals per switch.  The paper's §III-B case study — the 5-ary 3-stage
flattened butterfly with 25 switches and 125 servers — is ``flattened
butterfly(k=5, n=3)``.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def flattened_butterfly(k: int, n: int) -> Topology:
    """k-ary n-flat flattened butterfly.

    Parameters
    ----------
    k:
        Radix of the underlying butterfly (array side, also terminals per
        switch).
    n:
        Number of stages of the underlying butterfly; the flat has ``n - 1``
        array dimensions.
    """
    require_positive_int(k, "k")
    require_positive_int(n, "n")
    if k < 2:
        raise ValueError(f"flattened butterfly needs k >= 2, got {k}")
    if n < 2:
        raise ValueError(f"flattened butterfly needs n >= 2 stages, got {n}")
    dims = n - 1
    n_switch = k**dims

    def node_id(coords: tuple) -> int:
        nid = 0
        for c in coords:
            nid = nid * k + c
        return nid

    g = nx.Graph()
    g.add_nodes_from(range(n_switch))
    for coords in itertools.product(range(k), repeat=dims):
        nid = node_id(coords)
        for axis in range(dims):
            for val in range(coords[axis] + 1, k):
                other = coords[:axis] + (val,) + coords[axis + 1 :]
                g.add_edge(nid, node_id(other))
    servers = np.full(n_switch, k, dtype=np.int64)
    topo = Topology(
        name=f"flatbutterfly(k={k},n={n})",
        graph=g,
        servers=servers,
        family="flattened_butterfly",
        params={"k": k, "n": n},
    )
    topo.validate()
    return topo
