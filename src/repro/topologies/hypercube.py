"""d-dimensional binary hypercube (Bhuyan & Agrawal)."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def hypercube(dim: int, servers_per_node: int = 1) -> Topology:
    """Binary hypercube with ``2**dim`` switches of degree ``dim``.

    Nodes are labeled by their integer coordinates; u ~ v iff ``u ^ v`` is a
    power of two.  Servers are attached uniformly (the family places no
    restriction on server locations).

    Parameters
    ----------
    dim:
        Hypercube dimension (>= 1).
    servers_per_node:
        Terminal servers per switch.
    """
    require_positive_int(dim, "dim")
    require_positive_int(servers_per_node, "servers_per_node")
    n = 1 << dim
    g = nx.Graph()
    g.add_nodes_from(range(n))
    # Vectorized edge enumeration: for each axis bit, connect v and v|bit for
    # every v with that bit clear.
    for bit_pos in range(dim):
        bit = 1 << bit_pos
        lows = np.flatnonzero((np.arange(n) & bit) == 0)
        g.add_edges_from(zip(lows.tolist(), (lows | bit).tolist()))
    servers = np.full(n, servers_per_node, dtype=np.int64)
    topo = Topology(
        name=f"hypercube(d={dim})",
        graph=g,
        servers=servers,
        family="hypercube",
        params={"dim": dim, "servers_per_node": servers_per_node},
    )
    topo.validate()
    return topo
