"""Three-level fat tree (Al-Fares et al., SIGCOMM 2008).

The k-ary fat tree is nonblocking: any hose-model traffic matrix achieves
throughput exactly 1, which the test suite uses as an oracle.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def fat_tree(k: int) -> Topology:
    """k-ary three-level fat tree.

    Structure (k even):

    * ``(k/2)**2`` core switches;
    * ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches;
    * edge switch e in a pod connects to every aggregation switch in the pod;
    * aggregation switch a (index j within its pod) connects to core switches
      ``j*(k/2) .. (j+1)*(k/2)-1``;
    * ``k/2`` servers per edge switch (total ``k**3/4``), the prescribed
      server locations for this family.
    """
    require_positive_int(k, "k")
    if k % 2 != 0 or k < 2:
        raise ValueError(f"fat tree requires even k >= 2, got {k}")
    half = k // 2
    n_core = half * half
    n_agg = k * half
    n_edge = k * half
    # Node numbering: cores, then per-pod aggregation, then per-pod edge.
    core0 = 0
    agg0 = n_core
    edge0 = n_core + n_agg
    g = nx.Graph()
    g.add_nodes_from(range(n_core + n_agg + n_edge))
    for pod in range(k):
        for j in range(half):
            agg = agg0 + pod * half + j
            # aggregation j serves core group j
            for c in range(half):
                g.add_edge(agg, core0 + j * half + c)
            for e in range(half):
                g.add_edge(agg, edge0 + pod * half + e)
    servers = np.zeros(n_core + n_agg + n_edge, dtype=np.int64)
    servers[edge0:] = half
    topo = Topology(
        name=f"fattree(k={k})",
        graph=g,
        servers=servers,
        family="fattree",
        params={"k": k},
    )
    topo.validate()
    return topo
