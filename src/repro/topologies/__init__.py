"""Network topology constructors.

Every family the paper evaluates (BCube, DCell, Dragonfly, fat tree,
flattened butterfly, hypercube, HyperX, Jellyfish, Long Hop, Slim Fly) plus
the theory-section benchmark graphs and the natural-network suite.
"""

from repro.topologies.base import Topology, make_topology
from repro.topologies.bcube import bcube
from repro.topologies.dcell import dcell, dcell_server_count, dcell_switch_count
from repro.topologies.dragonfly import dragonfly
from repro.topologies.expander import (
    clustered_random_graph,
    random_expander,
    subdivided_expander,
)
from repro.topologies.fattree import fat_tree
from repro.topologies.flattened_butterfly import flattened_butterfly
from repro.topologies.hypercube import hypercube
from repro.topologies.hyperx import (
    HyperXDesign,
    design_hyperx,
    hyperx,
    hyperx_for_terminals,
)
from repro.topologies.jellyfish import jellyfish
from repro.topologies.longhop import longhop, longhop_generators
from repro.topologies.natural import natural_network, natural_network_suite
from repro.topologies.registry import (
    DISPLAY_NAMES,
    FAMILY_ORDER,
    GROUP1,
    GROUP2,
    all_families,
    representative,
    scale_ladder,
)
from repro.topologies.slimfly import slimfly, slimfly_valid_q
from repro.topologies.xpander import k_lift, xpander
from repro.topologies.io import (
    load_topology,
    save_topology,
    topology_from_json,
    topology_to_edgelist,
    topology_to_json,
)
from repro.topologies.properties import (
    TopologyProperties,
    analyze,
    cheeger_bounds,
    spectral_gap,
)

__all__ = [
    "Topology",
    "make_topology",
    "bcube",
    "dcell",
    "dcell_server_count",
    "dcell_switch_count",
    "dragonfly",
    "clustered_random_graph",
    "random_expander",
    "subdivided_expander",
    "fat_tree",
    "flattened_butterfly",
    "hypercube",
    "HyperXDesign",
    "design_hyperx",
    "hyperx",
    "hyperx_for_terminals",
    "jellyfish",
    "longhop",
    "longhop_generators",
    "natural_network",
    "natural_network_suite",
    "DISPLAY_NAMES",
    "FAMILY_ORDER",
    "GROUP1",
    "GROUP2",
    "all_families",
    "representative",
    "scale_ladder",
    "slimfly",
    "slimfly_valid_q",
    "k_lift",
    "xpander",
    "load_topology",
    "save_topology",
    "topology_from_json",
    "topology_to_edgelist",
    "topology_to_json",
    "TopologyProperties",
    "analyze",
    "cheeger_bounds",
    "spectral_gap",
]
