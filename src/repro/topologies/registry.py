"""Registry of topology families: builders, scale ladders, representatives.

The figure experiments never hardcode constructor calls; they ask the
registry for (a) a family's *scale ladder* — instances of increasing server
count up to a cap, used by the relative-throughput-vs-size figures — or (b) a
family's *representative* — the mid-size instance used by the per-topology
bar charts (Figs. 4, 10–14).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.topologies.base import Topology
from repro.topologies.bcube import bcube
from repro.topologies.dcell import dcell, dcell_server_count
from repro.topologies.dragonfly import dragonfly
from repro.topologies.fattree import fat_tree
from repro.topologies.flattened_butterfly import flattened_butterfly
from repro.topologies.hypercube import hypercube
from repro.topologies.hyperx import hyperx, hyperx_for_terminals
from repro.topologies.jellyfish import jellyfish
from repro.topologies.longhop import longhop
from repro.topologies.slimfly import slimfly, slimfly_valid_q
from repro.utils.rng import SeedLike, spawn_rngs

#: Display names in the paper's order (Figs. 4-6, 13-14, Table I).
FAMILY_ORDER = (
    "bcube",
    "dcell",
    "dragonfly",
    "fattree",
    "flattened_butterfly",
    "hypercube",
    "hyperx",
    "jellyfish",
    "longhop",
    "slimfly",
)

DISPLAY_NAMES = {
    "bcube": "BCube",
    "dcell": "DCell",
    "dragonfly": "Dragonfly",
    "fattree": "Fat tree",
    "flattened_butterfly": "Flattened BF",
    "hypercube": "Hypercube",
    "hyperx": "HyperX",
    "jellyfish": "Jellyfish",
    "longhop": "Long Hop",
    "slimfly": "Slim Fly",
}

#: Group split used by the paper (Figs. 5 vs 6, 10 vs 11).
GROUP1 = ("bcube", "dcell", "dragonfly", "fattree", "flattened_butterfly", "hypercube")
GROUP2 = ("hyperx", "jellyfish", "longhop", "slimfly")


def _ladder_bcube(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for k in range(1, 8):
        if 2 ** (k + 1) > max_servers:
            break
        out.append(bcube(2, k))
    return out


def _ladder_dcell(max_servers: int, seed: SeedLike) -> List[Topology]:
    params = [(2, 1), (3, 1), (4, 1), (5, 1), (3, 2), (4, 2), (5, 2)]
    out = []
    for n, k in params:
        if dcell_server_count(n, k) <= max_servers:
            out.append(dcell(n, k))
    out.sort(key=lambda t: t.n_servers)
    return out


def _ladder_dragonfly(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for h in range(1, 6):
        topo = dragonfly(h)
        if topo.n_servers > max_servers:
            break
        out.append(topo)
    return out


def _ladder_fattree(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for k in range(4, 21, 2):
        if k**3 // 4 > max_servers:
            break
        out.append(fat_tree(k))
    return out


def _ladder_flatbf(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for n in range(4, 11):
        topo = flattened_butterfly(2, n)
        if topo.n_servers > max_servers:
            break
        out.append(topo)
    return out


def _ladder_hypercube(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for d in range(3, 12):
        if 2**d > max_servers:
            break
        out.append(hypercube(d))
    return out


def _ladder_hyperx(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    seen = set()
    for n_term in (32, 64, 128, 256, 512, 1024):
        if n_term > max_servers:
            break
        topo = hyperx_for_terminals(radix=24, n_terminals=n_term, bisection=0.4)
        if topo is None:
            continue
        key = tuple(sorted(topo.params.items()))
        if key in seen:
            continue
        seen.add(key)
        out.append(topo)
    return out


def _ladder_jellyfish(max_servers: int, seed: SeedLike) -> List[Topology]:
    configs = [(16, 4), (32, 5), (64, 6), (128, 7), (256, 8), (512, 10), (1024, 12)]
    rngs = spawn_rngs(seed, len(configs))
    out = []
    for (n, d), rng in zip(configs, rngs):
        if n > max_servers:
            break
        out.append(jellyfish(n, d, seed=rng))
    return out


def _ladder_longhop(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for dim in range(4, 11):
        if 2**dim > max_servers:
            break
        out.append(longhop(dim))
    return out


def _ladder_slimfly(max_servers: int, seed: SeedLike) -> List[Topology]:
    out = []
    for q in slimfly_valid_q(37):
        if 2 * q * q > max_servers:
            break
        out.append(slimfly(q))
    return out


_LADDERS: Dict[str, Callable[[int, SeedLike], List[Topology]]] = {
    "bcube": _ladder_bcube,
    "dcell": _ladder_dcell,
    "dragonfly": _ladder_dragonfly,
    "fattree": _ladder_fattree,
    "flattened_butterfly": _ladder_flatbf,
    "hypercube": _ladder_hypercube,
    "hyperx": _ladder_hyperx,
    "jellyfish": _ladder_jellyfish,
    "longhop": _ladder_longhop,
    "slimfly": _ladder_slimfly,
}


def scale_ladder(family: str, max_servers: int, seed: SeedLike = None) -> List[Topology]:
    """Instances of ``family`` with increasing server counts up to the cap."""
    if family not in _LADDERS:
        raise KeyError(f"unknown family {family!r}; known: {sorted(_LADDERS)}")
    return _LADDERS[family](max_servers, seed)


def representative(family: str, seed: SeedLike = None) -> Topology:
    """The family's mid-size instance used by per-topology bar experiments."""
    builders: Dict[str, Callable[[], Topology]] = {
        "bcube": lambda: bcube(2, 3),
        "dcell": lambda: dcell(5, 1),
        "dragonfly": lambda: dragonfly(2),
        "fattree": lambda: fat_tree(6),
        "flattened_butterfly": lambda: flattened_butterfly(5, 3),
        "hypercube": lambda: hypercube(6),
        "hyperx": lambda: hyperx(2, 6, 1, 3),
        "jellyfish": lambda: jellyfish(64, 6, seed=seed),
        "longhop": lambda: longhop(6),
        "slimfly": lambda: slimfly(5),
    }
    if family not in builders:
        raise KeyError(f"unknown family {family!r}; known: {sorted(builders)}")
    return builders[family]()


def all_families() -> List[str]:
    """Family keys in the paper's presentation order."""
    return list(FAMILY_ORDER)
