"""Benchmark graphs for the paper's theory section (Fig. 1, Theorem 1).

* :func:`random_expander` — a random 2d-regular graph (whp an expander).
* :func:`clustered_random_graph` — the paper's graph A: two equal clusters
  with intra-degree α and inter-degree β, α + β = 2d (Singla et al. NSDI'14).
* :func:`subdivided_expander` — the paper's graph B: an expander with every
  edge replaced by a path of length p, which inflates the sparsest cut
  relative to throughput by the Theorem-1 separation.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.graphutils import random_connected_regular_graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def random_expander(n: int, degree: int, seed: SeedLike = None) -> Topology:
    """Connected random ``degree``-regular graph on n switches, 1 server each."""
    require_positive_int(n, "n")
    require_positive_int(degree, "degree")
    rng = ensure_rng(seed)
    g = random_connected_regular_graph(degree, n, rng)
    topo = Topology(
        name=f"expander(n={n},d={degree})",
        graph=g,
        servers=np.ones(n, dtype=np.int64),
        family="expander",
        params={"n": n, "degree": degree},
    )
    topo.validate()
    return topo


def _random_bipartite_regular(
    left: np.ndarray, right: np.ndarray, degree: int, rng: np.random.Generator
) -> list:
    """Random simple ``degree``-regular bipartite edge set between two node
    arrays of equal size, via stub matching with conflict re-draws."""
    if left.size != right.size:
        raise ValueError("clusters must have equal size")
    for _ in range(200):
        stubs_left = np.repeat(left, degree)
        stubs_right = np.repeat(right, degree)
        rng.shuffle(stubs_right)
        pairs = set(zip(stubs_left.tolist(), stubs_right.tolist()))
        if len(pairs) == left.size * degree:  # no parallel edges drawn
            return list(pairs)
    raise RuntimeError("failed to sample simple regular bipartite graph")


def clustered_random_graph(
    n: int, d: int, beta: int, seed: SeedLike = None
) -> Topology:
    """Paper graph A: two n/2-clusters, intra-degree ``2d - beta``, inter ``beta``.

    Total degree 2d per node.  The paper picks β = Θ(α / log n) so the
    inter-cluster band is the bottleneck cut.
    """
    require_positive_int(n, "n")
    require_positive_int(d, "d")
    require_positive_int(beta, "beta")
    if n % 2 != 0:
        raise ValueError(f"n must be even, got {n}")
    alpha = 2 * d - beta
    if alpha <= 0:
        raise ValueError(f"beta={beta} too large for total degree {2 * d}")
    half = n // 2
    if alpha >= half:
        raise ValueError(f"intra-degree {alpha} must be < cluster size {half}")
    rng = ensure_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for base in (0, half):
        sub = random_connected_regular_graph(alpha, half, rng)
        g.add_edges_from((base + u, base + v) for u, v in sub.edges())
    inter = _random_bipartite_regular(
        np.arange(half), np.arange(half, n), beta, rng
    )
    g.add_edges_from(inter)
    topo = Topology(
        name=f"clustered(n={n},d={d},beta={beta})",
        graph=g,
        servers=np.ones(n, dtype=np.int64),
        family="clustered_random",
        params={"n": n, "d": d, "alpha": alpha, "beta": beta},
    )
    topo.validate()
    return topo


def subdivided_expander(
    n_core: int,
    degree: int,
    path_len: int,
    seed: SeedLike = None,
    servers_on_relays: bool = True,
) -> Topology:
    """Paper graph B: each edge of a ``degree``-regular expander on
    ``n_core`` nodes is replaced by a path with ``path_len`` edges.

    Theorem 1 evaluates throughput and sparsest cut with all-to-all demand
    over *all* n nodes of B — subdivision relays included — so by default
    every node carries one server.  Set ``servers_on_relays=False`` to keep
    demand on the expander's original vertex set only.
    """
    require_positive_int(n_core, "n_core")
    require_positive_int(degree, "degree")
    require_positive_int(path_len, "path_len")
    rng = ensure_rng(seed)
    core = random_connected_regular_graph(degree, n_core, rng)
    g = nx.Graph()
    g.add_nodes_from(range(n_core))
    next_id = n_core
    for u, v in core.edges():
        if path_len == 1:
            g.add_edge(u, v)
            continue
        prev = u
        for _ in range(path_len - 1):
            g.add_node(next_id)
            g.add_edge(prev, next_id)
            prev = next_id
            next_id += 1
        g.add_edge(prev, v)
    servers = np.ones(next_id, dtype=np.int64)
    if not servers_on_relays:
        servers[n_core:] = 0
    topo = Topology(
        name=f"subdivided(n={n_core},d={degree},p={path_len})",
        graph=g,
        servers=servers,
        family="subdivided_expander",
        params={"n_core": n_core, "degree": degree, "path_len": path_len},
    )
    topo.validate()
    return topo
