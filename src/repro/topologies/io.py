"""Topology serialization: JSON documents and edge lists.

Round-trippable persistence for sharing benchmark instances — the
paper's artifact repository distributes its graphs as files, and
reproducible comparisons need byte-identical instances.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import networkx as nx
import numpy as np

from repro.topologies.base import Topology

FORMAT_VERSION = 1


def topology_to_json(topology: Topology) -> str:
    """Serialize a topology (graph + servers + provenance) to JSON."""
    if topology.graph.is_multigraph():
        edges = [[int(u), int(v)] for u, v in topology.graph.edges(keys=False)]
        multigraph = True
    else:
        edges = [[int(u), int(v)] for u, v in topology.graph.edges()]
        multigraph = False
    payload = {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "family": topology.family,
        "n_switches": topology.n_switches,
        "multigraph": multigraph,
        "edges": edges,
        "servers": topology.servers.tolist(),
        "params": _jsonable(topology.params),
    }
    return json.dumps(payload, indent=2)


def _jsonable(obj):
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def topology_from_json(text: str) -> Topology:
    """Rebuild a topology from :func:`topology_to_json` output."""
    data = json.loads(text)
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported topology format version {data.get('format_version')}"
        )
    g = nx.MultiGraph() if data["multigraph"] else nx.Graph()
    g.add_nodes_from(range(data["n_switches"]))
    g.add_edges_from((u, v) for u, v in data["edges"])
    topo = Topology(
        name=data["name"],
        graph=g,
        servers=np.asarray(data["servers"], dtype=np.int64),
        family=data["family"],
        params=data.get("params", {}),
    )
    topo.validate()
    return topo


def save_topology(topology: Topology, path: Union[str, Path]) -> None:
    """Write a topology JSON file."""
    Path(path).write_text(topology_to_json(topology))


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology JSON file."""
    return topology_from_json(Path(path).read_text())


def topology_to_edgelist(topology: Topology) -> str:
    """Plain-text edge list: header comments + 'u v' lines + server counts.

    Interoperable with the usual graph tooling; servers are recorded in a
    trailing comment block so the file stays a valid edge list.
    """
    lines = [
        f"# topology: {topology.name}",
        f"# switches: {topology.n_switches}",
    ]
    if topology.graph.is_multigraph():
        edge_iter = topology.graph.edges(keys=False)
    else:
        edge_iter = topology.graph.edges()
    lines.extend(f"{u} {v}" for u, v in edge_iter)
    servers = " ".join(str(int(s)) for s in topology.servers)
    lines.append(f"# servers: {servers}")
    return "\n".join(lines) + "\n"
