"""Jellyfish (Singla et al., NSDI 2012): uniform-random regular graphs.

Jellyfish is both a topology proposal and — because a random graph can be
built for any equipment — the paper's normalizing benchmark (relative
throughput = topology / same-equipment random graph).
"""

from __future__ import annotations

import numpy as np

from repro.topologies.base import Topology
from repro.utils.graphutils import random_connected_regular_graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def jellyfish(
    n_switches: int,
    degree: int,
    servers_per_node: int = 1,
    seed: SeedLike = None,
) -> Topology:
    """Random regular Jellyfish on ``n_switches`` switches of ``degree``.

    Parameters
    ----------
    n_switches, degree:
        Graph size and uniform switch-to-switch degree (``degree *
        n_switches`` must be even, ``degree < n_switches``).
    servers_per_node:
        Terminals per switch.
    seed:
        RNG seed; fixed seeds give reproducible instances.
    """
    require_positive_int(n_switches, "n_switches")
    require_positive_int(degree, "degree")
    require_positive_int(servers_per_node, "servers_per_node")
    rng = ensure_rng(seed)
    g = random_connected_regular_graph(degree, n_switches, rng)
    servers = np.full(n_switches, servers_per_node, dtype=np.int64)
    topo = Topology(
        name=f"jellyfish(n={n_switches},d={degree})",
        graph=g,
        servers=servers,
        family="jellyfish",
        params={
            "n_switches": n_switches,
            "degree": degree,
            "servers_per_node": servers_per_node,
        },
    )
    topo.validate()
    return topo
