"""Structural properties of topologies: diameter, path length, expansion.

These are the graph-level quantities the paper discusses alongside
throughput (Slim Fly's short paths, expanders' spectral gap, HyperX's
bisection) — useful for diagnosing *why* a topology's throughput behaves as
it does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cuts.spectral import normalized_laplacian
from repro.topologies.base import Topology


@dataclass
class TopologyProperties:
    """Summary statistics of a topology's switch graph."""

    name: str
    n_switches: int
    n_servers: int
    n_links: int
    min_degree: int
    max_degree: int
    diameter: int
    mean_path_length: float
    spectral_gap: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.n_switches,
            self.n_servers,
            self.n_links,
            f"{self.min_degree}-{self.max_degree}",
            self.diameter,
            round(self.mean_path_length, 3),
            round(self.spectral_gap, 4),
        )


def spectral_gap(topology: Topology) -> float:
    """Second-smallest eigenvalue of the normalized Laplacian.

    Large gap => strong expansion => (by Cheeger) no sparse cuts; the
    quantity behind the paper's "expanders win at scale" finding.
    """
    lap = normalized_laplacian(topology)
    vals = np.linalg.eigvalsh(lap)
    return float(vals[1])


def analyze(topology: Topology) -> TopologyProperties:
    """Compute the full property summary (O(n^2) + one eigendecomposition).

    Runs on the compiled core: distances come from the memoized CSR hop
    matrix, degrees from the compiled capacity-weighted degree vector.
    """
    dist = topology.compile().hop_distances()
    n = topology.n_switches
    off_diag = dist[~np.eye(n, dtype=bool)]
    if np.any(np.isinf(off_diag)):
        raise ValueError(f"{topology.name}: disconnected")
    deg = topology.degree_sequence()
    return TopologyProperties(
        name=topology.name,
        n_switches=n,
        n_servers=topology.n_servers,
        n_links=topology.n_links,
        min_degree=int(deg.min()),
        max_degree=int(deg.max()),
        diameter=int(off_diag.max()),
        mean_path_length=float(off_diag.mean()),
        spectral_gap=spectral_gap(topology),
    )


def cheeger_bounds(topology: Topology) -> tuple[float, float]:
    """Cheeger's inequality bounds on graph conductance from the gap:
    lambda_2 / 2 <= h(G) <= sqrt(2 * lambda_2)."""
    gap = spectral_gap(topology)
    return gap / 2.0, float(np.sqrt(2.0 * gap))
