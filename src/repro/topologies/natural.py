"""Synthetic stand-ins for the paper's 66 "natural networks".

The paper evaluates cut metrics on 66 non-computer networks (food webs,
social networks, ...), which are not redistributable here.  Per the
substitution policy in DESIGN.md we generate 66 seeded synthetic graphs whose
structural regime matches how the paper characterizes its natural networks:
"often denser in the core and sparser in the edges", small (tens of nodes),
irregular.  Six generator families x 11 sizes = 66 graphs.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import SeedLike, ensure_rng


def _connectify(g: nx.Graph, rng: np.random.Generator) -> nx.Graph:
    """Join components by random inter-component edges until connected."""
    g = nx.convert_node_labels_to_integers(g)
    comps = [list(c) for c in nx.connected_components(g)]
    while len(comps) > 1:
        a = comps.pop()
        b = comps[-1]
        u = a[int(rng.integers(len(a)))]
        v = b[int(rng.integers(len(b)))]
        g.add_edge(u, v)
        comps[-1] = b + a
    return g


def _strip_self_loops(g: nx.Graph) -> nx.Graph:
    g.remove_edges_from(nx.selfloop_edges(g))
    return g


def natural_network(kind: str, size: int, seed: SeedLike = None) -> Topology:
    """One synthetic natural network.

    ``kind`` is one of ``smallworld``, ``scalefree``, ``plcluster``,
    ``community``, ``geometric``, ``tree_chords``.  All instances are
    connected simple graphs with one server per node.
    """
    rng = ensure_rng(seed)
    nxseed = int(rng.integers(0, 2**31 - 1))
    if kind == "smallworld":
        g = nx.connected_watts_strogatz_graph(size, k=4, p=0.3, seed=nxseed)
    elif kind == "scalefree":
        g = nx.barabasi_albert_graph(size, m=2, seed=nxseed)
    elif kind == "plcluster":
        g = nx.powerlaw_cluster_graph(size, m=2, p=0.4, seed=nxseed)
    elif kind == "community":
        n_comm = max(2, size // 12)
        g = nx.planted_partition_graph(
            n_comm, max(3, size // n_comm), p_in=0.6, p_out=0.08, seed=nxseed
        )
        g = nx.Graph(g)  # drop multi-ness
    elif kind == "geometric":
        g = nx.random_geometric_graph(size, radius=0.35, seed=nxseed)
    elif kind == "tree_chords":
        g = nx.random_labeled_tree(size, seed=nxseed)
        nodes = np.arange(size)
        extra = max(2, size // 5)
        for _ in range(extra):
            u, v = rng.choice(nodes, size=2, replace=False)
            g.add_edge(int(u), int(v))
    else:
        raise ValueError(f"unknown natural network kind {kind!r}")
    g = _strip_self_loops(nx.Graph(g))
    g = _connectify(g, rng)
    n = g.number_of_nodes()
    topo = Topology(
        name=f"natural/{kind}(n={n})",
        graph=g,
        servers=np.ones(n, dtype=np.int64),
        family="natural",
        params={"kind": kind, "size": size},
    )
    topo.validate()
    return topo


NATURAL_KINDS = (
    "smallworld",
    "scalefree",
    "plcluster",
    "community",
    "geometric",
    "tree_chords",
)


def natural_network_suite(seed: SeedLike = 0, count: int = 66) -> List[Topology]:
    """The seeded suite of synthetic natural networks (default 66).

    Sizes cycle over 16..56 nodes; kinds cycle over the six generators.
    """
    rng = ensure_rng(seed)
    sizes = [16 + 4 * i for i in range(11)]
    out: List[Topology] = []
    i = 0
    while len(out) < count:
        kind = NATURAL_KINDS[i % len(NATURAL_KINDS)]
        size = sizes[(i // len(NATURAL_KINDS)) % len(sizes)]
        out.append(natural_network(kind, size, seed=rng))
        i += 1
    return out
