"""The :class:`Topology` abstraction shared by every network family.

A topology is an undirected (multi)graph of *switching nodes* plus a count of
terminal servers attached to each node.  Server links are infinite-capacity
(paper §II-A), so servers are never graph nodes themselves; server-centric
designs (BCube, DCell) model their relay-servers as switching nodes carrying
one terminal server each.

Every switch-to-switch cable has capacity 1 per direction; parallel cables
add capacity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.arcgraph import ArcGraph, compile_graph


@dataclass
class Topology:
    """A network topology: switch graph + server placement + provenance.

    Topologies are immutable once constructed (mutating ``graph`` after
    construction is unsupported): structural views are served by a
    compiled :class:`~repro.core.ArcGraph` built once by :meth:`compile`
    and cached, so arc extraction, connectivity, distances, and the batch
    layer's content keys never re-walk the networkx graph.

    Attributes
    ----------
    name:
        Human-readable instance name (e.g. ``"hypercube(d=5)"``).
    graph:
        Undirected graph or multigraph with integer nodes ``0..n-1``.  An
        edge of multiplicity m means m parallel unit-capacity cables.
    servers:
        ``servers[v]`` is the number of terminal servers attached to node v.
    family:
        Family key used by the registry (e.g. ``"hypercube"``).
    params:
        Construction parameters, kept for experiment records.
    """

    name: str
    graph: nx.Graph
    servers: np.ndarray
    family: str = "custom"
    params: Dict[str, Any] = field(default_factory=dict)
    _compiled: Optional[ArcGraph] = field(
        default=None, repr=False, compare=False
    )
    _iter_fingerprint: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.servers = np.asarray(self.servers, dtype=np.int64)
        n = self.graph.number_of_nodes()
        if self.servers.shape != (n,):
            raise ValueError(
                f"servers must have shape ({n},), got {self.servers.shape}"
            )
        if np.any(self.servers < 0):
            raise ValueError("server counts must be non-negative")
        nodes = set(self.graph.nodes())
        if nodes != set(range(n)):
            raise ValueError("graph nodes must be exactly 0..n-1")

    # ------------------------------------------------------------------ core
    def compile(self) -> ArcGraph:
        """The compiled :class:`~repro.core.ArcGraph` of this topology.

        Built on first use and cached — repeated calls return the identical
        object, so every consumer downstream (engines, cuts, properties,
        batch keys) shares one canonical arc list, one CSR adjacency, and
        one precomputed content digest.
        """
        if self._compiled is None:
            self._compiled = compile_graph(self.graph)
        return self._compiled

    def iteration_fingerprint(self) -> bytes:
        """Digest of the graph's node/edge *iteration* order (cached).

        Canonical arc sorting deliberately erases construction order, but
        the ``paths`` engine's BFS/Yen enumeration tie-breaks on adjacency
        insertion order — this fingerprint is the extra key component that
        keeps its cache entries sound (see
        :func:`repro.batch.jobs.instance_key`).  Computed from flat int64
        arrays of the as-built node and edge sequences, no string building.
        """
        if self._iter_fingerprint is None:
            h = hashlib.sha256()
            g = self.graph
            nodes = np.fromiter(
                g.nodes(), dtype=np.int64, count=g.number_of_nodes()
            )
            h.update(b"nodes\x00" + nodes.tobytes())
            edges = np.fromiter(
                (x for uv in g.edges() for x in uv),
                dtype=np.int64,
                count=2 * g.number_of_edges(),
            )
            h.update(b"edges\x00" + edges.tobytes())
            self._iter_fingerprint = h.digest()
        return self._iter_fingerprint

    # ------------------------------------------------------------------ sizes
    @property
    def n_switches(self) -> int:
        """Number of switching nodes (includes server-relay nodes)."""
        return self.graph.number_of_nodes()

    @property
    def n_servers(self) -> int:
        """Total number of terminal servers."""
        return int(self.servers.sum())

    @property
    def n_links(self) -> int:
        """Number of undirected unit-capacity cables (with multiplicity)."""
        return self.graph.number_of_edges()

    @property
    def server_nodes(self) -> np.ndarray:
        """Node ids with at least one attached server."""
        return np.flatnonzero(self.servers > 0)

    # ------------------------------------------------------------- structure
    def degree_sequence(self) -> np.ndarray:
        """Switch degrees counting cable multiplicity, indexed by node."""
        return self.compile().degrees()

    def arcs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed arc view ``(tails, heads, capacities)`` (compiled)."""
        return self.compile().arc_arrays()

    def total_capacity(self) -> float:
        """Sum of directed arc capacities (2 x cables)."""
        return 2.0 * self.graph.number_of_edges()

    def is_connected(self) -> bool:
        """True when the switch graph is connected."""
        return self.compile().is_connected()

    def equipment(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Equipment signature: per-node (degree, servers), degree-sorted.

        Two topologies with equal equipment use exactly the same switches and
        cables — the paper's criterion for a fair random-graph comparison.
        """
        deg = self.degree_sequence()
        order = np.lexsort((self.servers, deg))
        return tuple(int(d) for d in deg[order]), tuple(
            int(s) for s in self.servers[order]
        )

    # ---------------------------------------------------------------- metrics
    def server_pair_mean_distance(self) -> float:
        """Mean switch-graph distance between distinct server pairs.

        Weighted by server multiplicities: a node with a servers contributes
        a sources and a destinations.  Pairs of servers on the same switch
        have distance 0 and are included, matching how the paper reports mean
        flow path length (server-NIC hops are a constant offset everywhere).
        """
        hosts = self.server_nodes
        if hosts.size == 0:
            raise ValueError("topology has no servers")
        dist = self.compile().hop_distances()
        w = self.servers.astype(np.float64)
        total_servers = w.sum()
        if total_servers < 2:
            raise ValueError("need at least two servers")
        # Sum over ordered node pairs of w_u * w_v * dist, minus self pairs
        # (dist 0 contributes nothing), normalized by ordered server pairs.
        weighted = w @ dist @ w
        n_pairs = total_servers * (total_servers - 1)
        return float(weighted / n_pairs)

    def validate(self) -> None:
        """Raise ``ValueError`` if the topology is unusable for experiments."""
        if self.n_switches == 0:
            raise ValueError("empty topology")
        if self.n_servers < 2:
            raise ValueError("topology needs at least 2 servers for traffic")
        if not self.is_connected():
            raise ValueError(f"{self.name}: switch graph is disconnected")
        if any(u == v for u, v in self.graph.edges()):
            raise ValueError(f"{self.name}: self-loop cable")

    def with_servers(self, servers_per_node: int) -> "Topology":
        """Copy of this topology with a uniform server count on every node.

        Only meaningful for families without prescribed server locations
        (paper §III-A2: 'for all other networks, we add servers to each
        switch').
        """
        n = self.n_switches
        return Topology(
            name=f"{self.name}/servers={servers_per_node}",
            graph=self.graph,
            servers=np.full(n, servers_per_node, dtype=np.int64),
            family=self.family,
            params={**self.params, "servers_per_node": servers_per_node},
            # The graph is shared, so the compiled core (and the iteration
            # fingerprint) carry over — arcs do not depend on servers.
            _compiled=self._compiled,
            _iter_fingerprint=self._iter_fingerprint,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, switches={self.n_switches}, "
            f"servers={self.n_servers}, links={self.n_links})"
        )


def make_topology(
    graph: nx.Graph,
    servers: np.ndarray | int,
    name: str,
    family: str,
    params: Dict[str, Any] | None = None,
) -> Topology:
    """Construct and validate a :class:`Topology`.

    ``servers`` may be an int (uniform per node) or a per-node array.
    """
    g = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    n = g.number_of_nodes()
    if isinstance(servers, (int, np.integer)):
        servers_arr = np.full(n, int(servers), dtype=np.int64)
    else:
        servers_arr = np.asarray(servers, dtype=np.int64)
    topo = Topology(
        name=name, graph=g, servers=servers_arr, family=family, params=params or {}
    )
    topo.validate()
    return topo
