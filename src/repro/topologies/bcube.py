"""BCube (Guo et al., SIGCOMM 2009): a server-centric modular DC network.

BCube(n, k) has ``n**(k+1)`` servers, each with k+1 NICs, and ``(k+1) * n**k``
n-port switches arranged in k+1 levels.  Servers relay traffic between their
NICs, so in the switch-level model both servers and switches are graph nodes;
servers carry one terminal each and switches carry none.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_nonnegative_int, require_positive_int


def bcube(n: int, k: int) -> Topology:
    """BCube with ``n``-port switches and recursion depth ``k``.

    A server is addressed by k+1 base-n digits ``(a_k, ..., a_0)``.  At level
    i it connects to the switch identified by its digits with digit i removed.

    Node numbering: servers ``0 .. n**(k+1)-1`` (digit-radix order), then
    level-0 switches, level-1 switches, etc.
    """
    require_positive_int(n, "n")
    require_nonnegative_int(k, "k")
    if n < 2:
        raise ValueError(f"BCube needs n >= 2 ports, got {n}")
    n_servers = n ** (k + 1)
    switches_per_level = n**k
    n_switches = (k + 1) * switches_per_level

    def server_id(digits: tuple) -> int:
        sid = 0
        for d in digits:
            sid = sid * n + d
        return sid

    def switch_id(level: int, sw_digits: tuple) -> int:
        sid = 0
        for d in sw_digits:
            sid = sid * n + d
        return n_servers + level * switches_per_level + sid

    g = nx.Graph()
    g.add_nodes_from(range(n_servers + n_switches))
    for digits in itertools.product(range(n), repeat=k + 1):
        sid = server_id(digits)
        for level in range(k + 1):
            # digit index: digits are (a_k, ..., a_0); level i removes a_i,
            # i.e. position (k - i) in the tuple.
            pos = k - level
            sw_digits = digits[:pos] + digits[pos + 1 :]
            g.add_edge(sid, switch_id(level, sw_digits))
    servers = np.zeros(n_servers + n_switches, dtype=np.int64)
    servers[:n_servers] = 1
    topo = Topology(
        name=f"bcube(n={n},k={k})",
        graph=g,
        servers=servers,
        family="bcube",
        params={"n": n, "k": k},
    )
    topo.validate()
    return topo
