"""Slim Fly (Besta & Hoefler, SC 2014): diameter-2 MMS graphs.

The MMS (McKay–Miller–Širáň) construction over a finite field F_q yields a
(3q - δ)/2-regular graph on 2 q² vertices of diameter 2 — close to the Moore
bound.  We implement the construction for prime q (δ = ±1 by q mod 4); the
paper's Slim Fly sizes are covered by q ∈ {5, 13, 17, 29}.

Construction (prime q, ξ a primitive root mod q):

* vertices (s, x, y) with s ∈ {0, 1} and x, y ∈ F_q;
* (0, x, y) ~ (0, x, y')  iff  y − y' ∈ X;
* (1, m, c) ~ (1, m, c')  iff  c − c' ∈ X';
* (0, x, y) ~ (1, m, c)   iff  y = m·x + c.

For q ≡ 1 (mod 4): X = even powers of ξ (the quadratic residues) and X' = odd
powers; both are closed under negation since −1 is a QR.  For q ≡ 3 (mod 4)
we use Hafner's partition: X = {±ξ^(4t)} ∪ {±ξ^(4t+1)} intersected suitably —
concretely X = {ξ^i : i ≡ 0, 1 (mod 4)} which is negation-closed because
−1 = ξ^((q−1)/2) with (q−1)/2 ≡ 1 (mod 4)... handled explicitly below with a
negation-closure check at construction time.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def is_prime(q: int) -> bool:
    """Trial-division primality (fields here are tiny)."""
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    f = 3
    while f * f <= q:
        if q % f == 0:
            return False
        f += 2
    return True


def primitive_root(q: int) -> int:
    """Smallest primitive root modulo prime q."""
    if not is_prime(q):
        raise ValueError(f"q must be prime, got {q}")
    if q == 2:
        return 1
    phi = q - 1
    factors = set()
    m = phi
    f = 2
    while f * f <= m:
        while m % f == 0:
            factors.add(f)
            m //= f
        f += 1
    if m > 1:
        factors.add(m)
    for g in range(2, q):
        if all(pow(g, phi // p, q) != 1 for p in factors):
            return g
    raise RuntimeError(f"no primitive root found for {q}")  # pragma: no cover


def mms_generator_sets(q: int) -> Tuple[Set[int], Set[int]]:
    """The MMS generator sets (X, X') for prime q ≡ 1 (mod 4).

    X is the set of even powers of a primitive root (the nonzero quadratic
    residues) and X' the odd powers.  Both are negation-closed when
    q ≡ 1 (mod 4), which we assert.
    """
    if q % 4 != 1:
        raise ValueError(
            f"MMS generator sets implemented for primes q = 1 mod 4, got {q}"
        )
    xi = primitive_root(q)
    X = {pow(xi, 2 * t, q) for t in range((q - 1) // 2)}
    Xp = {pow(xi, 2 * t + 1, q) for t in range((q - 1) // 2)}
    for s in (X, Xp):
        if any((q - g) % q not in s for g in s):
            raise AssertionError("generator set not negation-closed")
    return X, Xp


def slimfly(q: int, servers_per_node: int | None = None) -> Topology:
    """Slim Fly MMS topology over the prime field F_q (q ≡ 1 mod 4).

    ``2 * q * q`` switches of network degree ``(3q - 1) / 2``.  Slim Fly's
    recommended concentration is ~67% of the network radix; with
    ``servers_per_node=None`` we attach 1 server per switch, leaving
    concentration to the experiment (relative-throughput comparisons match
    equipment anyway).
    """
    require_positive_int(q, "q")
    if not is_prime(q):
        raise ValueError(f"q must be prime, got {q}")
    X, Xp = mms_generator_sets(q)
    n = 2 * q * q
    if servers_per_node is None:
        servers_per_node = 1

    def vid(s: int, x: int, y: int) -> int:
        return s * q * q + x * q + y

    g = nx.Graph()
    g.add_nodes_from(range(n))
    # Intra-column edges in both halves.  Each undirected edge is generated
    # from both endpoints (X and X' are negation-closed); Graph dedups.
    for x in range(q):
        for y in range(q):
            for d in X:
                g.add_edge(vid(0, x, y), vid(0, x, (y + d) % q))
            for d in Xp:
                g.add_edge(vid(1, x, y), vid(1, x, (y + d) % q))
    # Cross edges: (0, x, y) ~ (1, m, c) iff y = m x + c.
    for x in range(q):
        for m in range(q):
            for c in range(q):
                y = (m * x + c) % q
                g.add_edge(vid(0, x, y), vid(1, m, c))
    servers = np.full(n, servers_per_node, dtype=np.int64)
    topo = Topology(
        name=f"slimfly(q={q})",
        graph=g,
        servers=servers,
        family="slimfly",
        params={"q": q, "servers_per_node": servers_per_node},
    )
    topo.validate()
    return topo


def slimfly_valid_q(max_q: int) -> List[int]:
    """Primes q ≡ 1 (mod 4) up to ``max_q`` (valid Slim Fly parameters here)."""
    return [q for q in range(5, max_q + 1) if is_prime(q) and q % 4 == 1]
