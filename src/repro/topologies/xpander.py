"""Xpander (Valadarsky, Dinitz, Schapira; HotNets 2015).

The paper cites Xpander [44] as a data-center proposal confirming its
expanders-win-at-scale finding, so the family belongs in the benchmark
slate.  Xpander builds a near-optimal expander by repeated *k-lifting* of a
complete graph K_{d+1}: a k-lift replaces every node with k copies and every
edge (u, v) with a random perfect matching between u's and v's copies, which
provably preserves expansion with high probability.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive_int


def k_lift(graph: nx.Graph, k: int, rng: np.random.Generator) -> nx.Graph:
    """Random k-lift: node v becomes (v, 0..k-1); edge (u, v) becomes a
    random perfect matching between the copies of u and the copies of v."""
    require_positive_int(k, "k")
    n = graph.number_of_nodes()
    lifted = nx.Graph()
    lifted.add_nodes_from(range(n * k))
    for u, v in graph.edges():
        perm = rng.permutation(k)
        for i in range(k):
            lifted.add_edge(u * k + i, v * k + int(perm[i]))
    return lifted


def xpander(
    degree: int,
    lift: int,
    servers_per_node: int = 1,
    seed: SeedLike = None,
    max_tries: int = 50,
) -> Topology:
    """Xpander: a ``lift``-fold random lift of K_{degree+1}.

    ``(degree + 1) * lift`` switches, each of the given degree.  Lifting is
    retried until the lifted graph is connected (disconnection probability is
    tiny for lift >= 2 but nonzero).
    """
    require_positive_int(degree, "degree")
    require_positive_int(lift, "lift")
    require_positive_int(servers_per_node, "servers_per_node")
    if degree < 2:
        raise ValueError(f"xpander needs degree >= 2, got {degree}")
    rng = ensure_rng(seed)
    base = nx.complete_graph(degree + 1)
    for _ in range(max_tries):
        g = k_lift(base, lift, rng) if lift > 1 else nx.Graph(base)
        if nx.is_connected(g):
            break
    else:  # pragma: no cover - probability ~0
        raise RuntimeError("failed to lift to a connected graph")
    n = g.number_of_nodes()
    topo = Topology(
        name=f"xpander(d={degree},lift={lift})",
        graph=nx.convert_node_labels_to_integers(g),
        servers=np.full(n, servers_per_node, dtype=np.int64),
        family="xpander",
        params={"degree": degree, "lift": lift, "servers_per_node": servers_per_node},
    )
    topo.validate()
    return topo
