"""Dragonfly (Kim et al., ISCA 2008), canonical balanced configuration.

With global-link count h per router the balanced design uses a = 2h routers
per group, p = h servers per router, and g = a*h + 1 groups, so every pair of
groups is joined by exactly one global link.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def dragonfly(h: int) -> Topology:
    """Balanced Dragonfly with ``h`` global links per router.

    * ``g = 2*h*h + 1`` groups of ``a = 2h`` routers;
    * complete graph inside every group;
    * between groups: group G's global port q (0-based, q < g-1) leads to
      group ``q`` if ``q < G`` else ``q + 1`` — i.e. ports are indexed by
      destination group — and port q belongs to router ``q // h``;
    * ``h`` servers on every router.
    """
    require_positive_int(h, "h")
    a = 2 * h
    g_count = a * h + 1
    n = g_count * a

    def router(group: int, idx: int) -> int:
        return group * a + idx

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Intra-group: complete graph on the a routers of each group.
    for grp in range(g_count):
        for i in range(a):
            for j in range(i + 1, a):
                graph.add_edge(router(grp, i), router(grp, j))
    # Global links: one per unordered group pair.  In group G the port for
    # destination D (D != G) is q = D if D < G else D - 1; it belongs to
    # router q // h.
    for src in range(g_count):
        for dst in range(src + 1, g_count):
            q_src = dst - 1  # dst > src always here
            q_dst = src  # src < dst
            graph.add_edge(router(src, q_src // h), router(dst, q_dst // h))
    servers = np.full(n, h, dtype=np.int64)
    topo = Topology(
        name=f"dragonfly(h={h})",
        graph=graph,
        servers=servers,
        family="dragonfly",
        params={"h": h, "a": a, "groups": g_count},
    )
    topo.validate()
    return topo
