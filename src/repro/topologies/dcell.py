"""DCell (Guo et al., SIGCOMM 2008): a recursively defined server-centric DCN.

DCell_0(n) is n servers on one n-port switch.  DCell_k is built from
``t_{k-1} + 1`` copies of DCell_{k-1} (t = servers per copy), with exactly one
server-to-server link between every pair of copies.  Servers route, so they
are switching nodes carrying one terminal each.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_nonnegative_int, require_positive_int


def dcell_server_count(n: int, k: int) -> int:
    """Number of servers t_k in DCell_k built from n-port switches."""
    t = n
    for _ in range(k):
        t = t * (t + 1)
    return t


def dcell_switch_count(n: int, k: int) -> int:
    """Number of mini-switches in DCell_k (one per DCell_0)."""
    return dcell_server_count(n, k) // n


def dcell(n: int, k: int) -> Topology:
    """DCell of level ``k`` with ``n`` servers per mini-switch.

    Uses the standard pairing rule: between sub-DCells i < j of a level-l
    DCell, server with local uid ``j - 1`` in copy i links to server with
    local uid ``i`` in copy j.

    Node numbering: servers ``0 .. t_k - 1`` (uid order), then one switch per
    group of n consecutive servers.
    """
    require_positive_int(n, "n")
    require_nonnegative_int(k, "k")
    if n < 2:
        raise ValueError(f"DCell needs n >= 2 servers per switch, got {n}")
    t_k = dcell_server_count(n, k)
    n_switch = t_k // n
    g = nx.Graph()
    g.add_nodes_from(range(t_k + n_switch))

    # Level-0 star edges: server s belongs to switch s // n.
    for s in range(t_k):
        g.add_edge(s, t_k + s // n)

    def connect_level(base: int, level: int) -> None:
        """Add the level-`level` server links inside the DCell rooted at
        server offset ``base`` (recursion mirrors the construction)."""
        if level == 0:
            return
        t_sub = dcell_server_count(n, level - 1)
        n_copies = t_sub + 1
        for copy in range(n_copies):
            connect_level(base + copy * t_sub, level - 1)
        for i in range(n_copies):
            for j in range(i + 1, n_copies):
                u = base + i * t_sub + (j - 1)
                v = base + j * t_sub + i
                g.add_edge(u, v)

    connect_level(0, k)
    servers = np.zeros(t_k + n_switch, dtype=np.int64)
    servers[:t_k] = 1
    topo = Topology(
        name=f"dcell(n={n},k={k})",
        graph=g,
        servers=servers,
        family="dcell",
        params={"n": n, "k": k},
    )
    topo.validate()
    return topo


def dcell_scale_ladder(n: int, max_servers: int) -> List[Tuple[int, int]]:
    """(n, k) parameter pairs with at most ``max_servers`` servers."""
    ladder = []
    for k in range(0, 4):
        if dcell_server_count(n, k) <= max_servers:
            ladder.append((n, k))
    return ladder
