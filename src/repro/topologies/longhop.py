"""Long Hop networks (Tomic, ANCS 2013): Cayley graphs from binary codes.

Tomic builds topologies as Cayley graphs on GF(2)^dim whose generator sets
come from error-correcting codes, adding "long hop" generators on top of the
hypercube basis to maximize bisection.  For a Cayley graph on GF(2)^dim with
generator set G the full spectrum is available in closed form — the
eigenvalue of character s is

    lambda_s = sum_{g in G} (-1)^{popcount(g & s)},

and every hyperplane bisection's capacity is (n/4) * (|G| - lambda_s).  So
Tomic's "optimal networks from error-correcting codes" objective — maximize
the worst bisection — is exactly: choose generators minimizing
max_{s != 0} lambda_s.  We implement that objective directly with a greedy
selection (documented substitution in DESIGN.md): start from the hypercube
basis (connectivity), then repeatedly add the vector minimizing the
resulting maximum eigenvalue.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from repro.topologies.base import Topology
from repro.utils.validation import require_positive_int


def _hamming_weights(values: np.ndarray, dim: int) -> np.ndarray:
    """Popcount of each value, vectorized over a uint64 array."""
    out = np.zeros(values.shape, dtype=np.int64)
    v = values.copy()
    for _ in range(dim):
        out += (v & 1).astype(np.int64)
        v >>= 1
    return out


def cayley_spectrum(generators: List[int], dim: int) -> np.ndarray:
    """All 2^dim eigenvalues of the Cayley graph on GF(2)^dim.

    ``spectrum[s] = sum_g (-1)^popcount(g & s)``; index 0 is the trivial
    character (value = degree).
    """
    n = 1 << dim
    chars = np.arange(n, dtype=np.uint64)
    gens = np.array(generators, dtype=np.uint64)
    signs = 1 - 2 * (_hamming_weights(chars[:, None] & gens[None, :], dim) % 2)
    return signs.sum(axis=1)


def longhop_generators(dim: int, degree: int) -> List[int]:
    """Bisection-optimal generator set for a Long Hop network.

    Starts from the dim unit vectors and greedily appends the nonzero vector
    that minimizes the resulting maximum nontrivial Cayley eigenvalue
    (= maximizes the worst hyperplane bisection, Tomic's design objective).
    Ties break toward larger Hamming weight, then numerically.
    """
    require_positive_int(dim, "dim")
    require_positive_int(degree, "degree")
    n = 1 << dim
    if degree < dim:
        raise ValueError(
            f"degree {degree} must be >= dim {dim} (hypercube basis included)"
        )
    if degree > n - 1:
        raise ValueError(f"degree {degree} exceeds the {n - 1} nonzero vectors")
    gens = [1 << i for i in range(dim)]
    chosen = set(gens)
    chars = np.arange(n, dtype=np.uint64)
    # Per-candidate sign table: signs[v, s] = +-1 contribution of vector v
    # to character s.  dim <= ~10 keeps this comfortably in memory.
    all_vecs = np.arange(n, dtype=np.uint64)
    signs = 1 - 2 * (_hamming_weights(all_vecs[:, None] & chars[None, :], dim) % 2)
    spectrum = signs[np.array(gens, dtype=np.int64)].sum(axis=0)
    weights = _hamming_weights(all_vecs, dim)
    while len(gens) < degree:
        candidates = np.array(
            [v for v in range(1, n) if v not in chosen], dtype=np.int64
        )
        # Adding candidate v changes the spectrum by its sign row; the merit
        # of v is the resulting max over nontrivial characters.
        new_spec = spectrum[None, 1:] + signs[candidates, 1:]
        merit = new_spec.max(axis=1)
        order = np.lexsort((-candidates, weights[candidates], -merit))
        pick = int(candidates[order[-1]])
        gens.append(pick)
        chosen.add(pick)
        spectrum = spectrum + signs[pick]
    return gens


def longhop(dim: int, degree: int | None = None, servers_per_node: int = 1) -> Topology:
    """Long Hop network on ``2**dim`` switches.

    Parameters
    ----------
    dim:
        Cayley group dimension; the network has ``2**dim`` switches.
    degree:
        Number of generators (switch degree).  Defaults to
        ``dim + ceil(dim / 2)``, matching the moderate over-provisioning of
        Tomic's published designs.
    servers_per_node:
        Terminals per switch.
    """
    require_positive_int(dim, "dim")
    if degree is None:
        degree = dim + (dim + 1) // 2
    gens = longhop_generators(dim, degree)
    n = 1 << dim
    g = nx.Graph()
    g.add_nodes_from(range(n))
    all_nodes = np.arange(n, dtype=np.int64)
    for gen in gens:
        partners = all_nodes ^ gen
        mask = all_nodes < partners
        g.add_edges_from(zip(all_nodes[mask].tolist(), partners[mask].tolist()))
    servers = np.full(n, servers_per_node, dtype=np.int64)
    topo = Topology(
        name=f"longhop(dim={dim},deg={degree})",
        graph=g,
        servers=servers,
        family="longhop",
        params={
            "dim": dim,
            "degree": degree,
            "generators": gens,
            "servers_per_node": servers_per_node,
        },
    )
    topo.validate()
    return topo
