"""Typed events of the streaming experiment runner.

A :meth:`repro.api.Session.stream` call yields a sequence of these events
while the experiment executes:

* :class:`RowEvent` — one result row is final, exactly as it will appear in
  ``ExperimentResult.rows`` (same tuple, same order).
* :class:`ProgressEvent` — solve-job progress: ``done`` jobs resolved
  (solved, cache hit, or error) out of ``total`` submitted so far.  Both
  counters are monotone within one stream; ``total`` grows as later batches
  are submitted.
* :class:`BatchStatsEvent` — one solve batch (a ``solve_many`` call or a
  drained submit/iter stream) finished; carries that batch's delta stats.
* :class:`ShardProgressEvent` — one capacity-coordination round of a
  sharded solve (:mod:`repro.throughput.sharded`) finished; carries the
  round's certified lower/upper bounds and relative gap.
* :class:`ResultEvent` — terminal: the complete
  :class:`~repro.evaluation.runner.ExperimentResult`.  Exactly one per
  stream, always last.

Experiment functions report rows through the ambient sink installed by the
runner: :func:`emit_row` is a no-op outside a streaming run, so the same
code serves the blocking path untouched (and bit-identically).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from repro.evaluation.runner import ExperimentResult


@dataclass(frozen=True)
class RowEvent:
    """One finalized result row (``index`` = 0-based position in ``rows``)."""

    experiment_id: str
    index: int
    row: Sequence[Any]


@dataclass(frozen=True)
class ProgressEvent:
    """Solve-job progress: ``done`` of ``total`` submitted jobs resolved."""

    experiment_id: str
    done: int
    total: int


@dataclass(frozen=True)
class BatchStatsEvent:
    """One solve batch completed; ``stats`` are that batch's deltas."""

    experiment_id: str
    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardProgressEvent:
    """One coordination round of one sharded solve completed.

    ``lower_bound`` is certified feasible, ``upper_bound`` the certified
    metric-relaxation bound; ``relative_gap`` their distance (both bounds
    are monotone across rounds of one solve).
    """

    experiment_id: str
    blocks: int
    round: int
    max_rounds: int
    lower_bound: float
    upper_bound: float
    relative_gap: float


@dataclass(frozen=True)
class ResultEvent:
    """Terminal event: the finished experiment result."""

    experiment_id: str
    result: ExperimentResult
    elapsed_seconds: float = 0.0


ExperimentEvent = Union[
    RowEvent, ProgressEvent, BatchStatsEvent, ShardProgressEvent, ResultEvent
]


class EventSink:
    """Receiver for rows emitted by experiment code.

    The base class ignores everything (the blocking path); the runner
    installs a queue-backed subclass for the duration of a stream.
    """

    def emit_row(self, row: Sequence[Any]) -> None:  # pragma: no cover - no-op
        pass


#: Ambient sink.  A ContextVar (not a module global) so nested or threaded
#: runs cannot clobber each other's stream.
_current_sink: ContextVar[Optional[EventSink]] = ContextVar(
    "repro_event_sink", default=None
)


def emit_row(row: Sequence[Any]) -> Sequence[Any]:
    """Report one finalized result row to the ambient sink, if any.

    Returns the row unchanged so call sites can keep their append
    single-expression: ``rows.append(emit_row((...)))``.  Experiments call
    this the moment a row's values are final; under ``Session.stream`` the
    row surfaces immediately as a :class:`RowEvent`, and everywhere else it
    costs one ContextVar read.
    """
    sink = _current_sink.get()
    if sink is not None:
        sink.emit_row(row)
    return row


@contextmanager
def use_sink(sink: EventSink) -> Iterator[EventSink]:
    """Install ``sink`` as the ambient row sink within the ``with`` block."""
    token = _current_sink.set(sink)
    try:
        yield sink
    finally:
        _current_sink.reset(token)
