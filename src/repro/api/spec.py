"""Declarative experiment registry: :class:`ExperimentSpec` + ``@experiment``.

Every paper artifact is registered by decorating its function::

    @experiment(
        "fig5",
        title="Relative throughput vs servers (structured families)",
        artifact="Figure 5",
        tags=("figure", "sweep"),
        checks=("values_sane",),
    )
    def fig5(scale=None, seed=0) -> ExperimentResult: ...

The decorator returns the function unchanged (direct calls keep working)
and records an :class:`ExperimentSpec` in the module-level :data:`REGISTRY`,
which replaces the hand-maintained ``EXPERIMENTS`` dict: the CLI, the
:class:`~repro.api.Session` runner, and the docs generator all read spec
metadata instead of scraping docstrings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: The primary artifact categories ``repro all --tag`` filters on; specs may
#: carry additional free-form tags (``sweep``, ``cuts``, ...).
PRIMARY_TAGS = ("figure", "table", "theory")


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative record of one paper-artifact experiment.

    Attributes
    ----------
    experiment_id:
        Registry key (``fig5``, ``table1``, ``routing-gap``, ...).
    fn:
        The experiment function, signature ``(scale=None, seed=0)`` returning
        an :class:`~repro.evaluation.runner.ExperimentResult`.
    title:
        Short human title (the result's own title may carry more detail).
    artifact:
        The paper artifact reproduced ("Figure 5", "Table I", "§III-B", ...).
    tags:
        Category tags; conventionally at least one of :data:`PRIMARY_TAGS`
        where applicable, plus free-form refinements.
    scale_sensitive:
        Whether ``REPRO_SCALE`` changes the sweep (fixed-size case studies
        and theorem checks are insensitive).
    checks:
        Names of the shape checks the experiment asserts (documentation for
        EXPERIMENTS.md; conditional checks may be absent from a given run).
    """

    experiment_id: str
    fn: Callable
    title: str
    artifact: str
    tags: Tuple[str, ...] = ()
    scale_sensitive: bool = True
    checks: Tuple[str, ...] = ()

    @property
    def description(self) -> str:
        """First line of the experiment function's docstring."""
        doc = (self.fn.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


def _sort_key(experiment_id: str) -> Tuple[int, int, str]:
    """Natural artifact order: fig1..fig15, then tables, then the rest."""
    m = re.fullmatch(r"fig(\d+)", experiment_id)
    if m:
        return (0, int(m.group(1)), experiment_id)
    m = re.fullmatch(r"table(\d+)", experiment_id)
    if m:
        return (1, int(m.group(1)), experiment_id)
    return (2, 0, experiment_id)


class ExperimentRegistry:
    """Id-keyed collection of :class:`ExperimentSpec`, iterated in artifact
    order (figures numerically, then tables, then named experiments)."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        if spec.experiment_id in self._specs:
            raise ValueError(
                f"experiment id {spec.experiment_id!r} is already registered"
            )
        self._specs[spec.experiment_id] = spec
        return spec

    def unregister(self, experiment_id: str) -> None:
        """Remove a spec (test scaffolding for temporary experiments)."""
        self._specs.pop(experiment_id, None)

    def get(self, experiment_id: str) -> ExperimentSpec:
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(self._specs)}"
            ) from None

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        for experiment_id in self.ids():
            yield self._specs[experiment_id]

    def ids(self) -> List[str]:
        return sorted(self._specs, key=_sort_key)

    def tags(self) -> List[str]:
        """Every tag carried by at least one registered spec, sorted."""
        return sorted({tag for spec in self._specs.values() for tag in spec.tags})

    def filter(self, tag: str) -> List[ExperimentSpec]:
        """Specs carrying ``tag``, in registry order."""
        return [spec for spec in self if tag in spec.tags]

    def as_dict(self) -> Dict[str, Callable]:
        """``{id: fn}`` snapshot in registry order (the legacy shape)."""
        return {spec.experiment_id: spec.fn for spec in self}


#: The process-wide registry.  Populated by importing
#: :mod:`repro.evaluation.experiments` (see :func:`ensure_registered`).
REGISTRY = ExperimentRegistry()


def experiment(
    experiment_id: str,
    *,
    title: str,
    artifact: str,
    tags: Tuple[str, ...] = (),
    scale_sensitive: bool = True,
    checks: Tuple[str, ...] = (),
    registry: Optional[ExperimentRegistry] = None,
) -> Callable[[Callable], Callable]:
    """Register the decorated function as a paper-artifact experiment."""

    def decorate(fn: Callable) -> Callable:
        spec = ExperimentSpec(
            experiment_id=experiment_id,
            fn=fn,
            title=title,
            artifact=artifact,
            tags=tuple(tags),
            scale_sensitive=scale_sensitive,
            checks=tuple(checks),
        )
        (registry if registry is not None else REGISTRY).register(spec)
        fn.spec = spec
        return fn

    return decorate


def ensure_registered() -> ExperimentRegistry:
    """Populate :data:`REGISTRY` by importing the experiment modules.

    Imported lazily (not at :mod:`repro.api` import time) so the api
    package stays import-cycle-free: experiment modules themselves import
    ``experiment`` / ``emit_row`` from here.
    """
    import repro.evaluation.experiments  # noqa: F401  (import registers specs)

    return REGISTRY
