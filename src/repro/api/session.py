"""Session: one solver + one cache handle shared across many experiments.

The paper's artifacts are long LP sweeps; rebuilding a process pool and a
cache connection per figure (the historical ``run_experiment`` contract)
wastes both, and prevents later experiments from hitting earlier
experiments' cached solves within the same process.  A :class:`Session`
owns the :class:`~repro.batch.BatchSolver` and cache for its whole
lifetime::

    with Session(scale="small", workers=4, cache_dir="/tmp/c") as session:
        fig5 = session.run("fig5")            # blocking, like run_experiment
        for event in session.stream("fig10"):  # typed events as solves land
            ...

``Session.run`` is bit-identical to the legacy ``run_experiment`` (which is
now a thin shim over a single-experiment Session).  ``Session.stream``
executes the experiment in a worker thread and yields
:class:`~repro.api.events.RowEvent` / :class:`ProgressEvent` /
:class:`BatchStatsEvent` as solve batches complete, terminated by exactly
one :class:`ResultEvent`; streamed rows are the result's rows, same tuples,
same order.  An experiment failure mid-stream propagates to the consumer
after the events that preceded it.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from contextlib import ExitStack
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.api.events import (
    BatchStatsEvent,
    EventSink,
    ExperimentEvent,
    ProgressEvent,
    ResultEvent,
    RowEvent,
    ShardProgressEvent,
    use_sink,
)
from repro.api.spec import ExperimentSpec, ensure_registered
from repro.batch import (
    DEFAULT_ENGINE_CHOICES,
    BaseResultCache,
    BatchSolver,
    SolveOutcome,
    SolveRequest,
    make_cache,
    use_default_engine,
    use_solver,
)
from repro.evaluation.runner import SCALES, ExperimentResult, ScaleConfig
from repro.throughput.backends import resolve_lp_backend, use_lp_backend
from repro.throughput.sharded import (
    ShardPolicy,
    ShardProgress,
    current_shard_policy,
    use_shard_policy,
    use_shard_progress,
)


class _QueueSink(EventSink):
    """Row sink that forwards events to the stream consumer's queue."""

    def __init__(self, experiment_id: str, q: "queue.SimpleQueue") -> None:
        self.experiment_id = experiment_id
        self.queue = q
        self.n_rows = 0

    def emit_row(self, row: Sequence[Any]) -> None:
        self.queue.put(RowEvent(self.experiment_id, self.n_rows, row))
        self.n_rows += 1


class _StreamError:
    """Wraps an exception raised by the experiment thread."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


_DONE = object()


class Session:
    """Shared solver/cache context for running and streaming experiments.

    Parameters
    ----------
    scale:
        A :class:`ScaleConfig`, a profile name (``"small"`` | ``"medium"``
        | ``"large"``), or ``None`` to defer to ``REPRO_SCALE`` exactly like
        the historical per-call default.
    seed:
        Default master seed for every experiment (overridable per call).
    workers:
        Worker processes for throughput solves (``1``, an int, ``"auto"``).
    cache, cache_dir:
        A :class:`BaseResultCache` backend, or a directory to build one in;
        ``None`` for both disables memoization.
    timeout:
        Optional per-job wall-clock limit, forwarded to the solver.
    engine:
        Default engine override for every solve that does not name one
        explicitly (``"lp"`` | ``"mwu"`` | ``"sharded"`` | ``"auto"``);
        ``None`` keeps each call site's default.  The CLI's ``--engine``
        flag lands here.
    lp_backend:
        Default LP backend for every dense solve that does not name one
        explicitly (a :data:`repro.throughput.LP_BACKENDS` name); ``None``
        keeps the ambient default.  The CLI's ``--lp-backend`` flag lands
        here; the resolved name is frozen into request params, hence into
        cache keys.
    shard_threshold, shard_blocks:
        Shard-policy overrides installed for the session's runs (see
        :class:`~repro.throughput.sharded.ShardPolicy`); ``None`` defers
        to the ambient policy / environment.
    """

    def __init__(
        self,
        scale: Union[ScaleConfig, str, None] = None,
        seed: int = 0,
        workers: Union[int, str] = 1,
        cache: Optional[BaseResultCache] = None,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        timeout: Optional[float] = None,
        engine: Optional[str] = None,
        lp_backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        shard_blocks: Optional[int] = None,
    ) -> None:
        if isinstance(scale, str):
            if scale not in SCALES:
                raise ValueError(
                    f"scale {scale!r} unknown; expected one of {sorted(SCALES)}"
                )
            scale = SCALES[scale]
        self.scale = scale
        self.seed = seed
        if cache is None and cache_dir is not None:
            cache = make_cache(cache_dir)
        self.cache = cache
        if engine is not None and engine not in DEFAULT_ENGINE_CHOICES:
            # Fail at construction like the scale check above — not at the
            # first run(), and never from inside a stream worker thread.
            raise ValueError(
                f"unknown engine {engine!r}; expected one of "
                f"{DEFAULT_ENGINE_CHOICES}"
            )
        self.engine = engine
        if lp_backend is not None:
            # Same construction-time validation contract as engine/scale.
            resolve_lp_backend(lp_backend)
        self.lp_backend = lp_backend
        self._shard_policy: Optional[ShardPolicy] = None
        if shard_threshold is not None or shard_blocks is not None:
            base = current_shard_policy()
            self._shard_policy = ShardPolicy(
                threshold=(
                    shard_threshold
                    if shard_threshold is not None
                    else base.threshold
                ),
                blocks=shard_blocks if shard_blocks is not None else base.blocks,
                prefer=base.prefer,
            )
        self.solver = BatchSolver(workers=workers, cache=cache, timeout=timeout)
        self._active_thread: Optional[threading.Thread] = None
        # Serializes the experiment surface (run/stream/close claim the
        # solver's progress callbacks and stats deltas); query() does not
        # take it — concurrent queries ride the solver's own locks.
        self._exec_lock = threading.RLock()
        self._closed = False

    def _ambient(self) -> ExitStack:
        """Context stack installing this session's solver and overrides."""
        stack = ExitStack()
        stack.enter_context(use_solver(self.solver))
        if self.engine is not None:
            stack.enter_context(use_default_engine(self.engine))
        if self.lp_backend is not None:
            stack.enter_context(use_lp_backend(self.lp_backend))
        if self._shard_policy is not None:
            stack.enter_context(use_shard_policy(self._shard_policy))
        return stack

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Wait for any in-flight stream, then shut the solver down."""
        with self._exec_lock:
            self._join_active()
            self.solver.close()
            self._closed = True

    def _join_active(self) -> None:
        # An abandoned stream generator leaves its experiment thread solving
        # on the shared solver; the next run/stream/close must not race it.
        thread, self._active_thread = self._active_thread, None
        if thread is not None and thread.is_alive():
            thread.join()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("Session is closed")

    # --------------------------------------------------------------- lookup
    @staticmethod
    def spec(experiment_id: str) -> ExperimentSpec:
        """The registered spec for ``experiment_id`` (KeyError if unknown)."""
        return ensure_registered().get(experiment_id)

    @staticmethod
    def ids(tag: Optional[str] = None) -> List[str]:
        """Registered experiment ids, optionally filtered by tag."""
        registry = ensure_registered()
        if tag is None:
            return registry.ids()
        return [spec.experiment_id for spec in registry.filter(tag)]

    # -------------------------------------------------------------- running
    def run(
        self, experiment_id: str, seed: Optional[int] = None
    ) -> ExperimentResult:
        """Run one experiment to completion on the shared solver.

        ``result.extras["batch"]`` holds *this experiment's* solve stats
        (deltas against the shared solver, so a warm experiment late in a
        sweep correctly reports zero solves).
        """
        self._check_open()
        with self._exec_lock:
            self._check_open()
            self._join_active()
            spec = self.spec(experiment_id)
            snap = self.solver.snapshot()
            with self._ambient():
                result = spec.fn(
                    scale=self.scale, seed=self.seed if seed is None else seed
                )
            result.extras["batch"] = self.solver.stats_since(snap)
            return result

    def stream(
        self, experiment_id: str, seed: Optional[int] = None
    ) -> Iterator[ExperimentEvent]:
        """Run one experiment, yielding typed events as it progresses.

        Rows stream with the same values, order, and count as the blocking
        path — the terminal :class:`ResultEvent` carries the identical
        :class:`ExperimentResult` a ``run`` call would have returned.  An
        exception inside the experiment (e.g. a failed solve) is re-raised
        here, after every event that preceded it has been delivered.
        """
        # Validate eagerly (this is not the generator itself) so unknown ids
        # and closed sessions fail at the call, not at first iteration.
        self._check_open()
        self._join_active()
        spec = self.spec(experiment_id)
        return self._stream(spec, experiment_id, seed)

    def _stream(
        self, spec: ExperimentSpec, experiment_id: str, seed: Optional[int]
    ) -> Iterator[ExperimentEvent]:
        # Hold the experiment lock for the stream's whole lifetime (released
        # when the generator is exhausted or closed), so two threads cannot
        # both claim the solver's progress callbacks.  query() calls keep
        # flowing concurrently — they never take this lock.
        with self._exec_lock:
            yield from self._stream_locked(spec, experiment_id, seed)

    def _stream_locked(
        self, spec: ExperimentSpec, experiment_id: str, seed: Optional[int]
    ) -> Iterator[ExperimentEvent]:
        # The worker thread starts lazily, at first iteration — so re-check
        # that the session is still open (close() may have run since the
        # generator was created, and running now would leak a fresh pool),
        # and wait for whichever experiment is already running on the
        # shared solver before claiming it.
        self._check_open()
        self._join_active()
        q: "queue.SimpleQueue" = queue.SimpleQueue()
        sink = _QueueSink(experiment_id, q)

        def work() -> None:
            t0 = time.perf_counter()
            try:
                snap = self.solver.snapshot()
                base_done = snap["solved"] + snap["cache_hits"] + snap["errors"]
                base_requests = snap["requests"]

                def on_progress(solver: BatchSolver) -> None:
                    # Raw counter reads only: this fires per resolved job,
                    # and stats_since() would pay cache I/O (len() is a
                    # COUNT(*) on the sqlite backend) for every solve.
                    done = (
                        solver.n_solved + solver.n_cache_hits + solver.n_errors
                    ) - base_done
                    q.put(
                        ProgressEvent(
                            experiment_id, done, solver.n_requests - base_requests
                        )
                    )

                def on_batch(stats: Dict[str, Any]) -> None:
                    q.put(BatchStatsEvent(experiment_id, stats))

                def on_shard(progress: ShardProgress) -> None:
                    q.put(
                        ShardProgressEvent(
                            experiment_id,
                            blocks=progress.blocks,
                            round=progress.round,
                            max_rounds=progress.max_rounds,
                            lower_bound=progress.lower_bound,
                            upper_bound=progress.upper_bound,
                            relative_gap=progress.relative_gap,
                        )
                    )

                self.solver.progress_callback = on_progress
                self.solver.batch_callback = on_batch
                try:
                    with self._ambient(), use_sink(sink), use_shard_progress(
                        on_shard
                    ):
                        result = spec.fn(
                            scale=self.scale,
                            seed=self.seed if seed is None else seed,
                        )
                finally:
                    self.solver.progress_callback = None
                    self.solver.batch_callback = None
                result.extras["batch"] = self.solver.stats_since(snap)
                if sink.n_rows == 0:
                    # Experiment not yet ported to incremental emission:
                    # surface its rows late so consumers still see every row
                    # exactly once before the terminal event.
                    for row in result.rows:
                        sink.emit_row(row)
                q.put(
                    ResultEvent(experiment_id, result, time.perf_counter() - t0)
                )
            except BaseException as exc:  # noqa: BLE001 - relayed to consumer
                q.put(_StreamError(exc))
            finally:
                q.put(_DONE)

        thread = threading.Thread(
            target=work, name=f"repro-stream-{experiment_id}", daemon=True
        )
        self._active_thread = thread
        thread.start()
        try:
            while True:
                item = q.get()
                if item is _DONE:
                    break
                if isinstance(item, _StreamError):
                    raise item.exc
                yield item
        finally:
            # Normal exhaustion: the thread is finishing; join is instant.
            # Early abandonment: the experiment cannot be cancelled mid-LP,
            # so the thread keeps draining in the background and the next
            # run/stream/close joins it (see _join_active).
            if not thread.is_alive():
                thread.join()
                if self._active_thread is thread:
                    self._active_thread = None

    # -------------------------------------------------------------- querying
    def query(
        self,
        topology: Any,
        tm: Any,
        engine: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        tag: str = "",
    ) -> SolveOutcome:
        """Solve one throughput instance on the shared solver (thread-safe).

        Unlike :meth:`run`/:meth:`stream` — which claim the whole solver and
        therefore serialize — any number of threads may call ``query``
        concurrently: the request goes straight through
        :meth:`~repro.batch.BatchSolver.solve_many`, whose counters, cache,
        and cross-thread single-flight dedupe are lock-protected.  Two
        threads querying the same instance at the same time perform **one**
        solve; the loser gets the winner's cached result.  This is the
        primitive :mod:`repro.service` multiplexes clients onto.

        The session's ambient defaults (engine, LP backend, shard policy)
        apply exactly as they do for experiments, so a query and an
        experiment asking the same instance share one cache entry.
        """
        self._check_open()
        with self._ambient():
            request = SolveRequest(
                topology,
                tm,
                engine=engine,
                params=dict(params or {}),
                tag=tag,
            )
            return self.solver.solve_many([request])[0]

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """Aggregate solve stats across everything this session ran."""
        return self.solver.stats()


def run_experiment(
    experiment_id: str,
    scale: Optional[ScaleConfig] = None,
    seed: int = 0,
    workers: Union[int, str] = 1,
    cache: Optional[BaseResultCache] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> ExperimentResult:
    """Backward-compatible blocking runner: one experiment, one Session.

    Kept so historical call sites (benchmarks, tests, notebooks) work
    unchanged; new code that runs more than one experiment should hold a
    :class:`Session` instead of rebuilding solver and cache per call.
    """
    with Session(
        scale=scale, seed=seed, workers=workers, cache=cache, cache_dir=cache_dir
    ) as session:
        return session.run(experiment_id)
