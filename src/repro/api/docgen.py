"""Generated-docs builders: the EXPERIMENTS.md catalog and the API.md
reference, both derived from live code so they cannot silently go stale.

* :func:`experiments_markdown` renders the experiment catalog from the
  :data:`~repro.api.spec.REGISTRY`; regenerate the committed file with
  ``python -m repro list --markdown > EXPERIMENTS.md``.
* :func:`api_markdown` renders the public-API reference — engine
  guarantees from :data:`repro.throughput.mcf.ENGINE_GUARANTEES`, plus the
  exported surfaces of :mod:`repro.core`, :mod:`repro.api`,
  :mod:`repro.batch`, :mod:`repro.sim`, :mod:`repro.service`, and
  :mod:`repro.lint` with each object's docstring summary; regenerate with
  ``python -m repro list --api-markdown > API.md``.

Tests (and the CI ``docs`` job) assert both committed files match their
regenerated form, so any drift fails loudly.
"""

from __future__ import annotations

import inspect
from typing import Optional

from repro.api.spec import ExperimentRegistry, ensure_registered

_HEADER = """\
# Experiment catalog

Generated from the `repro.api` experiment registry — do not edit by hand;
regenerate with `python -m repro list --markdown > EXPERIMENTS.md`.

Run any experiment with `python -m repro <id>` (see `python -m repro list`);
`repro all --tag figure|table|theory` runs a filtered sweep in one shared
Session, and `--stream` adds live per-row progress.

| id | artifact | title | tags | scale-sensitive |
|----|----------|-------|------|-----------------|
"""


def experiments_markdown(registry: Optional[ExperimentRegistry] = None) -> str:
    """The full EXPERIMENTS.md content for ``registry`` (default: global)."""
    registry = registry if registry is not None else ensure_registered()
    lines = [_HEADER]
    for spec in registry:
        lines.append(
            "| `{id}` | {artifact} | {title} | {tags} | {scale} |\n".format(
                id=spec.experiment_id,
                artifact=spec.artifact,
                title=spec.title,
                tags=", ".join(spec.tags) or "—",
                scale="yes" if spec.scale_sensitive else "no",
            )
        )
    lines.append("\n## Shape checks\n")
    lines.append(
        "\nEach experiment asserts the paper's qualitative claims as named "
        "boolean checks on the reproduced rows (conditional checks may be "
        "absent from a given run at very small scale):\n"
    )
    for spec in registry:
        checks = ", ".join(f"`{c}`" for c in spec.checks) or "(none declared)"
        lines.append(f"\n- **`{spec.experiment_id}`** — {checks}")
        if spec.description:
            lines.append(f"\n  {spec.description}")
    lines.append("\n")
    return "".join(lines)


_API_HEADER = """\
# API reference

Generated from live docstrings and the engine registry — do not edit by
hand; regenerate with `python -m repro list --api-markdown > API.md`.

The layered architecture these objects belong to is described in
[docs/architecture.md](docs/architecture.md); design rationale lives in
[DESIGN.md](DESIGN.md).
"""


def _doc_summary(obj) -> str:
    """First docstring paragraph of ``obj``, collapsed and table-safe.

    Plain data values summarize as their class (or as a constant for
    builtins) — instances carry no docstring of their own.
    """
    if not (inspect.isclass(obj) or inspect.isroutine(obj) or inspect.ismodule(obj)):
        if type(obj).__module__ == "builtins":
            return "(constant)"
        if type(obj).__module__ == "typing":
            return "(type alias)"
        obj = type(obj)
    doc = (inspect.getdoc(obj) or "").strip()
    if not doc:
        return "(undocumented)"
    summary = " ".join(doc.split("\n\n")[0].split())
    if len(summary) > 180:
        summary = summary[:177] + "..."
    return summary.replace("|", "\\|")


def _kind(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isroutine(obj):
        return "function"
    return "data"


def _module_section(title: str, module) -> list:
    """One `## module` section: a name/kind/summary table over ``__all__``.

    ``__all__`` *is* the supported surface — anything not exported there is
    internal and deliberately absent from the reference.
    """
    lines = [f"\n## `{title}`\n\n"]
    lines.append(f"{_doc_summary(module)}\n\n")
    lines.append("| name | kind | summary |\n|------|------|---------|\n")
    for name in module.__all__:
        obj = getattr(module, name)
        lines.append(f"| `{name}` | {_kind(obj)} | {_doc_summary(obj)} |\n")
    return lines


def api_markdown() -> str:
    """The full API.md content: engines, backends, then the module surfaces."""
    import repro.api as api_module
    import repro.batch as batch_module
    import repro.core as core_module
    import importlib

    import repro.lint as lint_module
    import repro.service as service_module
    import repro.sim as sim_module

    # ``import repro.throughput.modelcache as ...`` would bind through
    # ``repro.throughput``, which the top-level package shadows with the
    # ``throughput()`` convenience function; go through importlib.
    modelcache_module = importlib.import_module("repro.throughput.modelcache")
    from repro.throughput.backends import LP_BACKENDS
    from repro.throughput.mcf import ENGINE_GUARANTEES

    lines = [_API_HEADER]
    lines.append("\n## Throughput engines\n\n")
    lines.append(
        "Every solve names an engine; the batch layer dispatches it and "
        "the result cache keys on it.  Guarantees:\n\n"
    )
    lines.append("| engine | guarantee |\n|--------|-----------|\n")
    for name, guarantee in ENGINE_GUARANTEES.items():
        lines.append(f"| `{name}` | {guarantee} |\n")
    lines.append("\n## LP backends\n\n")
    lines.append(
        "The `lp` engine delegates the assembled LP to a registered "
        "backend (`--lp-backend`, `Session(lp_backend=...)`, "
        "`REPRO_LP_BACKEND`); the resolved name is frozen into request "
        "params and cache keys:\n\n"
    )
    lines.append(
        "| backend | linprog method chain | description |\n"
        "|---------|----------------------|-------------|\n"
    )
    for name, backend in sorted(LP_BACKENDS.items()):
        chain = " → ".join(f"`{m}`" for m in backend.methods)
        lines.append(f"| `{name}` | {chain} | {backend.description} |\n")
    lines.extend(_module_section("repro.core", core_module))
    lines.extend(_module_section("repro.api", api_module))
    lines.extend(_module_section("repro.batch", batch_module))
    lines.extend(
        _module_section("repro.throughput.modelcache", modelcache_module)
    )
    lines.extend(_module_section("repro.sim", sim_module))
    lines.extend(_module_section("repro.service", service_module))
    lines.extend(_module_section("repro.lint", lint_module))
    return "".join(lines)
