"""EXPERIMENTS.md generator, driven by the :data:`~repro.api.spec.REGISTRY`.

``python -m repro list --markdown > EXPERIMENTS.md`` regenerates the
committed catalog; a test asserts the committed file is never stale.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import ExperimentRegistry, ensure_registered

_HEADER = """\
# Experiment catalog

Generated from the `repro.api` experiment registry — do not edit by hand;
regenerate with `python -m repro list --markdown > EXPERIMENTS.md`.

Run any experiment with `python -m repro <id>` (see `python -m repro list`);
`repro all --tag figure|table|theory` runs a filtered sweep in one shared
Session, and `--stream` adds live per-row progress.

| id | artifact | title | tags | scale-sensitive |
|----|----------|-------|------|-----------------|
"""


def experiments_markdown(registry: Optional[ExperimentRegistry] = None) -> str:
    """The full EXPERIMENTS.md content for ``registry`` (default: global)."""
    registry = registry if registry is not None else ensure_registered()
    lines = [_HEADER]
    for spec in registry:
        lines.append(
            "| `{id}` | {artifact} | {title} | {tags} | {scale} |\n".format(
                id=spec.experiment_id,
                artifact=spec.artifact,
                title=spec.title,
                tags=", ".join(spec.tags) or "—",
                scale="yes" if spec.scale_sensitive else "no",
            )
        )
    lines.append("\n## Shape checks\n")
    lines.append(
        "\nEach experiment asserts the paper's qualitative claims as named "
        "boolean checks on the reproduced rows (conditional checks may be "
        "absent from a given run at very small scale):\n"
    )
    for spec in registry:
        checks = ", ".join(f"`{c}`" for c in spec.checks) or "(none declared)"
        lines.append(f"\n- **`{spec.experiment_id}`** — {checks}")
        if spec.description:
            lines.append(f"\n  {spec.description}")
    lines.append("\n")
    return "".join(lines)
