"""Public experiment API: declarative registry + session-oriented runner.

Two first-class objects replace the historical ``EXPERIMENTS`` dict and
per-call ``run_experiment`` plumbing:

* :class:`ExperimentSpec` — a declarative record (id, title, paper
  artifact, tags, scale sensitivity, shape checks) registered with the
  :func:`experiment` decorator into :data:`REGISTRY`.
* :class:`Session` — a context manager owning the scale, seed, one shared
  :class:`~repro.batch.BatchSolver` and one cache handle across many
  experiments, with blocking :meth:`Session.run` and event-streaming
  :meth:`Session.stream` (:class:`RowEvent`, :class:`ProgressEvent`,
  :class:`BatchStatsEvent`, :class:`ResultEvent`).

See DESIGN.md, "Session and streaming API".
"""

from repro.api.events import (
    BatchStatsEvent,
    EventSink,
    ExperimentEvent,
    ProgressEvent,
    ResultEvent,
    RowEvent,
    ShardProgressEvent,
    emit_row,
    use_sink,
)
from repro.api.session import Session, run_experiment
from repro.api.spec import (
    PRIMARY_TAGS,
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    ensure_registered,
    experiment,
)

__all__ = [
    "BatchStatsEvent",
    "EventSink",
    "ExperimentEvent",
    "ExperimentRegistry",
    "ExperimentSpec",
    "PRIMARY_TAGS",
    "ProgressEvent",
    "REGISTRY",
    "ResultEvent",
    "RowEvent",
    "Session",
    "ShardProgressEvent",
    "emit_row",
    "ensure_registered",
    "experiment",
    "run_experiment",
    "use_sink",
]
