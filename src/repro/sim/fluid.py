"""Time-stepped fluid dynamics on top of the max-min allocator.

:class:`FluidSimulation` runs a population of finite-volume flows over a
fixed-route instance through discrete time steps.  At each step the
equilibrium rates of the currently-active flows come from the same
progressive-filling allocator the ``sim`` engine uses; actual sending
rates relax toward that equilibrium with a first-order lag controlled by
the per-link delay knob — flows on longer routes ramp more slowly, the
fluid caricature of TCP's RTT-bound window growth (cf. the achieved-vs-
nominal gap studied in arXiv:0907.3710).  With ``link_delay=0`` rates
jump straight to equilibrium and a static population reproduces the
engine's allocation exactly after one step.

Flows arrive via :meth:`add_flow` (a commodity plus a volume to deliver)
and depart when their remaining volume hits zero; departures free
capacity that the next step's allocation immediately redistributes.  The
whole loop is array-native — routes compile once per distinct commodity
set, rates come from vectorized allocations, and remaining volumes update
in bulk — so stepping rate (flows × steps / second) is a stress benchmark
for the compiled core (``benchmarks/test_sim.py``).

Determinism: flow ids are assigned by arrival order, the route cache is
keyed on sorted commodity ids, and nothing reads a clock or RNG — equal
call sequences produce bit-identical trajectories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import ArcGraph, RouteSet, as_arcgraph, compile_routes
from repro.sim.allocator import maxmin_allocate


@dataclass
class FlowState:
    """One finite-volume flow in the simulation."""

    flow_id: int
    src: int
    dst: int
    volume: float  # remaining volume to deliver
    rate: float = 0.0  # current sending rate (lags the fair share)
    delivered: float = 0.0
    arrived_at: float = 0.0
    departed_at: Optional[float] = None


class FluidSimulation:
    """Discrete-time fluid simulation of max-min fair flows.

    Parameters
    ----------
    topology:
        A :class:`~repro.topologies.base.Topology` or compiled
        :class:`~repro.core.ArcGraph`.
    routing, k:
        Route-set parameters, as for the ``sim`` engine.
    link_delay:
        Per-link delay in time units.  A flow whose route spans ``h``
        weighted hops relaxes toward its fair share with time constant
        ``h * link_delay``; ``0.0`` (default) disables the lag entirely.
    """

    def __init__(
        self,
        topology,
        routing: str = "ecmp",
        k: Optional[int] = None,
        link_delay: float = 0.0,
    ) -> None:
        self.graph: ArcGraph = as_arcgraph(topology)
        self.routing = routing
        self.k = k
        self.link_delay = float(link_delay)
        self.now = 0.0
        self.steps = 0
        self._next_id = 0
        self._active: Dict[int, FlowState] = {}
        self.departed: List[FlowState] = []
        self._route_cache: Dict[Tuple[Tuple[int, int], ...], RouteSet] = {}
        self._last_spans: Dict[Tuple[int, int], float] = {}

    # -- population -----------------------------------------------------

    def add_flow(self, src: int, dst: int, volume: float) -> int:
        """Admit a flow carrying ``volume`` from ``src`` to ``dst``."""
        if volume <= 0 or not math.isfinite(volume):
            raise ValueError(f"flow volume must be positive, got {volume}")
        if src == dst:
            raise ValueError("flow endpoints must differ")
        flow_id = self._next_id
        self._next_id += 1
        self._active[flow_id] = FlowState(
            flow_id=flow_id,
            src=int(src),
            dst=int(dst),
            volume=float(volume),
            arrived_at=self.now,
        )
        return flow_id

    def remove_flow(self, flow_id: int) -> FlowState:
        """Withdraw an active flow before it completes (it still departs)."""
        state = self._active.pop(flow_id)
        state.departed_at = self.now
        self.departed.append(state)
        return state

    @property
    def n_active(self) -> int:
        return len(self._active)

    def active_flows(self) -> List[FlowState]:
        """Active flows in arrival order."""
        return [self._active[fid] for fid in sorted(self._active)]

    # -- dynamics -------------------------------------------------------

    def _routes_for(self, flows: List[FlowState]) -> RouteSet:
        """Route set for the distinct (src, dst) pairs of ``flows``.

        Cached per commodity set: a churn loop whose flows revisit the
        same pairs compiles routes once, which is what keeps the stepping
        benchmark's inner loop allocation-only.
        """
        pairs = sorted({(f.src, f.dst) for f in flows})
        key = tuple(pairs)
        routes = self._route_cache.get(key)
        if routes is None:
            srcs = np.asarray([p[0] for p in pairs], dtype=np.int64)
            dsts = np.asarray([p[1] for p in pairs], dtype=np.int64)
            # Unit demands: routes depend on the (src, dst) pairs alone;
            # live flow counts rescale the weights per step in fair_rates,
            # so the cached set stays valid as the population churns.
            routes = compile_routes(
                self.graph,
                (srcs, dsts, np.ones(len(pairs))),
                routing=self.routing,
                k=self.k,
            )
            self._route_cache[key] = routes
        return routes

    def fair_rates(self) -> Dict[int, float]:
        """Equilibrium max-min rate of each active flow at this instant.

        Flows of one commodity share its allocation equally (they are
        indistinguishable fluid), so the commodity demand handed to the
        allocator is its live flow count; an unroutable commodity's flows
        get rate 0 and simply never drain (callers can withdraw them).
        """
        flows = self.active_flows()
        if not flows:
            return {}
        routes = self._routes_for(flows)
        pairs = sorted({(f.src, f.dst) for f in flows})
        index = {p: i for i, p in enumerate(pairs)}
        counts = np.zeros(len(pairs))
        for f in flows:
            counts[index[(f.src, f.dst)]] += 1.0
        # Scale subflow weights by live flow counts: weight = count * share.
        scaled = RouteSet(
            n_arcs=routes.n_arcs,
            srcs=routes.srcs,
            dsts=routes.dsts,
            demands=counts,
            sub_commodity=routes.sub_commodity,
            sub_weight=routes.sub_weight * counts[routes.sub_commodity],
            incidence=routes.incidence,
            routing=routes.routing,
            k=routes.k,
        )
        alloc = maxmin_allocate(scaled, self.graph.caps)
        per_commodity = alloc.ratios  # rate per flow of each commodity
        spans = np.zeros(len(pairs))
        np.add.at(spans, routes.sub_commodity, routes.sub_arc_span())
        self._last_spans = {p: float(spans[i]) for p, i in index.items()}
        return {
            f.flow_id: float(per_commodity[index[(f.src, f.dst)]]) for f in flows
        }

    def step(self, dt: float) -> List[FlowState]:
        """Advance time by ``dt``; returns flows that completed this step.

        Rates relax toward the instantaneous fair share with per-flow
        smoothing ``alpha = dt / (dt + hops * link_delay)`` (1.0 when
        ``link_delay`` is 0), then volumes drain at the relaxed rate,
        capped at the remaining volume.  Completed flows depart at the end
        of the step; capacity they held is redistributed on the next step,
        matching the one-step reaction lag of a real transport loop.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        targets = self.fair_rates()
        finished: List[FlowState] = []
        for fid in sorted(targets):
            state = self._active[fid]
            target = targets[fid]
            if self.link_delay > 0.0:
                hops = self._last_spans.get((state.src, state.dst), 1.0)
                alpha = dt / (dt + hops * self.link_delay)
                state.rate += alpha * (target - state.rate)
            else:
                state.rate = target
            sent = min(state.rate * dt, state.volume)
            state.volume -= sent
            state.delivered += sent
            if state.volume <= 0.0:
                finished.append(state)
        self.now += dt
        self.steps += 1
        for state in finished:
            del self._active[state.flow_id]
            state.departed_at = self.now
            state.rate = 0.0
            self.departed.append(state)
        return finished

    def run_until_drained(
        self, dt: float, max_steps: int = 100_000
    ) -> int:
        """Step until every flow departs; returns the number of steps."""
        start = self.steps
        while self._active:
            if self.steps - start >= max_steps:
                raise RuntimeError(
                    f"simulation did not drain within {max_steps} steps"
                )
            self.step(dt)
        return self.steps - start
