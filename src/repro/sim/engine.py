"""The ``sim`` throughput engine: achieved max-min throughput over fixed routes.

:func:`solve_throughput_sim` compiles the instance's route set
(:func:`repro.core.compile_routes` — ECMP equal-split shortest paths by
default, or ``k`` shortest paths with ``routing="ksp"``), runs the
progressive-filling allocator (:mod:`repro.sim.allocator`), and reports
``min_i(achieved_i / demand_i)`` as a :class:`ThroughputResult` — the same
objective the LP maximizes, so sim and lp values compare directly.

The allocation is a feasible multicommodity flow by construction, so
**sim ≤ lp always** (the differential harness fuzzes this sandwich).  Sim
answers a different question than the LP: not "what could an omniscient
router achieve" but "what do max-min fair flows on fixed routes actually
capture" — the gap between the two is the routing/fairness headroom the
``sim-gap`` experiment measures.

Route parameters come from :func:`resolve_sim_params` (``REPRO_SIM_ROUTING``
/ ``REPRO_SIM_K`` knobs), which the batch layer calls at request
construction so the resolved values are frozen into cache keys.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, Optional

from repro.core import as_arcgraph, compile_routes
from repro.core.routes import DEFAULT_KSP_K, ROUTING_MODES
from repro.sim.allocator import maxmin_allocate
from repro.throughput.lp import ThroughputResult
from repro.utils.envknobs import knob_int, knob_str


def resolve_sim_params(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Freeze the route parameters of a ``sim`` request into its params.

    Resolution order: explicit param > environment knob > built-in default
    (``ecmp``).  ``k`` is only meaningful — and only kept — under ``ksp``
    routing, so two requests that differ in an irrelevant ``k`` cannot
    produce distinct cache keys for the same computation.  Mirrors
    :func:`repro.throughput.backends.normalize_lp_backend_param` /
    :func:`repro.throughput.sharded.resolve_shard_params`.
    """
    params = dict(params or {})
    routing = params.get("routing") or knob_str("REPRO_SIM_ROUTING", "ecmp")
    if routing not in ROUTING_MODES:
        raise ValueError(
            f"unknown sim routing {routing!r}; expected one of {ROUTING_MODES}"
        )
    params["routing"] = routing
    if routing == "ksp":
        k = params.get("k")
        if k is None:
            k = knob_int("REPRO_SIM_K", DEFAULT_KSP_K)
        k = int(k)
        if k < 1:
            raise ValueError(f"sim k must be >= 1, got {k}")
        params["k"] = k
    else:
        params.pop("k", None)
    return params


def solve_throughput_sim(
    topology,
    tm,
    routing: Optional[str] = None,
    k: Optional[int] = None,
) -> ThroughputResult:
    """Simulated achieved throughput of ``tm`` on ``topology``.

    Accepts a :class:`~repro.topologies.base.Topology` or a bare
    :class:`~repro.core.ArcGraph` (the service's upload path).  Follows the
    library's edge-case conventions: a TM with no demand yields ``NaN``
    (0/0 per :func:`repro.utils.numeric.safe_ratio`), and an instance where
    some commodity cannot reach its destination yields ``0.0``.
    """
    started = time.perf_counter()
    explicit: Dict[str, Any] = {}
    if routing is not None:
        explicit["routing"] = routing
    if k is not None:
        explicit["k"] = k
    resolved = resolve_sim_params(explicit)
    routing = resolved["routing"]
    k = resolved.get("k")
    ag = as_arcgraph(topology)
    meta: Dict[str, Any] = {"routing": routing}
    if k is not None:
        meta["k"] = k
    if tm.total_demand() <= 0:
        meta["status"] = "zero-demand"
        return ThroughputResult(
            value=math.nan,
            engine="sim",
            solve_seconds=time.perf_counter() - started,
            meta=meta,
        )
    routes = compile_routes(ag, tm, routing=routing, k=k)
    if not routes.routable().all():
        meta["status"] = "unroutable-commodity"
        meta["n_unroutable"] = int((~routes.routable()).sum())
        return ThroughputResult(
            value=0.0,
            engine="sim",
            n_variables=routes.n_subflows,
            n_constraints=routes.n_arcs,
            solve_seconds=time.perf_counter() - started,
            meta=meta,
        )
    alloc = maxmin_allocate(routes, ag.caps)
    meta["status"] = "ok"
    meta["rounds"] = alloc.rounds
    meta["n_saturated"] = int(alloc.saturated.sum())
    meta["max_ratio"] = float(alloc.ratios.max())
    return ThroughputResult(
        value=alloc.value,
        engine="sim",
        n_variables=routes.n_subflows,
        n_constraints=routes.n_arcs,
        solve_seconds=time.perf_counter() - started,
        meta=meta,
    )
