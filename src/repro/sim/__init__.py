"""Flow-level fluid simulator: achieved throughput over fixed routes.

The LP engines answer "what could an omniscient router achieve"; this
package answers "what do max-min fair flows on *fixed* routes actually
capture".  Three layers:

* :mod:`repro.sim.allocator` — vectorized progressive-filling max-min
  fair allocation over a compiled :class:`~repro.core.RouteSet`.
* :mod:`repro.sim.engine` — the ``sim`` throughput engine: one static
  allocation reported as a :class:`~repro.throughput.lp.ThroughputResult`
  (feasible by construction, so sim ≤ lp always).  Registered in
  :data:`repro.batch.BATCH_ENGINES`; route params resolve through
  ``REPRO_SIM_ROUTING`` / ``REPRO_SIM_K`` and freeze into cache keys.
* :mod:`repro.sim.fluid` — time-stepped arrivals/departures with an
  optional per-link delay that throttles ramp-up.

Everything is array-native on the compiled core (no networkx — lint rule
R005 covers this package) and fully deterministic.  See DESIGN.md
"Fluid simulator".
"""

from repro.sim.allocator import Allocation, maxmin_allocate
from repro.sim.engine import resolve_sim_params, solve_throughput_sim
from repro.sim.fluid import FlowState, FluidSimulation

__all__ = [
    "Allocation",
    "maxmin_allocate",
    "resolve_sim_params",
    "solve_throughput_sim",
    "FlowState",
    "FluidSimulation",
]
