"""Progressive-filling max-min fair rate allocation over a fixed route set.

The classic water-filling construction: every subflow's rate rises at a
speed proportional to its demand share until some arc saturates; subflows
crossing a saturated arc freeze at their current *level* (rate per unit
demand share) and the rest keep climbing.  The result is the unique
max-min fair allocation for the given routes — no subflow's level can be
raised without lowering the level of a subflow that is at most as high
(each frozen subflow crosses a saturated arc on which its level is
maximal; that arc is the fairness certificate the property tests check).

Everything is vectorized over the route set's arc×subflow CSR incidence:
each round is one sparse matvec (per-arc load slope), one masked min (the
next saturation time), and CSR row slices to freeze the subflows crossing
newly saturated arcs.  Each round saturates at least one arc, so there
are at most ``n_arcs`` rounds of O(nnz) work — no per-flow Python loop,
no networkx (lint rule R005 covers this package), no randomness, and no
dependence on flow or arc iteration order beyond the canonical sorted
arrays themselves: reruns are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.routes import RouteSet

#: Relative slack used when deciding that an arc has saturated in the
#: current round; keeps simultaneous bottlenecks (the common symmetric
#: case) in one round instead of splitting them across float-noise deltas.
_SAT_RTOL = 1e-12


@dataclass(frozen=True)
class Allocation:
    """One max-min allocation: per-subflow levels plus derived views.

    Attributes
    ----------
    levels:
        Rate per unit weight of each subflow (the water-filling level it
        froze at).  ``rates = sub_weight * levels`` are absolute rates.
    rates:
        Absolute subflow rates (demand share × level).
    ratios:
        Per-commodity achieved fraction of demand: the sum of the
        commodity's subflow rates divided by its demand.  Unroutable
        commodities (no subflows) get ratio 0.
    value:
        ``min(ratios)`` — the achieved concurrent-throughput fraction,
        directly comparable to the LP objective (0.0 when some commodity
        is unroutable; the engine maps the no-commodities case to NaN
        before calling the allocator).
    arc_load:
        Total load per arc under ``rates``; feasible by construction
        (``arc_load <= caps`` up to float rounding).
    saturated:
        Boolean mask of arcs that bottlenecked some subflow.
    rounds:
        Water-filling rounds executed (≤ number of loaded arcs).
    """

    levels: np.ndarray
    rates: np.ndarray
    ratios: np.ndarray
    value: float
    arc_load: np.ndarray
    saturated: np.ndarray
    rounds: int


def maxmin_allocate(routes: RouteSet, caps: np.ndarray) -> Allocation:
    """Max-min fair levels for ``routes`` under per-arc capacities ``caps``.

    ``caps`` must align with the arc ids of the graph the routes were
    compiled on.  Routes only cross positive-capacity arcs, so every
    subflow meets a finite bottleneck and the filling terminates.
    """
    caps = np.asarray(caps, dtype=np.float64)
    if caps.shape != (routes.n_arcs,):
        raise ValueError(
            f"caps shape {caps.shape} does not match n_arcs={routes.n_arcs}"
        )
    n_sub = routes.n_subflows
    weighted = routes.weighted_incidence()
    levels = np.zeros(n_sub)
    if n_sub == 0:
        return _finish(routes, weighted, caps, levels, rounds=0)

    active = np.ones(n_sub, dtype=bool)
    residual = caps.astype(np.float64, copy=True)
    saturated = np.zeros(routes.n_arcs, dtype=bool)
    level = 0.0
    rounds = 0
    indptr, indices = weighted.indptr, weighted.indices
    while active.any():
        rounds += 1
        slope = weighted @ active.astype(np.float64)
        loaded = np.flatnonzero(slope > 0.0)
        if loaded.size == 0:  # pragma: no cover - every subflow is loaded
            break
        times = residual[loaded] / slope[loaded]
        delta = float(times.min())
        level += delta
        residual[loaded] -= delta * slope[loaded]
        newly = loaded[times <= delta * (1.0 + _SAT_RTOL)]
        residual[newly] = 0.0
        saturated[newly] = True
        frozen = np.unique(
            np.concatenate([indices[indptr[a] : indptr[a + 1]] for a in newly])
        )
        frozen = frozen[active[frozen]]
        levels[frozen] = level
        active[frozen] = False
    return _finish(routes, weighted, caps, levels, rounds, saturated)


def _finish(
    routes: RouteSet,
    weighted: sp.csr_matrix,
    caps: np.ndarray,
    levels: np.ndarray,
    rounds: int,
    saturated: np.ndarray = None,
) -> Allocation:
    rates = routes.sub_weight * levels
    achieved = np.zeros(routes.n_commodities)
    np.add.at(achieved, routes.sub_commodity, rates)
    with np.errstate(invalid="ignore"):
        ratios = np.where(routes.demands > 0, achieved / routes.demands, 0.0)
    value = float(ratios.min()) if ratios.size else 0.0
    arc_load = np.asarray(weighted @ levels).ravel()
    if saturated is None:
        saturated = np.zeros(routes.n_arcs, dtype=bool)
    for arr in (levels, rates, ratios, arc_load, saturated):
        arr.flags.writeable = False
    return Allocation(
        levels=levels,
        rates=rates,
        ratios=ratios,
        value=value,
        arc_load=arc_load,
        saturated=saturated,
        rounds=rounds,
    )
