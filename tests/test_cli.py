"""Tests for the CLI and the experiment registry."""

import json

import pytest

import repro.cli
from repro.cli import build_parser, main
from repro.evaluation.experiments import EXPERIMENTS, run_experiment
from repro.evaluation.runner import ExperimentResult

EXPECTED_IDS = {
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "table1",
    "table2",
    "butterfly25",
    "theorem2",
    "ablation-lp",
    "cut-accuracy",
    "routing-gap",
    "sim-gap",
    "whatif-failures",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_all_have_docstrings(self):
        for fn in EXPERIMENTS.values():
            assert fn.__doc__, f"{fn.__name__} lacks a docstring"


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPECTED_IDS:
            assert exp_id in out

    def test_list_prints_spec_metadata_not_docstrings(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "[figure,sweep]" in out
        assert "[theory]" in out

    def test_list_verbose(self, capsys):
        assert main(["list", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "artifact: Figure 5" in out
        assert "checks:" in out
        assert "scale-sensitive: no" in out

    def test_list_markdown_matches_generator(self, capsys):
        from repro.api.docgen import experiments_markdown

        assert main(["list", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out == experiments_markdown()

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_parser_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4", "--scale", "medium", "--seed", "3"])
        assert args.scale == "medium"
        assert args.seed == 3

    def test_parser_batch_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["all", "--workers", "auto", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert isinstance(args.workers, int) and args.workers >= 1
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache
        assert parser.parse_args(["all", "--workers", "3"]).workers == 3
        with pytest.raises(SystemExit):
            parser.parse_args(["all", "--workers", "banana"])
        with pytest.raises(SystemExit):
            parser.parse_args(["all", "--workers", "0"])

    def test_parser_cache_backend_and_cap_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "fig4",
                "--cache-backend", "sqlite",
                "--cache-max-entries", "500",
                "--cache-max-mb", "16",
            ]
        )
        assert args.cache_backend == "sqlite"
        assert args.cache_max_entries == 500
        assert args.cache_max_mb == 16.0
        defaults = parser.parse_args(["fig4"])
        assert defaults.cache_backend is None
        assert defaults.cache_max_entries is None and defaults.cache_max_mb is None
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--cache-backend", "postgres"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--cache-max-entries", "0"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--cache-max-mb", "0"])

    def test_run_fast_experiment(self, capsys, tmp_path):
        # butterfly25 is the cheapest full artifact; run it end-to-end.
        code = main(["butterfly25", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "flattened butterfly" in out
        assert "shape checks" in out
        assert code == 0

    def test_json_written_for_every_experiment_id(self, monkeypatch, tmp_path, capsys):
        def fake_run(self, exp_id, seed=None):
            return ExperimentResult(
                experiment_id=exp_id,
                title=f"stub {exp_id}",
                headers=["x"],
                rows=[(1,)],
                checks={"ok": True},
                extras={"batch": {"solved": 0, "cache_hits": 0, "errors": 0}},
            )

        monkeypatch.setattr(repro.cli.Session, "run", fake_run)
        out_dir = tmp_path / "json"
        code = main(["all", "--no-cache", "--json", str(out_dir)])
        capsys.readouterr()
        assert code == 0
        for exp_id in EXPERIMENTS:
            path = out_dir / f"{exp_id}.json"
            assert path.exists(), f"missing JSON export for {exp_id}"
            doc = json.loads(path.read_text())
            assert doc["experiment_id"] == exp_id
            assert doc["extras"]["batch"]["solved"] == 0

    def test_all_reports_aggregate_session_stats(self, monkeypatch, capsys):
        def fake_run(self, exp_id, seed=None):
            return ExperimentResult(
                experiment_id=exp_id,
                title=f"stub {exp_id}",
                headers=["x"],
                rows=[(1,)],
                checks={"ok": True},
            )

        monkeypatch.setattr(repro.cli.Session, "run", fake_run)
        assert main(["all", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert f"[all: {len(EXPERIMENTS)} experiments in" in out
        assert "0 solved, 0 cache hits, 0 errors]" in out

    def test_tag_filter_selects_subset(self, monkeypatch, capsys):
        ran = []

        def fake_run(self, exp_id, seed=None):
            ran.append(exp_id)
            return ExperimentResult(
                experiment_id=exp_id,
                title=f"stub {exp_id}",
                headers=["x"],
                rows=[(1,)],
                checks={"ok": True},
            )

        monkeypatch.setattr(repro.cli.Session, "run", fake_run)
        assert main(["all", "--no-cache", "--tag", "theory"]) == 0
        capsys.readouterr()
        assert "theorem2" in ran and "fig1" in ran
        assert "fig5" not in ran

    def test_tag_validation(self, capsys):
        with pytest.raises(SystemExit):
            main(["all", "--no-cache", "--tag", "nonsense"])
        assert "unknown --tag" in capsys.readouterr().err
        # --tag is rejected (not silently ignored) for every other command.
        for argv in (["fig4", "--tag", "figure"], ["list", "--tag", "figure"],
                     ["cache", "--tag", "figure"]):
            with pytest.raises(SystemExit):
                main(argv)
            assert "only valid with 'all'" in capsys.readouterr().err

    def test_list_only_flags_rejected_elsewhere(self, capsys):
        # Dropping --markdown silently would instead launch a full sweep.
        for argv in (["all", "--markdown"], ["fig4", "--verbose"],
                     ["cache", "--markdown"], ["all", "--api-markdown"]):
            with pytest.raises(SystemExit):
                main(argv)
            assert "only valid with 'list'" in capsys.readouterr().err

    def test_list_api_markdown_matches_generator(self, capsys):
        from repro.api.docgen import api_markdown

        assert main(["list", "--api-markdown"]) == 0
        assert capsys.readouterr().out == api_markdown()

    def test_parser_engine_and_shard_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig2", "--engine", "sharded", "--shard-threshold", "5000",
             "--shard-blocks", "4"]
        )
        assert args.engine == "sharded"
        assert args.shard_threshold == 5000
        assert args.shard_blocks == 4
        defaults = parser.parse_args(["fig2"])
        assert defaults.engine is None
        assert defaults.shard_threshold is None and defaults.shard_blocks is None
        for engine in ("lp", "mwu", "sharded", "auto"):
            assert parser.parse_args(["fig2", "--engine", engine]).engine == engine
        with pytest.raises(SystemExit):
            parser.parse_args(["fig2", "--engine", "simplex"])
        with pytest.raises(SystemExit):
            # The path-restricted LP computes a different quantity; it is
            # not a drop-in default engine.
            parser.parse_args(["fig2", "--engine", "paths"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig2", "--shard-threshold", "0"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig2", "--shard-blocks", "0"])

    def test_engine_override_runs_sharded(self, tmp_path, capsys):
        # End-to-end: a tiny fixed-size experiment under --engine sharded
        # produces identical rows and streams shard-round progress.
        code = main(["butterfly25", "--no-cache"])
        dense_out = capsys.readouterr().out
        code2 = main([
            "butterfly25", "--engine", "sharded", "--shard-blocks", "2",
            "--stream", "--cache-dir", str(tmp_path),
        ])
        sharded_out = capsys.readouterr().out
        assert code == 0 and code2 == 0
        assert "shard round" in sharded_out
        dense_rows = [l for l in dense_out.splitlines() if l.startswith("|")]
        sharded_rows = [l for l in sharded_out.splitlines() if l.startswith("|")]
        assert dense_rows == sharded_rows

    def test_stream_prints_rows_before_result(self, tmp_path, capsys):
        code = main(["butterfly25", "--stream", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        lines = out.splitlines()
        first_row = next(i for i, l in enumerate(lines) if "] row 1:" in l)
        finished = next(i for i, l in enumerate(lines) if "finished in" in l)
        assert first_row < finished
        assert any("solves:" in l for l in lines[:first_row + 1])


class TestCacheCommand:
    def test_cache_action_rejected_for_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["theorem2", "clear"])
        err = capsys.readouterr().err
        assert "only valid after 'cache'" in err

    def test_stats_empty(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 0" in out
        assert "backend    : jsonl" in out
        assert "corrupt    : 0 line(s) skipped" in out

    def test_stats_reports_corrupt_lines(self, tmp_path, capsys):
        (tmp_path / "results.jsonl").write_text("{torn line\n")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt    : 1 line(s) skipped" in out

    def test_sqlite_backend_stats_and_clear(self, tmp_path, capsys):
        base = ["--cache-dir", str(tmp_path), "--cache-backend", "sqlite"]
        assert main(["butterfly25"] + base) == 0
        capsys.readouterr()
        assert main(["cache"] + base) == 0
        out = capsys.readouterr().out
        assert "backend    : sqlite" in out
        assert "entries    : 0" not in out
        assert main(["cache", "clear"] + base) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache"] + base) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_stats_and_clear_after_run(self, tmp_path, capsys):
        # theorem2 routes its solves through the batch layer -> cache fills.
        assert main(["theorem2", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 0" not in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries    : 0" in capsys.readouterr().out


class TestExperimentResult:
    def test_render_contains_rows_and_checks(self):
        from repro.evaluation.runner import ExperimentResult

        res = ExperimentResult(
            experiment_id="x",
            title="T",
            headers=["a", "b"],
            rows=[(1, 2.5)],
            checks={"ok": True, "bad": False},
            notes="note",
        )
        text = res.render()
        assert "T" in text and "2.500" in text
        assert "ok=PASS" in text and "bad=FAIL" in text
        assert not res.all_checks_pass()
