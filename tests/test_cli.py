"""Tests for the CLI and the experiment registry."""

import pytest

from repro.cli import build_parser, main
from repro.evaluation.experiments import EXPERIMENTS, run_experiment

EXPECTED_IDS = {
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "table1",
    "table2",
    "butterfly25",
    "theorem2",
    "ablation-lp",
    "cut-accuracy",
    "routing-gap",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_all_have_docstrings(self):
        for fn in EXPERIMENTS.values():
            assert fn.__doc__, f"{fn.__name__} lacks a docstring"


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPECTED_IDS:
            assert exp_id in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_parser_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4", "--scale", "medium", "--seed", "3"])
        assert args.scale == "medium"
        assert args.seed == 3

    def test_run_fast_experiment(self, capsys):
        # butterfly25 is the cheapest full artifact; run it end-to-end.
        code = main(["butterfly25"])
        out = capsys.readouterr().out
        assert "flattened butterfly" in out
        assert "shape checks" in out
        assert code == 0


class TestExperimentResult:
    def test_render_contains_rows_and_checks(self):
        from repro.evaluation.runner import ExperimentResult

        res = ExperimentResult(
            experiment_id="x",
            title="T",
            headers=["a", "b"],
            rows=[(1, 2.5)],
            checks={"ok": True, "bad": False},
            notes="note",
        )
        text = res.render()
        assert "T" in text and "2.500" in text
        assert "ok=PASS" in text and "bad=FAIL" in text
        assert not res.all_checks_pass()
