"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.topologies import (
    fat_tree,
    hypercube,
    jellyfish,
    make_topology,
)


@pytest.fixture
def tiny_cycle():
    """C4 with one server per switch: A2A throughput exactly 2."""
    return make_topology(nx.cycle_graph(4), 1, "C4", "cycle")


@pytest.fixture
def tiny_complete():
    """K4 with one server per switch: A2A throughput exactly 4."""
    return make_topology(nx.complete_graph(4), 1, "K4", "complete")


@pytest.fixture
def tiny_star():
    """Star with 4 leaves (servers on leaves only): A2A throughput 4/3."""
    servers = np.array([0, 1, 1, 1, 1])
    return make_topology(nx.star_graph(4), servers, "star4", "star")


@pytest.fixture
def small_hypercube():
    return hypercube(3)


@pytest.fixture
def medium_hypercube():
    return hypercube(4)


@pytest.fixture
def small_fattree():
    return fat_tree(4)


@pytest.fixture
def small_jellyfish():
    return jellyfish(16, 4, seed=42)
