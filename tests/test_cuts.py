"""Tests for sparsest cut, bisection bandwidth, and the estimator suite."""

import networkx as nx
import numpy as np
import pytest

from repro.cuts import (
    bisection_bandwidth,
    bisection_bandwidth_bruteforce,
    cut_sparsity,
    eigenvector_sweep_cuts,
    expanding_region_cuts,
    find_sparse_cut,
    limited_bruteforce_cut,
    normalized_laplacian,
    one_node_cuts,
    sparsest_cut_bruteforce,
    two_node_cuts,
    uniform_sparsest_cut_bruteforce,
)
from repro.topologies import hypercube, jellyfish, make_topology
from repro.traffic import all_to_all, longest_matching
from repro.throughput import throughput


@pytest.fixture
def barbell():
    """Two K4s joined by a single edge: the sparsest cut is obvious."""
    g = nx.barbell_graph(4, 0)
    return make_topology(g, 1, "barbell", "test")


class TestCutSparsity:
    def test_barbell_bottleneck(self, barbell):
        tm = all_to_all(barbell)
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        res = cut_sparsity(barbell, tm, side)
        assert res.capacity == 1.0
        # demand across = 4*4/8 = 2 in each direction.
        assert res.demand_across == pytest.approx(2.0)
        assert res.sparsity == pytest.approx(0.5)

    def test_zero_demand_cut_is_inf(self, barbell):
        tm = all_to_all(barbell)
        tm.demand[:, :] = 0.0
        tm.demand[0, 1] = 1.0
        tm.demand[1, 0] = 1.0
        side = np.zeros(8, dtype=bool)
        side[4:] = True  # no demand crosses
        assert np.isinf(cut_sparsity(barbell, tm, side).sparsity)

    def test_degenerate_side_rejected(self, barbell):
        tm = all_to_all(barbell)
        with pytest.raises(ValueError):
            cut_sparsity(barbell, tm, np.zeros(8, dtype=bool))
        with pytest.raises(ValueError):
            cut_sparsity(barbell, tm, np.ones(8, dtype=bool))

    def test_tm_size_mismatch(self, barbell, small_hypercube):
        tm = all_to_all(small_hypercube)
        with pytest.raises(ValueError):
            cut_sparsity(barbell, tm, np.zeros(8, dtype=bool))


class TestBruteforce:
    def test_barbell_finds_bridge(self, barbell):
        res = uniform_sparsest_cut_bruteforce(barbell)
        assert res.sparsity == pytest.approx(0.5)
        assert res.capacity == 1.0

    def test_upper_bounds_throughput(self, barbell):
        tm = longest_matching(barbell)
        cut = sparsest_cut_bruteforce(barbell, tm)
        t = throughput(barbell, tm).value
        assert cut.sparsity >= t - 1e-9

    def test_size_limit(self):
        topo = jellyfish(24, 3, seed=0)
        with pytest.raises(ValueError):
            sparsest_cut_bruteforce(topo, None, max_nodes=20)

    def test_hypercube_uniform_cut(self, small_hypercube):
        # Hypercube bisection: n/2 edges; A2A demand across = (n/2)^2*2/n = n/2
        # per direction -> sparsity (n/2)/(n/2)... d=3: cap 4, demand 2 -> 2.
        res = uniform_sparsest_cut_bruteforce(small_hypercube)
        assert res.sparsity == pytest.approx(2.0)


class TestEstimators:
    def test_one_node_isolates_bottleneck(self):
        # Star: isolating a leaf gives capacity 1 / demand (n-1)/n * ...
        g = nx.star_graph(4)
        topo = make_topology(g, np.array([0, 1, 1, 1, 1]), "star", "star")
        tm = all_to_all(topo)
        res = one_node_cuts(topo, tm)
        assert res is not None
        assert res.sparsity == pytest.approx(1 / (3 / 4))  # cap 1 / demand 3/4

    def test_two_node(self, barbell):
        res = two_node_cuts(barbell, all_to_all(barbell))
        assert res is not None
        assert res.found_by == "two_node"

    def test_expanding_regions(self, barbell):
        res = expanding_region_cuts(barbell, all_to_all(barbell))
        assert res is not None
        # Ball of radius 1 around a K4 node is the cluster -> finds the bridge.
        assert res.sparsity == pytest.approx(0.5)

    def test_eigenvector_sweep_finds_barbell_cut(self, barbell):
        res = eigenvector_sweep_cuts(barbell, all_to_all(barbell))
        assert res is not None
        assert res.sparsity == pytest.approx(0.5)

    def test_limited_bruteforce_exact_when_small(self, barbell):
        res = limited_bruteforce_cut(barbell, all_to_all(barbell), max_cuts=10_000)
        assert res.sparsity == pytest.approx(0.5)

    def test_limited_bruteforce_sampling_path(self):
        topo = jellyfish(24, 4, seed=1)
        tm = all_to_all(topo)
        res = limited_bruteforce_cut(topo, tm, max_cuts=500, seed=0)
        assert res is not None and np.isfinite(res.sparsity)


class TestFindSparseCut:
    def test_report_structure(self, barbell):
        rep = find_sparse_cut(barbell, all_to_all(barbell))
        assert rep.best.sparsity == pytest.approx(0.5)
        assert set(rep.estimator_values) <= {
            "bruteforce",
            "one_node",
            "two_node",
            "expanding",
            "eigenvector",
        }
        assert len(rep.winners) >= 1
        assert all(
            rep.estimator_values[w] <= rep.best.sparsity * (1 + 1e-6)
            for w in rep.winners
        )

    def test_default_tm_is_a2a(self, small_hypercube):
        rep = find_sparse_cut(small_hypercube)
        assert rep.best.sparsity == pytest.approx(2.0)

    def test_upper_bounds_throughput_on_families(self):
        for topo in (hypercube(3), jellyfish(12, 3, seed=2)):
            tm = longest_matching(topo)
            rep = find_sparse_cut(topo, tm)
            t = throughput(topo, tm).value
            assert rep.best.sparsity >= t - 1e-9


class TestBisection:
    def test_exact_balanced(self, barbell):
        res = bisection_bandwidth_bruteforce(barbell)
        assert res.capacity == 1.0
        assert res.side.sum() == 4

    def test_heuristic_close_to_exact(self):
        topo = jellyfish(16, 4, seed=3)
        exact = bisection_bandwidth_bruteforce(topo)
        heur = bisection_bandwidth(topo)  # n=16 -> exact path anyway
        assert heur.sparsity <= exact.sparsity * 1.0 + 1e-9
        big = jellyfish(30, 4, seed=3)
        heur2 = bisection_bandwidth(big)
        assert np.isfinite(heur2.sparsity)

    def test_bisection_ge_sparsest(self, barbell):
        # Bisection is restricted to balanced cuts, so it can only be
        # >= the unrestricted sparsest cut.
        tm = all_to_all(barbell)
        bis = bisection_bandwidth_bruteforce(barbell, tm)
        sparsest = sparsest_cut_bruteforce(barbell, tm)
        assert bis.sparsity >= sparsest.sparsity - 1e-9


class TestSpectral:
    def test_laplacian_psd_and_zero_eigenvalue(self, small_hypercube):
        lap = normalized_laplacian(small_hypercube)
        vals = np.linalg.eigvalsh(lap)
        assert vals[0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(vals >= -1e-9)

    def test_laplacian_rejects_isolated(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        # build without validation (validate would reject disconnection)
        from repro.topologies.base import Topology

        topo = Topology("iso", g, np.ones(3, dtype=np.int64), "test")
        with pytest.raises(ValueError):
            normalized_laplacian(topo)
