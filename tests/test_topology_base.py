"""Tests for the Topology base class and the family registry."""

import networkx as nx
import numpy as np
import pytest

from repro.topologies import (
    DISPLAY_NAMES,
    FAMILY_ORDER,
    GROUP1,
    GROUP2,
    Topology,
    all_families,
    hypercube,
    make_topology,
    representative,
    scale_ladder,
)


class TestTopologyCore:
    def test_counts(self, tiny_cycle):
        assert tiny_cycle.n_switches == 4
        assert tiny_cycle.n_servers == 4
        assert tiny_cycle.n_links == 4
        assert tiny_cycle.total_capacity() == 8.0

    def test_arcs_shape(self, tiny_cycle):
        tails, heads, caps = tiny_cycle.arcs()
        assert tails.size == heads.size == caps.size == 8

    def test_server_nodes(self, tiny_star):
        assert tiny_star.server_nodes.tolist() == [1, 2, 3, 4]

    def test_equipment_signature_invariant_under_relabeling(self):
        a = hypercube(3)
        g = nx.relabel_nodes(a.graph, {i: (i * 3) % 8 for i in range(8)})
        b = make_topology(g, 1, "relabel", "test")
        assert a.equipment() == b.equipment()

    def test_equipment_distinguishes(self, tiny_cycle, tiny_star):
        assert tiny_cycle.equipment() != tiny_star.equipment()

    def test_server_pair_mean_distance_cycle(self, tiny_cycle):
        # C4: per node distances to others: 1, 2, 1 -> mean 4/3.
        assert tiny_cycle.server_pair_mean_distance() == pytest.approx(4 / 3)

    def test_server_pair_mean_distance_weighted(self):
        # Two servers on node 0 and one on node 1 of an edge: ordered pairs:
        # (a,b) within node 0 at distance 0 (x2), 4 cross pairs at 1.
        g = nx.Graph()
        g.add_edge(0, 1)
        topo = make_topology(g, np.array([2, 1]), "e", "test")
        assert topo.server_pair_mean_distance() == pytest.approx(4 / 6)

    def test_with_servers(self, tiny_cycle):
        t = tiny_cycle.with_servers(3)
        assert t.n_servers == 12
        assert t.graph is tiny_cycle.graph

    def test_validate_disconnected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        topo = Topology("disc", g, np.ones(4, dtype=np.int64), "test")
        with pytest.raises(ValueError):
            topo.validate()

    def test_validate_too_few_servers(self):
        g = nx.path_graph(3)
        topo = Topology("few", g, np.array([1, 0, 0]), "test")
        with pytest.raises(ValueError):
            topo.validate()

    def test_bad_server_shape(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            Topology("bad", g, np.ones(4, dtype=np.int64), "test")

    def test_negative_servers(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            Topology("bad", g, np.array([1, -1, 1]), "test")

    def test_nodes_must_be_contiguous(self):
        g = nx.Graph()
        g.add_edge(5, 6)
        with pytest.raises(ValueError):
            Topology("bad", g, np.ones(2, dtype=np.int64), "test")

    def test_make_topology_relabels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        topo = make_topology(g, 1, "ab", "test")
        assert set(topo.graph.nodes()) == {0, 1}


class TestRegistry:
    def test_families_complete(self):
        assert len(FAMILY_ORDER) == 10
        assert set(GROUP1) | set(GROUP2) == set(FAMILY_ORDER)
        assert set(DISPLAY_NAMES) == set(FAMILY_ORDER)
        assert all_families() == list(FAMILY_ORDER)

    @pytest.mark.parametrize("family", FAMILY_ORDER)
    def test_representative_buildable(self, family):
        topo = representative(family, seed=0)
        assert topo.family == family
        assert topo.is_connected()
        assert topo.n_servers >= 4

    @pytest.mark.parametrize("family", FAMILY_ORDER)
    def test_ladder_monotone_and_capped(self, family):
        ladder = scale_ladder(family, 150, seed=0)
        sizes = [t.n_servers for t in ladder]
        assert sizes == sorted(sizes)
        assert all(s <= 150 for s in sizes)
        assert len(ladder) >= 1

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            scale_ladder("torus", 100)
        with pytest.raises(KeyError):
            representative("torus")
