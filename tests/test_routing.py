"""Tests for the routing-scheme evaluation module (§V)."""

import networkx as nx
import numpy as np
import pytest

from repro.routing import (
    ecmp_throughput,
    routing_gap_report,
    single_path_throughput,
)
from repro.topologies import fat_tree, hypercube, jellyfish, make_topology
from repro.traffic import TrafficMatrix, all_to_all, longest_matching, random_matching
from repro.throughput import throughput


class TestSinglePath:
    def test_single_edge(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        topo = make_topology(g, 1, "edge", "t")
        d = np.zeros((2, 2))
        d[0, 1] = 1.0
        assert single_path_throughput(topo, TrafficMatrix(demand=d)) == 1.0

    def test_cycle_antipodal_halves_optimal(self, tiny_cycle):
        # C4 demand 0->2: optimum splits both ways (t=2); single path gets 1.
        d = np.zeros((4, 4))
        d[0, 2] = 1.0
        tm = TrafficMatrix(demand=d)
        assert single_path_throughput(tiny_cycle, tm) == pytest.approx(1.0)
        assert throughput(tiny_cycle, tm).value == pytest.approx(2.0)

    def test_never_exceeds_optimal(self, small_jellyfish):
        for tm in (all_to_all(small_jellyfish), longest_matching(small_jellyfish)):
            sp = single_path_throughput(small_jellyfish, tm)
            opt = throughput(small_jellyfish, tm).value
            assert sp <= opt * (1 + 1e-9)


class TestECMP:
    def test_cycle_antipodal_matches_optimal(self, tiny_cycle):
        # Both shortest paths used equally -> optimal on C4.
        d = np.zeros((4, 4))
        d[0, 2] = 1.0
        tm = TrafficMatrix(demand=d)
        assert ecmp_throughput(tiny_cycle, tm) == pytest.approx(2.0)

    def test_hypercube_a2a_optimal(self, small_hypercube):
        # Hypercube + uniform traffic: ECMP's equal split is exactly the
        # symmetric optimal routing.
        tm = all_to_all(small_hypercube)
        assert ecmp_throughput(small_hypercube, tm) == pytest.approx(
            2.0, rel=1e-9
        )

    def test_between_single_path_and_optimal(self):
        topo = jellyfish(16, 4, seed=5)
        tm = random_matching(topo, seed=1)
        sp = single_path_throughput(topo, tm)
        ec = ecmp_throughput(topo, tm)
        opt = throughput(topo, tm).value
        assert sp <= ec * (1 + 1e-9) + 1e-9 or sp <= opt  # sp can tie ecmp
        assert ec <= opt * (1 + 1e-9)

    def test_fattree_ecmp_is_optimal(self, small_fattree):
        # The canonical ECMP success story: fat tree + uniform traffic.
        tm = all_to_all(small_fattree)
        ec = ecmp_throughput(small_fattree, tm)
        opt = throughput(small_fattree, tm).value
        assert ec == pytest.approx(opt, rel=1e-6)


class TestRoutingReport:
    def test_report_fields_and_gaps(self, small_jellyfish):
        tm = longest_matching(small_jellyfish)
        rep = routing_gap_report(small_jellyfish, tm)
        assert rep.single_path <= rep.optimal * (1 + 1e-9)
        assert rep.ecmp <= rep.optimal * (1 + 1e-9)
        assert 0 < rep.single_path_gap <= 1 + 1e-9
        assert 0 < rep.ecmp_gap <= 1 + 1e-9

    def test_size_mismatch(self, tiny_cycle, small_hypercube):
        tm = all_to_all(small_hypercube)
        with pytest.raises(ValueError):
            single_path_throughput(tiny_cycle, tm)
        with pytest.raises(ValueError):
            ecmp_throughput(tiny_cycle, tm)
