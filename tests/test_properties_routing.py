"""Property-based tests for routing schemes and failure robustness."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation.failures import fail_links
from repro.routing import ecmp_throughput, single_path_throughput
from repro.topologies import jellyfish
from repro.traffic import TrafficMatrix, random_matching
from repro.throughput import throughput

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def topo_and_tm(draw):
    n = draw(st.integers(min_value=8, max_value=14))
    d = draw(st.integers(min_value=3, max_value=4))
    if (n * d) % 2:
        n += 1
    topo = jellyfish(n, d, seed=draw(st.integers(0, 5000)))
    tm = random_matching(topo, seed=draw(st.integers(0, 5000)))
    return topo, tm


class TestRoutingProperties:
    @SETTINGS
    @given(data=st.data())
    def test_routing_hierarchy(self, data):
        """single path <= min(optimal) and ecmp <= optimal, always."""
        topo, tm = data.draw(topo_and_tm())
        opt = throughput(topo, tm).value
        assert ecmp_throughput(topo, tm) <= opt * (1 + 1e-9)
        assert single_path_throughput(topo, tm) <= opt * (1 + 1e-9)

    @SETTINGS
    @given(data=st.data())
    def test_routing_scale_inversion(self, data):
        """Oblivious routings share the LP's scale-inversion property."""
        topo, tm = data.draw(topo_and_tm())
        c = data.draw(st.floats(min_value=0.5, max_value=3.0))
        assert ecmp_throughput(topo, tm.scaled(c)) == pytest.approx(
            ecmp_throughput(topo, tm) / c, rel=1e-9
        )
        assert single_path_throughput(topo, tm.scaled(c)) == pytest.approx(
            single_path_throughput(topo, tm) / c, rel=1e-9
        )


class TestFailureProperties:
    @SETTINGS
    @given(data=st.data())
    def test_failures_never_help(self, data):
        topo, tm = data.draw(topo_and_tm())
        frac = data.draw(st.sampled_from([0.05, 0.1, 0.15]))
        try:
            failed = fail_links(topo, frac, seed=data.draw(st.integers(0, 1000)))
        except ValueError:
            return  # could not stay connected at this fraction: fine
        t_full = throughput(topo, tm).value
        t_fail = throughput(failed, tm).value
        assert t_fail <= t_full * (1 + 1e-9)

    @SETTINGS
    @given(data=st.data())
    def test_failed_graph_equipment_subset(self, data):
        topo, _ = data.draw(topo_and_tm())
        try:
            failed = fail_links(topo, 0.1, seed=data.draw(st.integers(0, 1000)))
        except ValueError:
            return
        assert np.all(failed.degree_sequence() <= topo.degree_sequence())
        assert np.array_equal(failed.servers, topo.servers)
