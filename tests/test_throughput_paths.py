"""Tests for k-shortest paths, path-restricted LP, and the LLSKR replication."""

import networkx as nx
import numpy as np
import pytest

from repro.throughput import (
    counting_estimator,
    k_shortest_paths,
    llskr_exact_throughput,
    llskr_path_sets,
    paths_for_pairs,
    solve_throughput_on_paths,
    throughput,
)
from repro.topologies import fat_tree, jellyfish, make_topology
from repro.traffic import TrafficMatrix, all_to_all


class TestKShortestPaths:
    def test_cycle_two_paths(self):
        g = nx.cycle_graph(6)
        paths = k_shortest_paths(g, 0, 3, 2)
        assert len(paths) == 2
        assert all(p[0] == 0 and p[-1] == 3 for p in paths)
        assert len(paths[0]) == 4  # 3 hops
        assert len(paths[1]) == 4  # the other direction, also 3 hops

    def test_loopless(self):
        g = nx.complete_graph(5)
        paths = k_shortest_paths(g, 0, 4, 8)
        for p in paths:
            assert len(set(p)) == len(p)

    def test_sorted_by_length(self):
        g = nx.cycle_graph(7)
        paths = k_shortest_paths(g, 0, 2, 3)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_fewer_paths_than_k(self):
        g = nx.path_graph(4)
        paths = k_shortest_paths(g, 0, 3, 5)
        assert len(paths) == 1  # a path graph has exactly one loopless route

    def test_no_path(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        assert k_shortest_paths(g, 0, 1, 3) == []

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            k_shortest_paths(nx.path_graph(3), 1, 1, 2)

    def test_paths_for_pairs(self, small_jellyfish):
        pairs = [(0, 5), (3, 7)]
        sets = paths_for_pairs(small_jellyfish, pairs, 4)
        assert set(sets) == set(pairs)
        assert all(1 <= len(v) <= 4 for v in sets.values())


class TestPathRestrictedLP:
    def test_matches_full_lp_when_paths_suffice(self, tiny_cycle):
        # On C4 with an antipodal pair TM, the 2 shortest paths per pair are
        # all simple paths, so the path LP equals the exact LP.
        n = 4
        d = np.zeros((n, n))
        d[0, 2] = 1.0
        d[2, 0] = 1.0
        tm = TrafficMatrix(demand=d)
        g = nx.Graph(tiny_cycle.graph)
        sets = {
            (0, 2): k_shortest_paths(g, 0, 2, 4),
            (2, 0): k_shortest_paths(g, 2, 0, 4),
        }
        restricted = solve_throughput_on_paths(tiny_cycle, tm, sets)
        full = throughput(tiny_cycle, tm).value
        assert restricted.value == pytest.approx(full, rel=1e-6)

    def test_single_path_restriction_lowers_value(self, tiny_cycle):
        n = 4
        d = np.zeros((n, n))
        d[0, 2] = 1.0
        tm = TrafficMatrix(demand=d)
        g = nx.Graph(tiny_cycle.graph)
        one_path = {(0, 2): k_shortest_paths(g, 0, 2, 1)}
        restricted = solve_throughput_on_paths(tiny_cycle, tm, one_path)
        # One path of capacity 1 vs two disjoint paths in the full problem.
        assert restricted.value == pytest.approx(1.0)
        assert throughput(tiny_cycle, tm).value == pytest.approx(2.0)

    def test_missing_path_is_unroutable_zero(self, tiny_cycle):
        # A demand pair with no supplied path answers 0.0, never raises —
        # the same convention every engine follows for disconnections
        # (tests/test_edge_cases.py).
        d = np.zeros((4, 4))
        d[0, 2] = 1.0
        res = solve_throughput_on_paths(tiny_cycle, TrafficMatrix(demand=d), {})
        assert res.value == 0.0
        assert res.meta["status"] == "unroutable-commodity"
        assert res.meta["pair"] == [0, 2]

    def test_restriction_never_exceeds_full(self, small_jellyfish):
        tm = all_to_all(small_jellyfish)
        sets = llskr_path_sets(small_jellyfish, tm, subflows=3, path_pool=4)
        restricted = solve_throughput_on_paths(small_jellyfish, tm, sets)
        full = throughput(small_jellyfish, tm).value
        assert restricted.value <= full + 1e-6


class TestLLSKR:
    def test_path_sets_cover_all_pairs(self, small_fattree):
        tm = all_to_all(small_fattree)
        sets = llskr_path_sets(small_fattree, tm, subflows=2, path_pool=3)
        srcs, dsts, _ = tm.pairs()
        assert set(sets) == set(zip(srcs.tolist(), dsts.tolist()))

    def test_counting_estimator_in_unit_range(self, small_fattree):
        tm = all_to_all(small_fattree)
        sets = llskr_path_sets(small_fattree, tm, subflows=2, path_pool=3)
        est = counting_estimator(small_fattree, tm, sets)
        assert 0.0 < est.min_flow_throughput <= est.mean_flow_throughput <= 1.0

    def test_exact_lp_on_llskr_paths(self, small_fattree):
        tm = all_to_all(small_fattree)
        res = llskr_exact_throughput(small_fattree, tm, subflows=2, path_pool=3)
        assert res.engine == "paths"
        assert 0.0 < res.value <= throughput(small_fattree, tm).value + 1e-6

    def test_estimator_underestimates_fattree(self, small_fattree):
        # The methodological point of Fig. 15: counting underestimates what
        # the same paths can actually carry (min-throughput comparison).
        tm = all_to_all(small_fattree)
        sets = llskr_path_sets(small_fattree, tm, subflows=2, path_pool=3)
        est = counting_estimator(small_fattree, tm, sets)
        exact = solve_throughput_on_paths(small_fattree, tm, sets)
        assert est.min_flow_throughput <= exact.value + 1e-6
