"""Tests for the link-failure robustness extension."""

import numpy as np
import pytest

from repro.evaluation.failures import FailureCurve, fail_links, failure_sweep
from repro.evaluation.experiments.factories import lm_factory
from repro.topologies import fat_tree, hypercube, jellyfish
from repro.throughput import throughput
from repro.traffic import all_to_all


class TestFailLinks:
    def test_removes_expected_count(self):
        topo = hypercube(4)
        failed = fail_links(topo, 0.1, seed=0)
        expected = topo.n_links - round(topo.n_links * 0.1)
        assert failed.n_links == expected
        assert failed.is_connected()

    def test_zero_fraction_identity(self):
        topo = hypercube(3)
        assert fail_links(topo, 0.0, seed=0) is topo

    def test_servers_preserved(self):
        topo = fat_tree(4)
        failed = fail_links(topo, 0.1, seed=1)
        assert np.array_equal(failed.servers, topo.servers)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fail_links(hypercube(3), 1.0)
        with pytest.raises(ValueError):
            fail_links(hypercube(3), -0.1)

    def test_seed_reproducible(self):
        topo = jellyfish(16, 4, seed=0)
        a = fail_links(topo, 0.15, seed=7)
        b = fail_links(topo, 0.15, seed=7)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_throughput_never_increases(self):
        topo = jellyfish(16, 4, seed=2)
        tm = all_to_all(topo)
        base = throughput(topo, tm).value
        failed = fail_links(topo, 0.1, seed=3)
        assert throughput(failed, tm).value <= base * (1 + 1e-9)


class TestFailureSweep:
    def test_monotone_trend(self):
        topo = jellyfish(16, 4, seed=1)
        curve = failure_sweep(
            topo, lm_factory, fractions=(0.0, 0.1, 0.2), samples=2, seed=0
        )
        assert isinstance(curve, FailureCurve)
        assert curve.relative[0] == pytest.approx(1.0)
        # Degradation is graceful but real: strictly below 1 at 20% failures.
        assert curve.relative[-1] < 1.0
        assert curve.worst_relative() == min(curve.relative)

    def test_validations(self):
        topo = hypercube(3)
        with pytest.raises(ValueError):
            failure_sweep(topo, lm_factory, samples=0)
