"""Tests for the link-failure robustness extension."""

import networkx as nx
import numpy as np
import pytest

from repro.batch import BatchSolver, use_solver
from repro.batch.cache import ResultCache
from repro.evaluation.failures import FailureCurve, fail_links, failure_sweep
from repro.evaluation.experiments.factories import lm_factory
from repro.topologies import Topology, fat_tree, hypercube, jellyfish
from repro.throughput import throughput
from repro.traffic import all_to_all


class TestFailLinks:
    def test_removes_expected_count(self):
        topo = hypercube(4)
        failed = fail_links(topo, 0.1, seed=0)
        expected = topo.n_links - round(topo.n_links * 0.1)
        assert failed.n_links == expected
        assert failed.is_connected()

    def test_zero_fraction_tagged_copy(self):
        # Historically fraction=0.0 returned the original object untagged;
        # every fraction must now yield a uniformly tagged copy.
        topo = hypercube(3)
        zero = fail_links(topo, 0.0, seed=0)
        assert zero is not topo
        assert zero.params["failed_fraction"] == 0.0
        assert zero.name == f"{topo.name}/failed=0%"
        assert sorted(zero.graph.edges()) == sorted(topo.graph.edges())
        assert "failed_fraction" not in topo.params

    def test_servers_preserved(self):
        topo = fat_tree(4)
        failed = fail_links(topo, 0.1, seed=1)
        assert np.array_equal(failed.servers, topo.servers)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fail_links(hypercube(3), 1.0)
        with pytest.raises(ValueError):
            fail_links(hypercube(3), -0.1)

    def test_seed_reproducible(self):
        topo = jellyfish(16, 4, seed=0)
        a = fail_links(topo, 0.15, seed=7)
        b = fail_links(topo, 0.15, seed=7)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_throughput_never_increases(self):
        topo = jellyfish(16, 4, seed=2)
        tm = all_to_all(topo)
        base = throughput(topo, tm).value
        failed = fail_links(topo, 0.1, seed=3)
        assert throughput(failed, tm).value <= base * (1 + 1e-9)

    def test_multigraph_removes_single_parallel_cable(self):
        # Parallel cables are distinct edge keys; failing one must leave
        # its siblings in place, never collapse the whole bundle.
        g = nx.MultiGraph()
        g.add_nodes_from(range(4))
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(u, v)
            g.add_edge(u, v)  # every cable doubled
        topo = Topology(name="ring2x", graph=g, servers=np.ones(4, dtype=int))
        failed = fail_links(topo, 1 / 8, seed=0)
        assert failed.graph.number_of_edges() == 7
        # Removing one parallel cable cannot disconnect the doubled ring.
        assert nx.is_connected(failed.graph)
        degrees = sorted(d for _, d in failed.graph.degree())
        assert degrees == [3, 3, 4, 4]

    def test_retry_exhaustion_raises(self):
        # Every edge of a tree is a bridge: any removal disconnects, so
        # the connectivity retry loop must exhaust and raise.
        g = nx.path_graph(6)
        topo = Topology(name="path", graph=g, servers=np.ones(6, dtype=int))
        with pytest.raises(ValueError, match="stay connected"):
            fail_links(topo, 0.2, seed=0, max_tries=5)


class TestFailureSweep:
    def test_monotone_trend(self):
        topo = jellyfish(16, 4, seed=1)
        curve = failure_sweep(
            topo, lm_factory, fractions=(0.0, 0.1, 0.2), samples=2, seed=0
        )
        assert isinstance(curve, FailureCurve)
        assert curve.relative[0] == pytest.approx(1.0)
        # Degradation is graceful but real: strictly below 1 at 20% failures.
        assert curve.relative[-1] < 1.0
        assert curve.worst_relative() == min(curve.relative)

    def test_validations(self):
        topo = hypercube(3)
        with pytest.raises(ValueError):
            failure_sweep(topo, lm_factory, samples=0)

    def test_baseline_independent_of_fraction_order(self):
        # Historically the baseline TM drew from the RNG *after* the sweep
        # consumed it, so the same seed gave different baselines depending
        # on `fractions`.  Child seeds are now derived up front.
        topo = jellyfish(16, 4, seed=4)
        a = failure_sweep(topo, lm_factory, fractions=(0.1,), samples=2, seed=3)
        b = failure_sweep(
            topo, lm_factory, fractions=(0.1, 0.2), samples=2, seed=3
        )
        base_a = a.throughputs[0] / a.relative[0]
        base_b = b.throughputs[0] / b.relative[0]
        assert base_a == pytest.approx(base_b, rel=1e-12)
        # And the shared fraction's draws are identical too.
        assert a.throughputs[0] == b.throughputs[0]

    def test_rows_bit_identical_serial_pooled_warm(self, tmp_path):
        topo = jellyfish(16, 4, seed=5)
        kwargs = dict(fractions=(0.0, 0.1), samples=2, seed=9)

        def run(solver):
            with solver, use_solver(solver):
                curve = failure_sweep(topo, lm_factory, **kwargs)
            return (curve.fractions, curve.throughputs, curve.relative)

        serial = run(BatchSolver(workers=1))
        pooled = run(BatchSolver(workers=2))
        cache = ResultCache(tmp_path / "cache")
        cold = run(BatchSolver(workers=1, cache=cache))
        warm_solver = BatchSolver(workers=1, cache=cache)
        warm = run(warm_solver)
        assert serial == pooled == cold == warm
        assert warm_solver.n_solved == 0  # every row served from the cache
