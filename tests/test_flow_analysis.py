"""Tests for flow-solution analysis (link utilization, transit share)."""

import numpy as np
import pytest

from repro.throughput.analysis import (
    link_utilization,
    transit_load_share,
    utilization_by_node_class,
)
from repro.topologies import fat_tree, hypercube, jellyfish
from repro.traffic import all_to_all, longest_matching


class TestLinkUtilization:
    def test_hypercube_lm_saturates_everything(self, medium_hypercube):
        # Paper §II-C: the antipodal matching perfectly utilizes every
        # unidirectional link at the optimum.
        rep = link_utilization(medium_hypercube, longest_matching(medium_hypercube))
        assert rep.throughput == pytest.approx(1.0, rel=1e-6)
        assert rep.saturated_fraction == pytest.approx(1.0)

    def test_utilization_bounded(self, small_jellyfish):
        rep = link_utilization(small_jellyfish, all_to_all(small_jellyfish))
        assert np.all(rep.utilization <= 1.0 + 1e-6)
        assert np.all(rep.utilization >= -1e-9)
        assert 0.0 < rep.mean_utilization() <= 1.0 + 1e-9

    def test_some_link_is_saturated_at_optimum(self, small_jellyfish):
        # At the LP optimum at least one arc must be tight, else t could grow.
        rep = link_utilization(small_jellyfish, longest_matching(small_jellyfish))
        assert rep.max_utilization == pytest.approx(1.0, abs=1e-6)


class TestTransitShare:
    def test_fattree_edge_links_carry_no_transit(self):
        # The Fig. 12 explanation: fat-tree ToR links carry only traffic
        # sourced at / destined to their own servers.
        topo = fat_tree(4)
        tm = longest_matching(topo)
        shares = transit_load_share(topo, tm)
        assert all(v <= 0.05 for v in shares.values())

    def test_hypercube_has_transit(self):
        topo = hypercube(4)
        tm = longest_matching(topo)
        shares = transit_load_share(topo, tm)
        # Antipodal flows traverse d-hop paths: most load at a node is transit.
        assert np.mean(list(shares.values())) > 0.3


class TestUtilizationByClass:
    def test_fattree_layers(self):
        topo = fat_tree(4)
        # Layers: 4 cores (0), 8 agg (1), 8 edge (2).
        classes = np.array([0] * 4 + [1] * 8 + [2] * 8)
        by_class = utilization_by_node_class(topo, all_to_all(topo), classes)
        assert set(by_class) == {0, 1, 2}
        for mean_u, max_u in by_class.values():
            assert 0 <= mean_u <= max_u <= 1 + 1e-6

    def test_bad_classes_shape(self, small_jellyfish):
        with pytest.raises(ValueError):
            utilization_by_node_class(
                small_jellyfish, all_to_all(small_jellyfish), np.zeros(3)
            )
