"""Tests for the sharded throughput engine and the automatic size policy.

Pins the DESIGN.md invariants: dense-LP agreement at small scale, the
certified lower/upper sandwich when coordination is cut short, warm-rerun
zero-solve determinism on both cache backends, parent-side dispatch (pool
parity), and the above-threshold policy routing that keeps per-shard LPs
strictly smaller than the dense LP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import REGISTRY, ResultEvent, RowEvent, Session, ShardProgressEvent, emit_row, experiment
from repro.batch import (
    BatchSolver,
    SolveRequest,
    default_engine,
    make_cache,
    use_default_engine,
)
from repro.evaluation.runner import ExperimentResult, ScaleConfig
from repro.throughput import (
    ShardPolicy,
    auto_blocks,
    dense_lp_size,
    resolve_shard_params,
    select_engine,
    solve_throughput_sharded,
    throughput,
    use_shard_policy,
    use_shard_progress,
)
from repro.topologies import fat_tree, hypercube, jellyfish
from repro.traffic import all_to_all, longest_matching, random_matching

RTOL = 1e-6

#: Small instances spanning symmetric and adversarial demand shapes.
INSTANCES = [
    ("jf-a2a", lambda: jellyfish(14, 4, seed=5), all_to_all),
    ("jf-lm", lambda: jellyfish(14, 4, seed=5), longest_matching),
    ("hc-a2a", lambda: hypercube(3), all_to_all),
    (
        "jf-rm",
        lambda: jellyfish(12, 3, seed=9),
        lambda t: random_matching(t, n_matchings=2, seed=3),
    ),
]


# ------------------------------------------------------------- agreement
class TestDenseAgreement:
    @pytest.mark.parametrize("name,topo_fn,tm_fn", INSTANCES, ids=[i[0] for i in INSTANCES])
    def test_matches_dense_lp(self, name, topo_fn, tm_fn):
        topo = topo_fn()
        tm = tm_fn(topo)
        dense = throughput(topo, tm)
        sharded = solve_throughput_sharded(topo, tm, blocks=3)
        assert sharded.engine == "sharded"
        assert sharded.value == pytest.approx(dense.value, rel=RTOL)
        assert sharded.meta["converged"] or sharded.meta["fallback"]

    def test_single_block_degenerates_to_dense(self):
        topo = jellyfish(10, 3, seed=1)
        tm = all_to_all(topo)
        dense = throughput(topo, tm)
        sharded = solve_throughput_sharded(topo, tm, blocks=1)
        assert sharded.value == dense.value  # bit-identical: same LP solve
        assert sharded.meta["fallback"]

    def test_fallback_value_is_bit_identical_to_lp(self):
        # The fallback issues a plain "lp" request: not just close, equal.
        topo = hypercube(3)
        tm = longest_matching(topo)
        dense = throughput(topo, tm)
        sharded = solve_throughput_sharded(topo, tm, blocks=2, rtol=1e-12)
        assert sharded.meta["fallback"]
        assert sharded.value == dense.value

    def test_pool_matches_inline(self):
        topo = jellyfish(12, 4, seed=2)
        tm = all_to_all(topo)
        req = SolveRequest(topo, tm, engine="sharded", params={"blocks": 3})
        with BatchSolver(workers=1) as s1:
            inline = s1.solve(SolveRequest(topo, tm, engine="sharded", params={"blocks": 3}))
        with BatchSolver(workers=2) as s2:
            pooled = s2.solve(req)
        assert inline.require().value == pooled.require().value


# ---------------------------------------------------------------- sandwich
class TestCertifiedBounds:
    def test_bounds_sandwich_dense_optimum(self):
        # Medium-ish instance, coordination cut short with no fallback:
        # the certified bounds must bracket the true optimum.
        topo = jellyfish(24, 5, seed=11)
        for tm in (all_to_all(topo), longest_matching(topo)):
            dense = throughput(topo, tm).value
            sharded = solve_throughput_sharded(
                topo, tm, blocks=3, max_rounds=3, exact_fallback=False
            )
            lb = sharded.meta["lower_bound"]
            ub = sharded.meta["upper_bound"]
            assert lb <= ub
            assert lb <= dense * (1 + 1e-9)
            assert ub >= dense * (1 - 1e-9)
            assert sharded.value == lb  # the reported value is the certified LB
            assert lb > 0

    def test_bounds_monotone_across_rounds(self):
        topo = jellyfish(16, 4, seed=3)
        tm = longest_matching(topo)
        seen = []
        with use_shard_progress(seen.append):
            solve_throughput_sharded(
                topo, tm, blocks=4, max_rounds=6, exact_fallback=False
            )
        assert len(seen) == 6
        lbs = [p.lower_bound for p in seen]
        ubs = [p.upper_bound for p in seen]
        assert lbs == sorted(lbs)
        assert ubs == sorted(ubs, reverse=True)
        assert all(p.blocks == 4 for p in seen)

    def test_asymmetric_slice_never_takes_transpose_shortcut(self):
        # Regression: the dense engine's transposed-instance shortcut is
        # only an equivalence for direction-symmetric capacities.  A shard
        # capacity slice is asymmetric, and an incast-shaped block TM
        # (fewer destinations than sources) used to trigger the shortcut
        # and solve the wrong LP.
        from repro.throughput.sharded import CapacitySlicedTopology
        from repro.throughput import solve_throughput_lp, solve_throughput_mwu
        from repro.traffic.matrix import TrafficMatrix

        topo = jellyfish(10, 3, seed=21)
        tails, heads, caps = topo.arcs()
        rng = np.random.default_rng(0)
        sliced_caps = caps * rng.uniform(0.2, 1.0, size=caps.size)
        sliced = CapacitySlicedTopology(
            name="slice",
            graph=topo.graph,
            servers=topo.servers,
            arc_tails=tails,
            arc_heads=heads,
            arc_caps=sliced_caps,
        )
        demand = np.zeros((10, 10))
        demand[1:5, 0] = 1.0  # 4 sources, 1 destination
        tm = TrafficMatrix(demand=demand, kind="incast")
        exact = solve_throughput_lp(sliced, tm)
        assert exact.meta["transposed"] is False
        # Engine-independent oracle: MWU solves the directed instance
        # natively and certifies a feasible value within (1-eps)^3.
        approx = solve_throughput_mwu(sliced, tm, epsilon=0.05)
        assert approx.value <= exact.value * (1 + 1e-9)
        assert exact.value * (1 - 0.05) ** 3 <= approx.value

    def test_auto_blocks_respects_threshold(self):
        # Regression: blocks = ceil(dense/threshold) overshot the per-shard
        # bound whenever the source-split ceiling bit.
        import math as _math

        topo = jellyfish(16, 4, seed=3)  # k = 16 sources under A2A
        tm = all_to_all(topo)
        m = topo.arcs()[0].size
        k = 16
        for threshold in (m + 1, 2 * m, 3 * m + 1, 5 * m, k * m - 1):
            blocks = auto_blocks(topo, tm, threshold)
            per_shard = _math.ceil(k / blocks) * m
            assert per_shard <= threshold, (threshold, blocks, per_shard)
        # One source alone exceeding the threshold: best effort, 1 per block.
        assert auto_blocks(topo, tm, m - 1) == k

    def test_disconnected_demand_is_zero(self):
        # Demand across a disconnection: certified 0, no overflow in the
        # reallocation arithmetic even with a permanently starved block.
        import networkx as nx
        from repro.topologies.base import Topology
        from repro.traffic.matrix import TrafficMatrix

        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        topo = Topology("disc", g, np.ones(4, dtype=np.int64))
        demand = np.zeros((4, 4))
        demand[0, 2] = 1.0  # crosses the component boundary
        demand[1, 0] = 1.0
        tm = TrafficMatrix(demand=demand)
        result = solve_throughput_sharded(topo, tm, blocks=2, exact_fallback=False)
        assert result.value == 0.0
        assert result.meta["upper_bound"] == 0.0

    def test_transposed_instance_agrees(self):
        # Fewer active destinations than sources: the top-level transpose
        # path must preserve the optimum.
        topo = jellyfish(12, 4, seed=6)
        n = topo.n_switches
        demand = np.zeros((n, n))
        demand[:, 0] = 1.0  # everyone sends to node 0
        demand[0, 0] = 0.0
        demand[0, 1] = 1.0
        from repro.traffic.matrix import TrafficMatrix

        tm = TrafficMatrix(demand=demand, kind="incast")
        dense = throughput(topo, tm)
        sharded = solve_throughput_sharded(topo, tm, blocks=2)
        assert sharded.value == pytest.approx(dense.value, rel=RTOL)


# ------------------------------------------------------------ determinism
class TestWarmRerunDeterminism:
    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_warm_rerun_zero_solves(self, tmp_path, backend):
        topo = jellyfish(14, 4, seed=8)
        tm = all_to_all(topo)
        req_params = {"blocks": 3}

        cold_cache = make_cache(tmp_path, backend=backend)
        with BatchSolver(workers=1, cache=cold_cache) as solver:
            cold = solver.solve(
                SolveRequest(topo, tm, engine="sharded", params=dict(req_params))
            )
            cold_stats = solver.stats()
        assert cold_stats["solved"] > 0
        assert cold_stats["shard_jobs"] > 0

        warm_cache = make_cache(tmp_path, backend=backend)
        with BatchSolver(workers=1, cache=warm_cache) as solver:
            warm = solver.solve(
                SolveRequest(topo, tm, engine="sharded", params=dict(req_params))
            )
            warm_stats = solver.stats()
        assert warm_stats["solved"] == 0, "warm rerun must perform zero solves"
        assert warm.from_cache
        assert warm.require().value == cold.require().value
        assert warm.require().meta == cold.require().meta

    def test_block_solves_share_cache_across_engines(self, tmp_path):
        # The exact fallback is a plain lp request: a dense run warms it.
        topo = jellyfish(12, 3, seed=4)
        tm = all_to_all(topo)
        cache = make_cache(tmp_path)
        with BatchSolver(workers=1, cache=cache) as solver:
            solver.solve(SolveRequest(topo, tm, engine="lp"))
            before = solver.stats()["solved"]
            out = solver.solve(
                SolveRequest(topo, tm, engine="sharded", params={"blocks": 2})
            )
            result = out.require()
            # Fallback hit the warmed dense entry: the only fresh solves
            # are the block LPs plus the parent sharded request itself.
            assert result.meta["fallback"]
            extra = solver.stats()["solved"] - before
            assert extra == result.meta["shard_solves"] + 1
            assert solver.stats()["cache_hits"] == 1


# ---------------------------------------------------------------- policy
class TestAutoPolicy:
    def test_select_engine_threshold(self):
        topo = jellyfish(16, 4, seed=3)
        tm = all_to_all(topo)
        assert select_engine(topo, tm) == "lp"  # tiny instance, huge default
        assert select_engine(topo, tm, threshold=10) == "sharded"
        assert select_engine(topo, tm, threshold=10, prefer="mwu") == "mwu"

    def test_env_threshold(self, monkeypatch):
        topo = jellyfish(16, 4, seed=3)
        tm = all_to_all(topo)
        monkeypatch.setenv("REPRO_SHARD_THRESHOLD", "10")
        assert select_engine(topo, tm) == "sharded"
        monkeypatch.setenv("REPRO_LARGE_ENGINE", "mwu")
        assert select_engine(topo, tm) == "mwu"

    def test_auto_request_resolves_concrete_engine(self):
        topo = jellyfish(16, 4, seed=3)
        tm = all_to_all(topo)
        assert SolveRequest(topo, tm, engine="auto").engine == "lp"
        with use_shard_policy(ShardPolicy(threshold=100)):
            req = SolveRequest(topo, tm, engine="auto")
        assert req.engine == "sharded"
        # Shard knobs are frozen into params so the key determines the value.
        assert req.params["blocks"] == auto_blocks(topo, tm, 100)
        assert req.params["exact_fallback"] is False
        assert "rtol" in req.params and "max_rounds" in req.params

    def test_engine_override_reaches_relative_sweeps(self):
        # Regression: relative_throughput's helpers used to hard-default
        # engine="lp", silently ignoring --engine for the large sweep
        # experiments (fig5/scaling/nonuniform) it matters most for.
        from repro.batch import use_solver
        from repro.evaluation.relative import relative_throughput

        topo = jellyfish(10, 3, seed=2)
        with BatchSolver(workers=1) as solver:
            with use_solver(solver), use_default_engine("sharded"):
                relative_throughput(
                    topo, lambda t, rng: all_to_all(t), samples=1, seed=0
                )
            assert solver.stats()["shard_jobs"] > 0, (
                "--engine override must reach the relative-throughput sweeps"
            )

    def test_session_rejects_unknown_engine_eagerly(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="shraded")

    def test_default_engine_context(self):
        topo = jellyfish(10, 3, seed=2)
        tm = all_to_all(topo)
        assert default_engine() == "lp"
        assert SolveRequest(topo, tm).engine == "lp"
        with use_default_engine("sharded"):
            req = SolveRequest(topo, tm)
            assert req.engine == "sharded"
            assert "blocks" in req.params
        # Explicit engines are never overridden.
        with use_default_engine("sharded"):
            assert SolveRequest(topo, tm, engine="mwu").engine == "mwu"
        with pytest.raises(ValueError, match="cannot be the ambient default"):
            use_default_engine("nope").__enter__()
        # "paths" dispatches fine per-request but computes a different
        # quantity, so it may never be the ambient default.
        with pytest.raises(ValueError, match="cannot be the ambient default"):
            use_default_engine("paths").__enter__()
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="paths")

    def test_above_threshold_solves_in_bounded_memory(self):
        # Synthetic above-threshold instance: the dense LP would need
        # k x m flow variables; the sharded path must stay well under that
        # per shard and still certify bounds around the true optimum.
        topo = jellyfish(30, 4, seed=13)
        tm = all_to_all(topo)
        dense_vars = dense_lp_size(topo, tm)
        with use_shard_policy(ShardPolicy(threshold=2000)):
            assert select_engine(topo, tm) == "sharded"
            params = resolve_shard_params(topo, tm, {})
            assert params["exact_fallback"] is False
            result = solve_throughput_sharded(topo, tm, **params)
        assert result.meta["fallback"] is False
        # Each shard LP stays under the threshold (+1 for the scale
        # variable t) where the dense LP would not have.
        assert dense_vars > 2000
        assert result.n_variables <= 2000 + 1 < dense_vars, (
            "per-shard LP must be a fraction of the dense LP"
        )
        dense = throughput(topo, tm).value
        assert result.meta["lower_bound"] <= dense * (1 + 1e-9)
        assert result.meta["upper_bound"] >= dense * (1 - 1e-9)
        assert result.meta["lower_bound"] > 0.5 * dense


# ---------------------------------------------------------------- session
class TestSessionIntegration:
    def _register_probe(self):
        @experiment(
            "shard-probe",
            title="Sharded probe",
            artifact="test",
            tags=("test",),
            checks=(),
        )
        def shard_probe(scale=None, seed=0) -> ExperimentResult:
            """Solve one instance through the ambient solver and emit it."""
            from repro.batch import get_solver

            topo = jellyfish(12, 3, seed=7)
            tm = all_to_all(topo)
            out = get_solver().solve(SolveRequest(topo, tm))
            result = out.require()
            rows = [emit_row(("jf-12-3", result.engine, result.value))]
            return ExperimentResult(
                experiment_id="shard-probe",
                title="probe",
                headers=["topo", "engine", "value"],
                rows=rows,
            )

        return shard_probe

    def test_session_engine_override_and_shard_events(self):
        self._register_probe()
        try:
            with Session() as plain:
                baseline = plain.run("shard-probe")
            assert baseline.rows[0][1] == "lp"

            with Session(engine="sharded", shard_blocks=2) as session:
                events = list(session.stream("shard-probe"))
            rows = [e for e in events if isinstance(e, RowEvent)]
            shards = [e for e in events if isinstance(e, ShardProgressEvent)]
            (final,) = [e for e in events if isinstance(e, ResultEvent)]
            assert rows[0].row[1] == "sharded"
            assert shards, "sharded solve must surface ShardProgressEvents"
            assert all(e.blocks == 2 for e in shards)
            assert shards[0].lower_bound <= shards[0].upper_bound
            # Engine differs, value agrees within the engine contract.
            assert rows[0].row[2] == pytest.approx(baseline.rows[0][2], rel=RTOL)
            assert final.result.extras["batch"]["shard_jobs"] > 0
        finally:
            REGISTRY.unregister("shard-probe")

    def test_fig2_rows_match_dense_under_sharded_engine(self):
        # The acceptance criterion, at a deliberately tiny scale: every
        # fig2 row value under --engine sharded matches the dense rows
        # within 1e-6 relative.
        tiny = ScaleConfig("small", max_servers=16, max_switches=10, samples=1, shuffles=1)
        with Session(scale=tiny) as dense_session:
            dense_rows = dense_session.run("fig2").rows
        with Session(scale=tiny, engine="sharded", shard_blocks=2) as shard_session:
            shard_rows = shard_session.run("fig2").rows
        assert len(dense_rows) == len(shard_rows) > 0
        for dense_row, shard_row in zip(dense_rows, shard_rows):
            assert dense_row[:4] == shard_row[:4]
            assert shard_row[4] == pytest.approx(dense_row[4], rel=RTOL)
