"""Exact-oracle tests for the throughput LP engine.

Every expected value here is derivable by hand (see DESIGN.md §1); these are
the deepest correctness anchors in the suite.
"""

import networkx as nx
import numpy as np
import pytest

from repro.topologies import fat_tree, hypercube, make_topology
from repro.traffic import TrafficMatrix, all_to_all, longest_matching, random_matching
from repro.throughput import solve_throughput_lp, throughput
from repro.throughput.lp import _reverse_arc_permutation


class TestClosedFormOracles:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_complete_graph_a2a_equals_n(self, n):
        topo = make_topology(nx.complete_graph(n), 1, f"K{n}", "complete")
        assert throughput(topo, all_to_all(topo)).value == pytest.approx(n, rel=1e-6)

    def test_star_a2a(self, tiny_star):
        # Each leaf sends/receives (n-1)/n through its single link.
        assert throughput(tiny_star, all_to_all(tiny_star)).value == pytest.approx(
            4 / 3, rel=1e-6
        )

    def test_cycle4_a2a(self, tiny_cycle):
        assert throughput(tiny_cycle, all_to_all(tiny_cycle)).value == pytest.approx(
            2.0, rel=1e-6
        )

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_hypercube_a2a_is_2(self, dim):
        topo = hypercube(dim)
        assert throughput(topo, all_to_all(topo)).value == pytest.approx(2.0, rel=1e-6)

    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_hypercube_longest_matching_is_1(self, dim):
        # Paper §II-C: antipodal matching saturates all n*d arcs exactly.
        topo = hypercube(dim)
        assert throughput(topo, longest_matching(topo)).value == pytest.approx(
            1.0, rel=1e-6
        )

    @pytest.mark.parametrize("k", [4, 6])
    def test_fattree_nonblocking(self, k):
        # Any hose-tight matching achieves exactly 1 on a fat tree.
        topo = fat_tree(k)
        lm = throughput(topo, longest_matching(topo)).value
        assert lm == pytest.approx(1.0, rel=1e-6)

    def test_single_edge(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        topo = make_topology(g, 1, "edge", "edge")
        d = np.zeros((2, 2))
        d[0, 1] = 1.0
        tm = TrafficMatrix(demand=d)
        assert throughput(topo, tm).value == pytest.approx(1.0)

    def test_bidirectional_demand_uses_both_arcs(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        topo = make_topology(g, 1, "edge", "edge")
        d = np.zeros((2, 2))
        d[0, 1] = 1.0
        d[1, 0] = 1.0
        tm = TrafficMatrix(demand=d)
        # Full duplex: both directions get capacity 1.
        assert throughput(topo, tm).value == pytest.approx(1.0)

    def test_path_graph_contention(self):
        # 0-1-2 with demands 0->2 and 1->2 sharing arc (1,2).
        topo = make_topology(nx.path_graph(3), 1, "P3", "path")
        d = np.zeros((3, 3))
        d[0, 2] = 1.0
        d[1, 2] = 1.0
        tm = TrafficMatrix(demand=d)
        assert throughput(topo, tm).value == pytest.approx(0.5)


class TestEngineMechanics:
    def test_scaling_inverse(self, small_jellyfish):
        tm = longest_matching(small_jellyfish)
        t1 = throughput(small_jellyfish, tm).value
        t2 = throughput(small_jellyfish, tm.scaled(2.0)).value
        assert t2 == pytest.approx(t1 / 2.0, rel=1e-6)

    def test_transposed_aggregation_same_value(self, small_jellyfish):
        # A many-sources / single-destination TM triggers destination
        # aggregation; the value must match the mirrored single-source TM.
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[1:, 0] = 1.0 / (n - 1)  # many sources, one destination
        tm = TrafficMatrix(demand=d)
        res = solve_throughput_lp(small_jellyfish, tm)
        assert res.meta["transposed"] is True
        d2 = d.T.copy()  # one source, many destinations: row aggregation
        res2 = solve_throughput_lp(small_jellyfish, TrafficMatrix(demand=d2))
        assert res2.meta["transposed"] is False
        assert res.value == pytest.approx(res2.value, rel=1e-6)

    def test_want_flows_conservation(self, tiny_cycle):
        tm = all_to_all(tiny_cycle)
        res = solve_throughput_lp(tiny_cycle, tm, want_flows=True)
        tails, heads, caps = tiny_cycle.arcs()
        flows = res.flows
        assert flows is not None
        # Capacity respected.
        total = flows.sum(axis=0)
        assert np.all(total <= caps + 1e-6)
        # Conservation at a transit node for source block 0 (source node 0):
        src = res.meta["sources"][0]
        for v in range(4):
            inflow = flows[0, heads == v].sum()
            outflow = flows[0, tails == v].sum()
            demand_in = tm.demand[src, v] * res.value
            if v == src:
                assert outflow - inflow == pytest.approx(
                    tm.demand[src].sum() * res.value, abs=1e-6
                )
            else:
                assert inflow - outflow == pytest.approx(demand_in, abs=1e-6)

    def test_zero_tm_is_nan(self, tiny_cycle):
        # 0/0 answers NaN per the safe_ratio convention, never raises
        # (tests/test_edge_cases.py pins this for every engine).
        res = throughput(tiny_cycle, TrafficMatrix(demand=np.zeros((4, 4))))
        assert np.isnan(res.value)
        assert res.meta["status"] == "zero-demand"

    def test_size_mismatch_rejected(self, tiny_cycle):
        with pytest.raises(ValueError):
            throughput(tiny_cycle, TrafficMatrix(demand=np.zeros((5, 5))))

    def test_unknown_engine(self, tiny_cycle):
        with pytest.raises(ValueError):
            throughput(tiny_cycle, all_to_all(tiny_cycle), engine="quantum")

    def test_reverse_arc_permutation(self):
        tails = np.array([0, 1, 1, 2])
        heads = np.array([1, 0, 2, 1])
        rev = _reverse_arc_permutation(tails, heads)
        assert rev.tolist() == [1, 0, 3, 2]

    def test_multigraph_capacity(self):
        g = nx.MultiGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        topo = make_topology(g, 1, "double_edge", "test")
        d = np.zeros((2, 2))
        d[0, 1] = 1.0
        assert throughput(topo, TrafficMatrix(demand=d)).value == pytest.approx(2.0)


class TestRandomMatchingBands:
    def test_rm_between_lm_and_a2a(self, medium_hypercube):
        # The Fig. 2 ladder on one instance.
        a2a = throughput(medium_hypercube, all_to_all(medium_hypercube)).value
        rm10 = throughput(
            medium_hypercube, random_matching(medium_hypercube, 10, seed=0)
        ).value
        rm1 = throughput(
            medium_hypercube, random_matching(medium_hypercube, 1, seed=0)
        ).value
        lm = throughput(medium_hypercube, longest_matching(medium_hypercube)).value
        assert a2a + 1e-9 >= rm10 >= rm1 - 0.15  # rm ordering (randomness slack)
        assert rm1 + 1e-9 >= lm
        assert lm >= a2a / 2 - 1e-9  # Theorem 2
