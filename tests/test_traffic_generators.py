"""Tests for the synthetic / worst-case / non-uniform / Facebook generators."""

import numpy as np
import pytest

from repro.topologies import fat_tree, hypercube, jellyfish
from repro.traffic import (
    all_to_all,
    attach_rack_tm,
    elephant_matching,
    kodialam_tm,
    longest_matching,
    random_matching,
    tm_facebook_frontend,
    tm_facebook_hadoop,
)
from repro.utils.graphutils import all_pairs_distances


class TestAllToAll:
    def test_uniform_topology(self, small_hypercube):
        tm = all_to_all(small_hypercube)
        n = small_hypercube.n_switches
        assert tm.demand[0, 1] == pytest.approx(1 / n)
        # Per-server egress (n-1)/n.
        assert tm.row_sums()[0] == pytest.approx((n - 1) / n)
        assert tm.is_hose(small_hypercube.servers)

    def test_weighted_by_server_counts(self, small_fattree):
        tm = all_to_all(small_fattree)
        hosts = small_fattree.server_nodes
        n_servers = small_fattree.n_servers
        u, v = hosts[0], hosts[1]
        assert tm.demand[u, v] == pytest.approx(2 * 2 / n_servers)
        # Nodes without servers send nothing.
        non_hosts = np.setdiff1d(np.arange(small_fattree.n_switches), hosts)
        assert np.all(tm.demand[non_hosts, :] == 0)

    def test_symmetric(self, small_jellyfish):
        tm = all_to_all(small_jellyfish)
        assert np.allclose(tm.demand, tm.demand.T)


class TestRandomMatching:
    def test_rm1_is_permutation(self, small_hypercube):
        tm = random_matching(small_hypercube, seed=0)
        rows = tm.row_sums()
        cols = tm.col_sums()
        assert np.allclose(rows, 1.0)
        assert np.allclose(cols, 1.0)

    def test_rmk_hose_tight(self, small_hypercube):
        tm = random_matching(small_hypercube, n_matchings=5, seed=0)
        assert np.allclose(tm.row_sums(), 1.0, atol=1e-12)
        assert tm.is_hose(small_hypercube.servers)

    def test_servers_per_switch_alias(self, small_hypercube):
        a = random_matching(small_hypercube, n_matchings=3, seed=9)
        b = random_matching(small_hypercube, servers_per_switch=3, seed=9)
        assert np.allclose(a.demand, b.demand)

    def test_prescribed_servers(self, small_fattree):
        tm = random_matching(small_fattree, seed=1)
        hosts = small_fattree.server_nodes
        # Each edge switch has 2 servers -> egress 2 (minus same-switch pairs).
        assert np.all(tm.row_sums()[hosts] <= 2 + 1e-12)
        assert tm.is_hose(small_fattree.servers)

    def test_seed_reproducible(self, small_jellyfish):
        a = random_matching(small_jellyfish, seed=5)
        b = random_matching(small_jellyfish, seed=5)
        assert np.allclose(a.demand, b.demand)


class TestLongestMatching:
    def test_hose_tight_permutation(self, small_hypercube):
        tm = longest_matching(small_hypercube)
        assert np.allclose(tm.row_sums(), 1.0)
        assert np.allclose(tm.col_sums(), 1.0)

    def test_hypercube_pairs_antipodes(self, small_hypercube):
        # In a hypercube the longest matching pairs antipodal nodes
        # (distance d); total distance = n * d.
        tm = longest_matching(small_hypercube)
        d = small_hypercube.params["dim"]
        n = small_hypercube.n_switches
        assert tm.meta["matching_total_distance"] == pytest.approx(n * d)

    def test_maximizes_over_random(self, small_jellyfish):
        dist = all_pairs_distances(small_jellyfish.graph)
        lm = longest_matching(small_jellyfish)
        lm_dist = lm.demand_weighted_distance(dist)
        for seed in range(3):
            rm = random_matching(small_jellyfish, seed=seed)
            assert lm_dist >= rm.demand_weighted_distance(dist) - 1e-9

    def test_deterministic(self, small_jellyfish):
        a = longest_matching(small_jellyfish)
        b = longest_matching(small_jellyfish)
        assert np.allclose(a.demand, b.demand)


class TestKodialam:
    def test_hose_feasible(self, small_hypercube):
        tm = kodialam_tm(small_hypercube)
        assert tm.is_hose(small_hypercube.servers)

    def test_at_least_longest_matching_distance(self, small_jellyfish):
        # The LP relaxes the matching polytope, so its demand-weighted
        # distance is >= the longest matching's.
        dist = all_pairs_distances(small_jellyfish.graph)
        kd = kodialam_tm(small_jellyfish)
        lm = longest_matching(small_jellyfish)
        kd_total = (kd.demand * dist).sum()
        lm_total = (lm.demand * dist).sum()
        assert kd_total >= lm_total - 1e-6

    def test_respects_server_budgets(self, small_fattree):
        tm = kodialam_tm(small_fattree)
        assert tm.is_hose(small_fattree.servers)
        non_hosts = np.setdiff1d(
            np.arange(small_fattree.n_switches), small_fattree.server_nodes
        )
        assert np.all(tm.demand[non_hosts, :] == 0)


class TestElephantMatching:
    def test_mean_weight_normalized(self, small_hypercube):
        # Total demand equals the base matching's (mean flow weight = 1), so
        # elephants intentionally exceed the per-server hose budget.
        tm = elephant_matching(small_hypercube, 10.0, seed=0)
        base = longest_matching(small_hypercube)
        assert tm.total_demand() == pytest.approx(base.total_demand())
        assert tm.hose_utilization(small_hypercube.servers) > 1.0

    def test_extremes_equal_longest_matching_exactly(self, small_hypercube):
        base = longest_matching(small_hypercube)
        t0 = elephant_matching(small_hypercube, 0.0, seed=0)
        t100 = elephant_matching(small_hypercube, 100.0, seed=0)
        assert np.allclose(t0.demand, base.demand)
        assert np.allclose(t100.demand, base.demand)

    def test_elephant_count(self, medium_hypercube):
        tm = elephant_matching(medium_hypercube, 25.0, seed=1)
        w = tm.demand[tm.demand > 0]
        n_large = (w > w.min() * 5).sum()
        assert n_large == round(0.25 * medium_hypercube.n_switches)

    def test_invalid_percent(self, small_hypercube):
        with pytest.raises(ValueError):
            elephant_matching(small_hypercube, 150.0)

    def test_at_least_one_elephant(self, small_hypercube):
        tm = elephant_matching(small_hypercube, 0.5, seed=0)
        w = tm.demand[tm.demand > 0]
        assert (w > w.min() * 5).sum() >= 1


class TestFacebookTMs:
    def test_hadoop_near_uniform(self):
        tm = tm_facebook_hadoop(seed=0)
        w = tm.demand[tm.demand > 0]
        assert set(np.unique(w)) <= {10.0, 100.0}
        assert (w == 100.0).mean() > 0.8

    def test_frontend_skewed(self):
        tm, roles = tm_facebook_frontend(seed=0)
        rows = tm.row_sums()
        cache_rows = rows[roles == 1]
        web_rows = rows[roles == 0]
        assert cache_rows.mean() > 5 * web_rows.mean()

    def test_attach_sampled(self):
        topo = jellyfish(70, 6, seed=0)
        tm = tm_facebook_hadoop(seed=0)
        placed = attach_rack_tm(tm, topo, shuffle=False)
        assert placed.n_nodes == 70
        assert placed.hose_utilization(topo.servers) == pytest.approx(1.0)

    def test_attach_downsamples(self):
        topo = hypercube(5)  # 32 < 64 racks
        tm = tm_facebook_hadoop(seed=0)
        placed = attach_rack_tm(tm, topo, shuffle=False)
        assert placed.n_nodes == 32
        assert placed.meta["n_locations"] == 32

    def test_attach_shuffle_changes_placement(self):
        topo = hypercube(6)
        tm, _ = tm_facebook_frontend(seed=0)
        a = attach_rack_tm(tm, topo, shuffle=False)
        b = attach_rack_tm(tm, topo, shuffle=True, seed=3)
        assert not np.allclose(a.demand, b.demand)

    def test_attach_to_prescribed_servers(self):
        topo = fat_tree(8)  # 32 edge switches
        tm, _ = tm_facebook_frontend(seed=0)
        placed = attach_rack_tm(tm, topo, shuffle=False)
        non_hosts = np.setdiff1d(np.arange(topo.n_switches), topo.server_nodes)
        assert np.all(placed.demand[non_hosts, :] == 0)
