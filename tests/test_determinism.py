"""Determinism regression tests for `run_experiment`.

Two representative experiments (one batched through the solver context,
one with tiny direct solves) must produce identical rows across repeated
runs — with the cache cold, with the cache warm, with no cache at all,
and with a multi-process worker pool.  This pins the invariant that the
batch/cache layer is a pure memoization: it may change *when* an LP is
solved, never *what* the experiment reports.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import run_experiment

#: Cheap representatives: theorem2 routes every solve through the batch
#: layer; butterfly25 exercises the direct-call path in cuts_exp.
EXPERIMENT_IDS = ["theorem2", "butterfly25"]


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_repeat_runs_identical_without_cache(exp_id):
    first = run_experiment(exp_id, seed=0)
    second = run_experiment(exp_id, seed=0)
    assert first.rows == second.rows
    assert first.checks == second.checks


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_cached_runs_match_uncached(exp_id, tmp_path):
    uncached = run_experiment(exp_id, seed=0)
    cold = run_experiment(exp_id, seed=0, cache_dir=tmp_path)
    warm = run_experiment(exp_id, seed=0, cache_dir=tmp_path)
    assert cold.rows == uncached.rows
    assert warm.rows == uncached.rows
    cold_stats, warm_stats = cold.extras["batch"], warm.extras["batch"]
    if cold_stats["requests"]:  # batched experiment: warm run must be free
        assert cold_stats["solved"] == cold_stats["requests"]
        assert warm_stats["solved"] == 0
        assert warm_stats["cache_hits"] == warm_stats["requests"]


def test_worker_pool_bit_identical_to_inline():
    inline = run_experiment("theorem2", seed=0, workers=1)
    pooled = run_experiment("theorem2", seed=0, workers=2)
    assert pooled.rows == inline.rows
    assert pooled.extras["batch"]["workers"] == 2


def test_different_seeds_differ():
    # Sanity: the determinism above is not vacuous (seed actually matters).
    a = run_experiment("theorem2", seed=0)
    b = run_experiment("theorem2", seed=1)
    assert a.rows != b.rows
