"""Determinism regression tests for `run_experiment`.

Two representative experiments (one batched through the solver context,
one with tiny direct solves) must produce identical rows across repeated
runs — with the cache cold, with the cache warm, with no cache at all,
and with a multi-process worker pool.  This pins the invariant that the
batch/cache layer is a pure memoization: it may change *when* an LP is
solved, never *what* the experiment reports.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    BatchSolver,
    ResultCache,
    SolveRequest,
    SqliteResultCache,
    make_cache,
    use_solver,
)
from repro.evaluation.experiments import run_experiment
from repro.theory.theorems import theorem1_separation, verify_theorem2
from repro.topologies import hypercube, jellyfish
from repro.traffic import all_to_all, longest_matching, random_matching

#: Cheap representatives of every migrated solve site: theorem2 and
#: butterfly25 (cuts_exp) batch through the solver context; routing-gap
#: batches its optimal-flow LPs and computes ECMP/single-path inline.
EXPERIMENT_IDS = ["theorem2", "butterfly25", "routing-gap"]


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_repeat_runs_identical_without_cache(exp_id):
    first = run_experiment(exp_id, seed=0)
    second = run_experiment(exp_id, seed=0)
    assert first.rows == second.rows
    assert first.checks == second.checks


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_cached_runs_match_uncached(exp_id, tmp_path):
    uncached = run_experiment(exp_id, seed=0)
    cold = run_experiment(exp_id, seed=0, cache_dir=tmp_path)
    warm = run_experiment(exp_id, seed=0, cache_dir=tmp_path)
    assert cold.rows == uncached.rows
    assert warm.rows == uncached.rows
    cold_stats, warm_stats = cold.extras["batch"], warm.extras["batch"]
    if cold_stats["requests"]:  # batched experiment: warm run must be free
        assert cold_stats["solved"] == cold_stats["requests"]
        assert warm_stats["solved"] == 0
        assert warm_stats["cache_hits"] == warm_stats["requests"]


def test_worker_pool_bit_identical_to_inline():
    inline = run_experiment("theorem2", seed=0, workers=1)
    pooled = run_experiment("theorem2", seed=0, workers=2)
    assert pooled.rows == inline.rows
    assert pooled.extras["batch"]["workers"] == 2


def test_different_seeds_differ():
    # Sanity: the determinism above is not vacuous (seed actually matters).
    a = run_experiment("theorem2", seed=0)
    b = run_experiment("theorem2", seed=1)
    assert a.rows != b.rows


# ----------------------------------------------- migrated theory solve sites
def _theorem_site_results(workers=1, cache=None):
    """Run both theorem batteries under an explicit ambient solver."""
    solver = BatchSolver(workers=workers, cache=cache)
    with solver, use_solver(solver):
        topo = jellyfish(12, 3, seed=7)
        report = verify_theorem2(
            topo,
            {"LM": longest_matching(topo), "RM": random_matching(topo, seed=3)},
        )
        points = theorem1_separation(
            n_cluster=12, d=3, beta=1, core=8, core_degree=3,
            path_lengths=(2,), seed=0,
        )
    rows = [(report.lower_bound, tuple(sorted(report.ratios.items())))] + [
        (p.name, p.throughput, p.sparse_cut) for p in points
    ]
    return rows, solver.stats()


def test_theorem_sites_serial_pool_warm_bit_identical(tmp_path):
    serial, serial_stats = _theorem_site_results(workers=1)
    assert serial_stats["solved"] == serial_stats["requests"]
    pooled, _ = _theorem_site_results(workers=2)
    cold, cold_stats = _theorem_site_results(workers=1, cache=ResultCache(tmp_path))
    warm, warm_stats = _theorem_site_results(workers=2, cache=ResultCache(tmp_path))
    assert pooled == serial
    assert cold == serial
    assert warm == serial
    assert cold_stats["solved"] == cold_stats["requests"]
    assert warm_stats["solved"] == 0
    assert warm_stats["cache_hits"] == warm_stats["requests"]


# ------------------------------------------------- migrated yuan solve site
def test_paths_engine_pool_matches_inline():
    # The "paths" engine must survive pickling into a worker process and
    # produce the exact inline value.
    topo = hypercube(3)
    req = SolveRequest(
        topo, all_to_all(topo), engine="paths",
        params={"subflows": 2, "path_pool": 2},
    )
    inline = BatchSolver(workers=1).solve(req).require().value
    with BatchSolver(workers=2) as solver:
        pooled = solver.solve(req).require().value
    assert pooled == inline


def test_yuan_fig15_warm_cache_zero_solves_both_backends(tmp_path):
    # fig15's path-restricted LPs dominate this test's budget, so the
    # sqlite store is warmed by transferring the jsonl entries instead of
    # paying a second cold run; a warm rerun must then perform zero LP
    # solves under either backend and reproduce bit-identical rows.
    jsonl_dir = tmp_path / "jsonl"
    cold = run_experiment("fig15", seed=0, cache=ResultCache(jsonl_dir))
    assert cold.extras["batch"]["solved"] > 0
    warm = run_experiment("fig15", seed=0, workers=2, cache=ResultCache(jsonl_dir))
    assert warm.rows == cold.rows
    assert warm.extras["batch"]["solved"] == 0

    sqlite_cache = SqliteResultCache(tmp_path / "sqlite")
    for key, result in ResultCache(jsonl_dir)._load().items():
        sqlite_cache.put(key, result)
    warm_sq = run_experiment("fig15", seed=0, cache=sqlite_cache)
    assert warm_sq.rows == cold.rows
    assert warm_sq.extras["batch"]["solved"] == 0


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_cuts_exp_warm_rerun_free_under_both_backends(backend, tmp_path, monkeypatch):
    # run_experiment builds its cache through make_cache, so the backend
    # env var must be honored end-to-end (the CI smoke matrix relies on it).
    monkeypatch.setenv("REPRO_CACHE_BACKEND", backend)
    cold = run_experiment("butterfly25", seed=0, cache_dir=tmp_path)
    warm = run_experiment("butterfly25", seed=0, cache_dir=tmp_path)
    expected = {"jsonl": ResultCache, "sqlite": SqliteResultCache}[backend]
    assert isinstance(make_cache(tmp_path), expected)
    assert warm.rows == cold.rows
    assert cold.extras["batch"]["solved"] == cold.extras["batch"]["requests"] > 0
    assert warm.extras["batch"]["solved"] == 0
