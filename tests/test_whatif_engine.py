"""Tests for the incremental what-if engine (scenarios, hints, bound-skips)."""

import numpy as np
import pytest

from repro.batch import BatchSolver, SolveRequest, use_solver
from repro.batch.cache import ResultCache
from repro.throughput import SolveHint, solve_throughput_lp
from repro.topologies import fat_tree, hypercube, jellyfish
from repro.traffic import all_to_all
from repro.whatif import (
    Scenario,
    maintenance_windows,
    random_failures,
    targeted_cut_failures,
    uniform_degradation,
    whatif_sweep,
)


@pytest.fixture(scope="module")
def instance():
    topo = fat_tree(4)
    return topo, all_to_all(topo)


@pytest.fixture(scope="module")
def parent_hint(instance):
    topo, tm = instance
    parent = solve_throughput_lp(topo, tm, want_duals=True)
    return parent, SolveHint.from_result(parent, topo.compile().caps)


class TestArcGraphOverlays:
    def test_overlays_share_structure_digest(self, instance):
        topo, _ = instance
        ag = topo.compile()
        scaled = ag.with_scaled_caps(0.5)
        failed = ag.with_failed_arcs(ag.undirected_links()[0])
        assert scaled.structure_digest == ag.structure_digest
        assert failed.structure_digest == ag.structure_digest
        # Full digests differ: the capacity vector changed.
        assert scaled.digest != ag.digest

    def test_failed_arcs_zero_both_directions(self, instance):
        topo, _ = instance
        ag = topo.compile()
        link = ag.undirected_links()[2]
        failed = ag.with_failed_arcs(link[:1])
        assert failed.caps[link[0]] == 0.0
        assert failed.caps[link[1]] == 0.0
        assert np.count_nonzero(failed.caps == 0) == 2

    def test_capacity_connected_ignores_dead_arcs(self, instance):
        topo, _ = instance
        ag = topo.compile()
        assert ag.capacity_connected()
        # Zeroing every arc of one node strands it.
        incident = np.flatnonzero(
            (ag.tails == 0) | (ag.heads == 0)
        )
        assert not ag.with_failed_arcs(incident).capacity_connected()


class TestSolveHint:
    def test_bounds_sandwich_true_value(self, instance, parent_hint):
        topo, tm = instance
        _, hint = parent_hint
        ag = topo.compile()
        for link_row in (1, 5, 9):
            child = ag.with_failed_arcs(ag.undirected_links()[link_row])
            lower, upper = hint.bounds_for(child.caps)
            true_value = solve_throughput_lp(child, tm).value
            assert lower - 1e-6 <= true_value <= upper + 1e-6

    def test_uniform_degradation_closes_bounds(self, instance, parent_hint):
        topo, _ = instance
        parent, hint = parent_hint
        caps = topo.compile().caps * 0.6
        lower, upper = hint.bounds_for(caps)
        assert lower == pytest.approx(0.6 * parent.value, rel=1e-6)
        assert upper == pytest.approx(0.6 * parent.value, rel=1e-6)
        assert hint.answers(caps) is not None

    def test_open_interval_requires_solve(self, instance, parent_hint):
        topo, _ = instance
        _, hint = parent_hint
        ag = topo.compile()
        # Failing a used link leaves a wide interval: no skip.
        child = ag.with_failed_arcs(ag.undirected_links()[0])
        assert hint.answers(child.caps) is None

    def test_cache_roundtrip_lists_coerced(self, instance, parent_hint):
        # Cached results rebuild meta arrays as lists; the hint must accept
        # them so warm reruns hint identically to cold ones.
        topo, _ = instance
        parent, hint = parent_hint
        from dataclasses import replace

        listy = replace(
            parent,
            meta={
                **parent.meta,
                "capacity_duals": np.asarray(parent.meta["capacity_duals"]).tolist(),
                "arc_usage": np.asarray(parent.meta["arc_usage"]).tolist(),
            },
        )
        rebuilt = SolveHint.from_result(listy, topo.compile().caps)
        caps = topo.compile().caps * 0.5
        assert rebuilt.bounds_for(caps) == pytest.approx(hint.bounds_for(caps))

    def test_shape_mismatch_raises(self, parent_hint):
        _, hint = parent_hint
        with pytest.raises(ValueError):
            hint.bounds_for(np.ones(3))


class TestWarmStart:
    def test_warm_solve_matches_cold(self, instance, parent_hint):
        topo, tm = instance
        _, hint = parent_hint
        ag = topo.compile()
        child = ag.with_failed_arcs(ag.undirected_links()[4])
        cold = solve_throughput_lp(child, tm)
        warm = solve_throughput_lp(child, tm, warm_start=hint)
        assert warm.value == pytest.approx(cold.value, rel=1e-7)
        assert "warm_start_bounds" in warm.meta
        assert "warm_start_bounds" not in cold.meta


class TestBoundSkip:
    def test_solve_many_skips_and_counts(self, instance, parent_hint):
        topo, tm = instance
        parent, hint = parent_hint
        ag = topo.compile()
        degraded = ag.with_scaled_caps(0.7)
        failed = ag.with_failed_arcs(ag.undirected_links()[0])
        with BatchSolver(workers=1) as solver:
            outcomes = solver.solve_many(
                [
                    SolveRequest(degraded, tm, engine="lp", hint=hint, tag="deg"),
                    SolveRequest(failed, tm, engine="lp", hint=hint, tag="fail"),
                ]
            )
            stats = solver.stats()
        assert stats["skipped_by_bound"] == 1
        assert stats["solved"] == 1
        deg, fail = outcomes
        assert deg.result.meta["skipped_by_bound"] is True
        assert deg.result.value == pytest.approx(0.7 * parent.value, rel=1e-6)
        assert "skipped_by_bound" not in fail.result.meta

    def test_streaming_path_skips_identically(self, instance, parent_hint):
        topo, tm = instance
        parent, hint = parent_hint
        degraded = topo.compile().with_scaled_caps(0.7)
        with BatchSolver(workers=1) as solver:
            solver.submit(SolveRequest(degraded, tm, engine="lp", hint=hint))
            (outcome,) = list(solver.iter_outcomes())
            assert solver.stats()["skipped_by_bound"] == 1
        assert outcome.result.value == pytest.approx(0.7 * parent.value, rel=1e-6)

    def test_skipped_results_not_cached(self, instance, parent_hint, tmp_path):
        topo, tm = instance
        _, hint = parent_hint
        degraded = topo.compile().with_scaled_caps(0.7)
        cache = ResultCache(tmp_path / "cache")
        with BatchSolver(workers=1, cache=cache) as solver:
            solver.solve(SolveRequest(degraded, tm, engine="lp", hint=hint))
        # An interval answer must never masquerade as a solved value.
        assert cache.puts == 0
        assert len(cache) == 0

    def test_duals_requests_never_skip(self, instance, parent_hint):
        topo, tm = instance
        _, hint = parent_hint
        degraded = topo.compile().with_scaled_caps(0.7)
        with BatchSolver(workers=1) as solver:
            outcome = solver.solve(
                SolveRequest(
                    degraded,
                    tm,
                    engine="lp",
                    params={"want_duals": True},
                    hint=hint,
                )
            )
            assert solver.stats()["skipped_by_bound"] == 0
        assert "capacity_duals" in outcome.result.meta


class TestScenarioGenerators:
    def test_random_failures_deterministic(self, instance):
        topo, _ = instance
        a = random_failures(topo, n_fail=2, samples=3, seed=11)
        b = random_failures(topo, n_fail=2, samples=3, seed=11)
        assert [s.name for s in a] == [s.name for s in b]
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.caps, sb.caps)
            assert sa.meta["links"] == sb.meta["links"]

    def test_random_failures_draws_independent_of_sample_count(self, instance):
        # Draw i is keyed by (seed, i): adding more samples never changes
        # the earlier draws (the seed-order bug class).
        topo, _ = instance
        short = random_failures(topo, n_fail=2, samples=2, seed=5)
        long = random_failures(topo, n_fail=2, samples=4, seed=5)
        for sa, sb in zip(short, long):
            assert np.array_equal(sa.caps, sb.caps)

    def test_random_failures_keep_connectivity(self):
        topo = jellyfish(16, 4, seed=3)
        ag = topo.compile()
        for s in random_failures(topo, n_fail=3, samples=4, seed=0):
            assert ag.with_caps(s.caps).capacity_connected()

    def test_maintenance_windows_cover_every_link_once(self, instance):
        topo, _ = instance
        ag = topo.compile()
        scenarios = maintenance_windows(topo, n_windows=5, drain=0.0)
        touched = np.zeros(ag.n_arcs, dtype=int)
        for s in scenarios:
            touched += (s.caps == 0).astype(int)
        assert np.all(touched == 1)

    def test_targeted_cut_concentrates_on_crossing_links(self, instance):
        topo, tm = instance
        scenarios = targeted_cut_failures(topo, tm=tm, max_fail=2)
        assert scenarios, "cut generator found no usable scenario"
        assert all(s.kind == "targeted-cut" for s in scenarios)
        assert scenarios[0].meta["n_fail"] == 1

    def test_uniform_degradation_validates(self, instance):
        topo, _ = instance
        with pytest.raises(ValueError):
            uniform_degradation(topo, factors=(-0.5,))


class TestWhatIfSweep:
    @pytest.fixture(scope="class")
    def scenarios(self, instance):
        topo, tm = instance
        return (
            uniform_degradation(topo, factors=(0.8, 0.5))
            + random_failures(topo, n_fail=2, samples=2, seed=1)
            + maintenance_windows(topo, n_windows=3, drain=0.5)
        )

    def test_degradations_skipped_and_relative_exact(self, instance, scenarios):
        topo, tm = instance
        report = whatif_sweep(topo, tm, scenarios, solver=BatchSolver(workers=1))
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["degrade/0.8"].skipped_by_bound
        assert by_name["degrade/0.8"].relative == pytest.approx(0.8, rel=1e-6)
        assert report.n_skipped_by_bound >= 2
        assert all(o.ok for o in report.outcomes)
        assert report.stats["skipped_by_bound"] == report.n_skipped_by_bound

    def test_serial_workers_warm_bit_identical(
        self, instance, scenarios, tmp_path
    ):
        topo, tm = instance

        def run(solver):
            with solver:
                rep = whatif_sweep(topo, tm, scenarios, solver=solver)
            return [(o.name, o.value, o.relative) for o in rep.outcomes]

        serial = run(BatchSolver(workers=1))
        pooled = run(BatchSolver(workers=2))
        cache = ResultCache(tmp_path / "cache")
        cold = run(BatchSolver(workers=1, cache=cache))
        warm_solver = BatchSolver(workers=1, cache=cache)
        warm = run(warm_solver)
        assert serial == pooled == cold == warm
        assert warm_solver.n_solved == 0  # fully answered by cache + bounds

    def test_ambient_solver_used_when_none_given(self, instance, scenarios):
        topo, tm = instance
        solver = BatchSolver(workers=1)
        with use_solver(solver):
            report = whatif_sweep(topo, tm, scenarios[:3])
        assert solver.n_requests == 4  # parent + 3 children
        assert len(report.outcomes) == 3

    def test_relative_values_sorted_cdf(self, instance, scenarios):
        topo, tm = instance
        report = whatif_sweep(topo, tm, scenarios, solver=BatchSolver(workers=1))
        rel = report.relative_values()
        assert rel == sorted(rel)
        assert len(rel) == len(scenarios)
