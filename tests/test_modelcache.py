"""Tests for the compiled LP model cache (repro.throughput.modelcache).

The cache is an accelerator and nothing else: every assertion here pins the
contract that a skeleton-served solve is **bit-identical** to a cold
assembly — same values, flows, duals, usage — across engines (lp, sharded),
LP backends, serial vs pooled execution, and both result-cache backends,
while result cache keys never see skeleton state.  The LRU's boundary
behavior (exact-capacity eviction, capacity-0 disable, cross-structure
isolation) is pinned separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchSolver, ResultCache, SolveRequest, instance_key
from repro.batch.cache import make_cache
from repro.core.arcgraph import as_arcgraph
from repro.throughput.lp import assemble_throughput_lp, solve_throughput_lp
from repro.throughput.modelcache import (
    DEFAULT_CAPACITY,
    LPModelCache,
    group_chunks,
    model_cache,
    request_group_key,
    reset_model_cache,
    skeleton_for,
    skeleton_key,
)
from repro.throughput.sharded import solve_throughput_sharded
from repro.topologies import hypercube, jellyfish
from repro.traffic import all_to_all
from repro.traffic.matrix import TrafficMatrix

LP_BACKENDS = ["auto", "highs", "highs-ds", "highs-ipm"]


@pytest.fixture(autouse=True)
def _fresh_model_cache():
    """Isolate every test from the module-level singleton's state."""
    reset_model_cache(DEFAULT_CAPACITY)
    yield
    reset_model_cache()


def _solve_cold(topo, tm, **kw):
    """One solve with skeleton reuse disabled (always a fresh assembly)."""
    reset_model_cache(0)
    try:
        return solve_throughput_lp(topo, tm, **kw)
    finally:
        reset_model_cache(DEFAULT_CAPACITY)


def _assert_bit_identical(a, b):
    assert a.value == b.value  # exact, not approx: same matrices, same solver
    pairs = [(a.flows, b.flows)] + [
        (a.meta.get(key), b.meta.get(key))
        for key in ("arc_usage", "capacity_duals")
    ]
    for left, right in pairs:
        if left is None or right is None:
            assert left is None and right is None
        else:
            assert np.array_equal(np.asarray(left), np.asarray(right))


class TestBitIdentity:
    @pytest.mark.parametrize("backend", LP_BACKENDS)
    def test_skeleton_solve_matches_cold_per_backend(self, backend):
        topo = hypercube(3)
        tm = all_to_all(topo)
        cold = _solve_cold(
            topo, tm, want_flows=True, want_duals=True, lp_backend=backend
        )
        miss = solve_throughput_lp(
            topo, tm, want_flows=True, want_duals=True, lp_backend=backend
        )
        hit = solve_throughput_lp(
            topo, tm, want_flows=True, want_duals=True, lp_backend=backend
        )
        assert cold.meta["skeleton"] == "miss"
        assert miss.meta["skeleton"] == "miss"
        assert hit.meta["skeleton"] == "hit"
        _assert_bit_identical(cold, miss)
        _assert_bit_identical(cold, hit)

    def test_transposed_orientation_bit_identical(self):
        # Few destinations + symmetric capacities triggers the transposed
        # block orientation; the skeleton must reproduce it exactly.
        topo = hypercube(3)
        ag = as_arcgraph(topo)
        demand = np.zeros((ag.n_nodes, ag.n_nodes))
        demand[:, 0] = 1.0
        demand[0, 0] = 0.0
        tm = TrafficMatrix(demand=demand, kind="incast")
        cold = _solve_cold(topo, tm, want_flows=True, want_duals=True)
        miss = solve_throughput_lp(topo, tm, want_flows=True, want_duals=True)
        warm = solve_throughput_lp(topo, tm, want_flows=True, want_duals=True)
        skeleton, hit = skeleton_for(ag, tm)
        assert skeleton.transposed and hit
        assert miss.meta["skeleton"] == "miss"
        assert warm.meta["skeleton"] == "hit"
        _assert_bit_identical(cold, miss)
        _assert_bit_identical(cold, warm)

    def test_capacity_overlays_share_one_skeleton(self):
        # The ensemble case the cache exists for: same structure + sparsity,
        # different capacity values -> one build, N-1 hits, exact answers.
        topo = jellyfish(16, 4, seed=7)
        ag = as_arcgraph(topo)
        tm = all_to_all(topo)
        rng = np.random.default_rng(3)
        overlays = [
            ag.with_caps(ag.caps * rng.uniform(0.5, 1.0, size=ag.n_arcs))
            for _ in range(4)
        ]
        cold = [_solve_cold(g, tm) for g in overlays]
        reset_model_cache(DEFAULT_CAPACITY)
        warm = [solve_throughput_lp(g, tm) for g in overlays]
        for c, w in zip(cold, warm):
            _assert_bit_identical(c, w)
        stats = model_cache().stats()
        assert stats["builds"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == len(overlays) - 1

    def test_sharded_engine_bit_identical_and_aggregates_assembly(self):
        topo = hypercube(4)
        tm = all_to_all(topo)
        reset_model_cache(0)
        cold = solve_throughput_sharded(topo, tm, blocks=4)
        reset_model_cache(DEFAULT_CAPACITY)
        first = solve_throughput_sharded(topo, tm, blocks=4)
        again = solve_throughput_sharded(topo, tm, blocks=4)
        assert cold.value == first.value == again.value
        for result in (cold, first, again):
            assert result.meta["assembly_seconds"] >= 0.0

    def test_assembly_seconds_split_from_solve_seconds(self):
        topo = hypercube(3)
        result = solve_throughput_lp(topo, all_to_all(topo))
        assert result.meta["assembly_seconds"] >= 0.0
        assert result.solve_seconds >= 0.0  # pure solver wall-clock, split out

    def test_pooled_chunked_solves_match_serial(self):
        topo = jellyfish(16, 4, seed=11)
        ag = as_arcgraph(topo)
        tm = all_to_all(topo)
        rng = np.random.default_rng(5)
        requests = [
            SolveRequest(
                ag.with_caps(ag.caps * rng.uniform(0.5, 1.0, size=ag.n_arcs)),
                tm,
                engine="lp",
                tag=f"s{i}",
            )
            for i in range(5)
        ]
        serial = BatchSolver(workers=1).solve_many(requests)
        with BatchSolver(workers=2) as pooled:
            fanned = pooled.solve_many(requests)
        for a, b in zip(serial, fanned):
            _assert_bit_identical(a.require(), b.require())

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_result_cache_backends_round_trip_skeleton_solves(
        self, tmp_path, backend
    ):
        topo = hypercube(3)
        tm = all_to_all(topo)
        cache = make_cache(tmp_path, backend=backend)
        request = SolveRequest(topo, tm, engine="lp")
        first = BatchSolver(workers=1, cache=cache).solve(request)
        warm_solver = BatchSolver(workers=1, cache=cache)
        second = warm_solver.solve(request)
        assert not first.from_cache and second.from_cache
        assert warm_solver.n_solved == 0  # warm rerun performs zero solves
        _assert_bit_identical(first.require(), second.require())


class TestLRU:
    def test_eviction_at_exact_capacity_boundary(self):
        cache = LPModelCache(capacity=2)
        topos = [hypercube(3), jellyfish(12, 3, seed=1), jellyfish(12, 3, seed=2)]
        pairs = [(as_arcgraph(t), all_to_all(t)) for t in topos]
        keys = [skeleton_key(ag, tm) for ag, tm in pairs]
        for (ag, tm), key in zip(pairs, keys):
            skeleton, _ = skeleton_for(ag, tm)  # build via the real path
            cache.put(key, skeleton)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert cache.get(keys[0]) is None  # oldest evicted...
        assert cache.get(keys[1]) is not None  # ...newer two retained
        assert cache.get(keys[2]) is not None

    def test_lru_recency_updates_on_get(self):
        cache = LPModelCache(capacity=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refresh "a"
        cache.put(("c",), "C")  # evicts "b", not "a"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A"
        assert cache.get(("c",)) == "C"

    def test_capacity_zero_disables_storage_not_counting(self):
        reset_model_cache(0)
        topo = hypercube(3)
        tm = all_to_all(topo)
        for _ in range(3):
            solve_throughput_lp(topo, tm)
        stats = model_cache().stats()
        assert len(model_cache()) == 0
        assert stats["hits"] == 0
        assert stats["misses"] == 3
        assert stats["builds"] == 3

    def test_knob_sets_singleton_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_LPMODEL_CACHE", "5")
        reset_model_cache(None)  # re-read the knob
        assert model_cache().capacity == 5


class TestCrossStructureIsolation:
    def test_distinct_structures_never_share_a_skeleton(self):
        a, b = hypercube(3), jellyfish(12, 3, seed=9)
        ag_a, ag_b = as_arcgraph(a), as_arcgraph(b)
        tm_a, tm_b = all_to_all(a), all_to_all(b)
        assert skeleton_key(ag_a, tm_a) != skeleton_key(ag_b, tm_b)
        sk_a, hit_a = skeleton_for(ag_a, tm_a)
        sk_b, hit_b = skeleton_for(ag_b, tm_b)
        assert not hit_a and not hit_b  # second build not served by first
        assert sk_a is not sk_b
        assert (sk_a.n_nodes, sk_a.n_arcs) != (sk_b.n_nodes, sk_b.n_arcs)
        _assert_bit_identical(_solve_cold(a, tm_a), solve_throughput_lp(a, tm_a))
        _assert_bit_identical(_solve_cold(b, tm_b), solve_throughput_lp(b, tm_b))

    def test_same_structure_different_sparsity_splits_key(self):
        topo = hypercube(3)
        ag = as_arcgraph(topo)
        full = all_to_all(topo)
        sparse_demand = full.demand.copy()
        sparse_demand[0, :] = 0.0
        sparse = TrafficMatrix(demand=sparse_demand, kind="a2a-minus-row")
        assert skeleton_key(ag, full) != skeleton_key(ag, sparse)

    def test_value_changes_do_not_split_key(self):
        topo = hypercube(3)
        ag = as_arcgraph(topo)
        tm = all_to_all(topo)
        scaled = TrafficMatrix(demand=tm.demand * 3.5, kind=tm.kind)
        assert skeleton_key(ag, tm) == skeleton_key(ag, scaled)
        assert skeleton_key(ag.with_caps(ag.caps * 0.25), tm) == skeleton_key(
            ag, tm
        )


class TestKeysUnchanged:
    def test_instance_key_blind_to_skeleton_state(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        reset_model_cache(0)
        key_disabled = instance_key(topo, tm)
        reset_model_cache(DEFAULT_CAPACITY)
        key_cold = instance_key(topo, tm)
        solve_throughput_lp(topo, tm)  # populate the skeleton cache
        key_warm = instance_key(topo, tm)
        assert key_disabled == key_cold == key_warm

    def test_disk_cache_written_cold_served_warm(self, tmp_path):
        # A result cached before the model cache existed (simulated by a
        # capacity-0 solve) must be served verbatim to a skeleton-warm run:
        # same instance_key, zero re-solves.
        topo = hypercube(3)
        tm = all_to_all(topo)
        cache = ResultCache(tmp_path)
        reset_model_cache(0)
        cold = BatchSolver(workers=1, cache=cache).solve(
            SolveRequest(topo, tm, engine="lp")
        )
        reset_model_cache(DEFAULT_CAPACITY)
        warm_solver = BatchSolver(workers=1, cache=cache)
        warm = warm_solver.solve(SolveRequest(topo, tm, engine="lp"))
        assert warm.from_cache and warm_solver.n_solved == 0
        _assert_bit_identical(cold.require(), warm.require())


class TestBatchPlumbing:
    def test_solver_counts_skeleton_hits_and_misses(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        solver = BatchSolver(workers=1, cache=ResultCache(tmp_path))
        snap = solver.snapshot()
        solver.solve(SolveRequest(topo, tm, engine="lp", tag="a"))
        ag = as_arcgraph(topo)
        solver.solve(
            SolveRequest(ag.with_caps(ag.caps * 0.5), tm, engine="lp", tag="b")
        )
        stats = solver.stats_since(snap)
        assert stats["skeleton_misses"] == 1
        assert stats["skeleton_hits"] == 1
        # A result-cache hit is not a fresh solve: counters must not move.
        before = solver.snapshot()
        solver.solve(SolveRequest(topo, tm, engine="lp", tag="a"))
        after = solver.stats_since(before)
        assert after["skeleton_hits"] == 0 and after["skeleton_misses"] == 0

    def test_request_group_key_only_groups_lp(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        lp_req = SolveRequest(topo, tm, engine="lp")
        mwu_req = SolveRequest(topo, tm, engine="mwu")
        assert request_group_key(lp_req) is not None
        assert request_group_key(mwu_req) is None
        assert request_group_key(lp_req) == request_group_key(
            SolveRequest(as_arcgraph(topo), tm, engine="lp")
        )

    def test_group_chunks_splits_groups_and_isolates_ungrouped(self):
        keys = ["g1", "g1", "g1", "g1", None, "g2"]
        chunks = group_chunks(keys, workers=2)
        covered = sorted(i for chunk in chunks for i in chunk)
        assert covered == list(range(len(keys)))
        # g1's four requests split across exactly two chunks of two.
        g1_chunks = [c for c in chunks if keys[c[0]] == "g1"]
        assert sorted(len(c) for c in g1_chunks) == [2, 2]
        # The ungrouped request stays alone.
        assert [c for c in chunks if keys[c[0]] is None] == [[4]]

    def test_assemble_throughput_lp_reports_cache_hit(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        first = assemble_throughput_lp(topo, tm)
        second = assemble_throughput_lp(topo, tm)
        assert not first.skeleton_hit and second.skeleton_hit
        assert first.n_constraints == second.n_constraints
        assert np.array_equal(first.b_eq, second.b_eq)
        assert (first.A_eq != second.A_eq).nnz == 0
        assert (first.A_ub != second.A_ub).nnz == 0
