"""Tests for ``repro.service`` — throughput-as-a-service over one Session.

The harness below runs a real :class:`ThroughputService` — real asyncio
server, real sockets, real :class:`ServiceClient` connections — on an
ephemeral port, against a tiny-scale :class:`Session` with a persistent
cache.  Instances are uploaded ring adjacencies (milliseconds to solve,
and their size is under the test's control), so the suite exercises the
full concurrency story — shared cache across clients, single-flight
dedupe, SSE streaming, admission 429s, per-tenant attribution — without
slow representative topologies.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time

import pytest

from repro.api import Session, run_experiment
from repro.batch import BatchSolver, SolveRequest, use_tenant
from repro.batch.cache import ResultCache, SqliteResultCache
from repro.evaluation.runner import ScaleConfig
from repro.service import (
    InstanceCache,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ThroughputService,
    parse_query,
)
from repro.service.http import HttpError
from repro.topologies import jellyfish
from repro.traffic import all_to_all
from repro.utils.serialization import _coerce

TINY = ScaleConfig("small", max_servers=24, max_switches=40, samples=1, shuffles=1)


def ring(n: int, cap: float = 1.0):
    """Bidirectional n-cycle as an uploadable adjacency matrix."""
    dense = [[0.0] * n for _ in range(n)]
    for i in range(n):
        dense[i][(i + 1) % n] = cap
        dense[(i + 1) % n][i] = cap
    return dense


def ring_doc(n: int, engine: str = "lp", params=None):
    doc = {
        "topology": {"adjacency": ring(n)},
        "tm": {"kind": "uniform"},
        "engine": engine,
    }
    if params:
        doc["params"] = params
    return doc


#: ~4s of MWU iterations: the deterministic "slow query" that keeps an
#: admission slot busy long enough for saturation tests to observe it.
SLOW_DOC = ring_doc(16, engine="mwu", params={"epsilon": 0.05})


@pytest.fixture()
def session(tmp_path):
    with Session(scale=TINY, seed=0, workers=1, cache_dir=tmp_path / "cache") as s:
        yield s


@contextlib.contextmanager
def serving(session: Session, **overrides):
    """Run a ThroughputService on an ephemeral port in a background loop."""
    config = ServiceConfig(host="127.0.0.1", port=0, **overrides)
    box: dict = {}
    ready = threading.Event()

    def runner() -> None:
        async def main() -> None:
            service = ThroughputService(session, config)
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            box["addr"] = await service.start()
            ready.set()
            await service.wait_drained()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - harness diagnostics
            box["error"] = exc
            ready.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    if "error" in box:
        raise box["error"]
    try:
        yield box["addr"][1], box["service"], box["loop"]
    finally:
        future = asyncio.run_coroutine_threadsafe(
            box["service"].drain(), box["loop"]
        )
        future.result(timeout=60)
        thread.join(timeout=10)


# ----------------------------------------------------- solver thread safety
class TestBatchSolverThreadSafety:
    """Satellite: racing submitters on one shared BatchSolver."""

    def test_racing_submitters_keep_counters_exact(self, tmp_path):
        shared = jellyfish(10, 3, seed=11)
        shared_tm = all_to_all(shared)
        distinct = {
            name: jellyfish(12, 3, seed=s)
            for name, s in (("a1", 21), ("a2", 22), ("b1", 23))
        }
        batches = {
            "alice": [
                SolveRequest(distinct["a1"], all_to_all(distinct["a1"]), engine="lp"),
                SolveRequest(distinct["a2"], all_to_all(distinct["a2"]), engine="lp"),
                SolveRequest(shared, shared_tm, engine="lp"),
            ],
            "bob": [
                SolveRequest(distinct["b1"], all_to_all(distinct["b1"]), engine="lp"),
                SolveRequest(shared, shared_tm, engine="lp"),
            ],
        }
        values: dict = {}
        barrier = threading.Barrier(2)

        with BatchSolver(workers=1, cache=ResultCache(tmp_path / "c")) as solver:

            def submit(tenant: str) -> None:
                with use_tenant(tenant):
                    barrier.wait()
                    outcomes = solver.solve_many(batches[tenant])
                values[tenant] = [o.require().value for o in outcomes]

            threads = [
                threading.Thread(target=submit, args=(t,)) for t in batches
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = solver.stats()

        # Exact accounting despite the race: 5 requests over 4 unique keys.
        assert stats["requests"] == 5
        assert stats["errors"] == 0
        assert stats["solved"] == 4, "shared instance must be solved once"
        assert stats["solved"] + stats["cache_hits"] == stats["requests"]
        # The shared instance answers bit-identically for both submitters.
        assert values["alice"][2] == values["bob"][1]
        # Per-tenant attribution survives the race.
        tenants = stats["tenants"]
        assert tenants["alice"]["requests"] == 3
        assert tenants["bob"]["requests"] == 2
        assert sum(t["solved"] for t in tenants.values()) == 4

    def test_session_query_is_concurrency_safe(self, tmp_path):
        topo = jellyfish(10, 3, seed=11)
        tm = all_to_all(topo)
        results = []
        with Session(seed=0, cache_dir=tmp_path / "c") as session:
            def ask() -> None:
                results.append(session.query(topo, tm, engine="lp"))

            threads = [threading.Thread(target=ask) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = session.stats()
        assert len(results) == 4
        assert len({o.require().value for o in results}) == 1
        assert len({o.key for o in results}) == 1
        assert stats["solved"] == 1, "single-flight dedupe must collapse solves"
        assert stats["cache_hits"] == 3


# ------------------------------------------------------------ query grammar
class TestParseQuery:
    def test_flat_and_nested_forms_agree(self):
        flat = parse_query({"family": "jellyfish", "seed": 3})
        nested = parse_query({"topology": {"family": "jellyfish", "seed": 3}})
        assert flat.canonical() == nested.canonical()
        assert flat.tm_doc == {"kind": "all_to_all"}

    def test_upload_defaults_to_uniform_tm(self):
        spec = parse_query({"adjacency": ring(4)})
        assert spec.tm_doc == {"kind": "uniform"}

    def test_all_to_all_rejected_for_uploads(self):
        with pytest.raises(HttpError) as err:
            parse_query({"adjacency": ring(4), "tm": {"kind": "all_to_all"}})
        assert err.value.status == 400
        assert "server placements" in err.value.message

    @pytest.mark.parametrize(
        "doc",
        [
            [],
            {"family": "moebius"},
            {"topology": {}},
            {"adjacency": []},
            {"adjacency": ring(4), "engine": "simplex"},
            {"adjacency": ring(4), "params": "epsilon=0.1"},
            {"family": "jellyfish", "ladder": "first"},
        ],
    )
    def test_junk_documents_are_400(self, doc):
        with pytest.raises(HttpError) as err:
            parse_query(doc)
        assert err.value.status == 400

    def test_non_square_adjacency_rejected_at_resolution(self):
        spec = parse_query({"adjacency": [[0.0, 1.0], [1.0, 0.0], [0.0, 0.0]]})
        with pytest.raises(HttpError) as err:
            InstanceCache().resolve(spec)
        assert err.value.status == 400
        assert "square" in err.value.message

    def test_instance_cache_memoizes_canonical_specs(self):
        cache = InstanceCache()
        spec = parse_query(ring_doc(6))
        topo1, tm1 = cache.resolve(spec)
        topo2, tm2 = cache.resolve(parse_query(ring_doc(6)))
        assert topo1 is topo2 and tm1 is tm2
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}


# ------------------------------------------------------------ live service
class TestServiceEndpoints:
    def test_healthz_stats_and_routing(self, session):
        with serving(session) as (port, service, _loop):
            with ServiceClient(port=port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                stats = client.stats()
                assert stats["service"]["admission"]["inflight"] == 0
                assert "solver" in stats and "cache" in stats
                with pytest.raises(ServiceError) as err:
                    client._request("GET", "/nope")
                assert err.value.status == 404
                with pytest.raises(ServiceError) as err:
                    client.throughput({"topology": {"family": "moebius"}})
                assert err.value.status == 400

    def test_get_with_url_params_matches_post(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port) as client:
                posted = client.throughput(
                    {"family": "hypercube", "seed": 0, "engine": "lp",
                     "topology": {"family": "hypercube", "ladder": 0,
                                  "max_servers": 24}}
                )
                got = client._request(
                    "GET",
                    "/throughput?family=hypercube&ladder=0&max_servers=24"
                    "&engine=lp",
                )
                assert got["value"] == posted["value"]
                assert got["key"] == posted["key"]
                assert got["from_cache"] is True

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_cold_then_warm_round_trip(self, tmp_path, backend):
        # The service story names the sqlite backend (concurrent-writer
        # safe); both backends must serve warm hits identically.
        cache = (
            SqliteResultCache(tmp_path / "c.sqlite")
            if backend == "sqlite"
            else ResultCache(tmp_path / "c")
        )
        with Session(scale=TINY, seed=0, cache=cache) as session:
            with serving(session) as (port, _service, _loop):
                with ServiceClient(port=port, tenant="warmth") as client:
                    cold = client.throughput(ring_doc(8))
                    warm = client.throughput(ring_doc(8))
            stats = session.stats()
        assert cold["from_cache"] is False and warm["from_cache"] is True
        assert warm["value"] == cold["value"]
        assert warm["key"] == cold["key"]
        assert stats["solved"] == 1

    def test_draining_service_rejects_with_503(self, session):
        with serving(session) as (port, service, loop):
            done = threading.Event()
            loop.call_soon_threadsafe(
                lambda: (setattr(service, "draining", True), done.set())
            )
            assert done.wait(5)
            with ServiceClient(port=port) as client:
                with pytest.raises(ServiceError) as err:
                    client.throughput(ring_doc(6))
                assert err.value.status == 503


class TestConcurrentClients:
    def test_shared_cache_and_tenant_attribution(self, session):
        """N clients, one topology: one solve, N-1 hits, all attributed."""
        n_clients = 4
        answers: list = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_clients)

        def hammer(index: int) -> None:
            with ServiceClient(port=port, tenant=f"team-{index}") as client:
                barrier.wait()
                answer = client.query_with_retry(ring_doc(10))
                with lock:
                    answers.append(answer)

        with serving(session) as (port, _service, _loop):
            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(port=port) as client:
                stats = client.stats()

        assert len(answers) == n_clients
        assert len({a["value"] for a in answers}) == 1
        assert len({a["key"] for a in answers}) == 1
        solver = stats["solver"]
        assert solver["solved"] == 1, "concurrent same-key queries must dedupe"
        assert solver["cache_hits"] == n_clients - 1
        # Every tenant shows up in both solver and cache attribution.
        expected = {f"team-{i}" for i in range(n_clients)}
        assert expected <= set(solver["tenants"])
        assert sum(t["requests"] for t in solver["tenants"].values()) == n_clients
        cache_tenants = stats["cache"]["tenants"]
        assert expected <= set(cache_tenants)
        assert sum(t["hits"] for t in cache_tenants.values()) == n_clients - 1


class TestSimEngineService:
    """Satellite: the ``sim`` engine through the live service — uploaded
    adjacencies reach it as bare ArcGraphs, so the whole path must stay
    graph-free (no Topology attributes, no networkx)."""

    def test_sim_round_trip_and_key_isolation(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port, tenant="simmer") as client:
                sim_cold = client.throughput(ring_doc(8, engine="sim"))
                sim_warm = client.throughput(ring_doc(8, engine="sim"))
                lp = client.throughput(ring_doc(8, engine="lp"))
                stats = client.stats()
        assert sim_cold["from_cache"] is False and sim_warm["from_cache"] is True
        assert sim_warm["value"] == sim_cold["value"]
        assert sim_warm["key"] == sim_cold["key"]
        # Engine is part of the cache key: the same instance under lp must
        # neither collide with nor warm the sim entry.
        assert lp["key"] != sim_cold["key"]
        assert lp["from_cache"] is False
        # On a uniform ring ECMP water-filling is LP-optimal.
        assert sim_cold["value"] == pytest.approx(lp["value"], rel=1e-9)
        assert stats["solver"]["solved"] == 2

    def test_sim_get_query_on_generated_family(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port) as client:
                got = client._request(
                    "GET",
                    "/throughput?family=hypercube&ladder=0&max_servers=24"
                    "&engine=sim",
                )
                lp = client._request(
                    "GET",
                    "/throughput?family=hypercube&ladder=0&max_servers=24"
                    "&engine=lp",
                )
        assert got["value"] > 0
        assert got["key"] != lp["key"]
        # Hypercube A2A is ECMP-fair: sim captures the LP optimum exactly.
        assert got["value"] == pytest.approx(lp["value"], rel=1e-9)

    def test_sim_tenant_attribution(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port, tenant="sim-team") as client:
                client.throughput(ring_doc(6, engine="sim"))
                client.throughput(ring_doc(6, engine="sim"))
                stats = client.stats()
        tenants = stats["solver"]["tenants"]
        assert tenants["sim-team"]["requests"] == 2
        assert tenants["sim-team"]["solved"] == 1
        cache_tenants = stats["cache"]["tenants"]
        assert cache_tenants["sim-team"]["hits"] == 1

    def test_unknown_engine_still_400(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port) as client:
                with pytest.raises(ServiceError) as err:
                    client.throughput(ring_doc(6, engine="fluid"))
                assert err.value.status == 400


# -------------------------------------------------------------------- jobs
class TestJobStreaming:
    def test_sse_stream_is_bit_identical_to_blocking_run(self, session):
        blocking = run_experiment("routing-gap", scale=TINY, seed=0)
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port, tenant="streamer") as client:
                submitted = client.submit({"experiment": "routing-gap"})
                assert submitted["kind"] == "experiment"
                frames = list(client.events(submitted["job"]))
                replay = list(client.events(submitted["job"]))

        # Terminal frames: result then end, exactly once each.
        names = [name for name, _ in frames]
        assert names[-1] == "end" and names[-2] == "result"
        assert names.count("result") == 1
        assert frames[-1][1]["status"] == "done"

        # Rows stream 1:1 with the blocking path, bit-identical through
        # the same JSON round-trip the wire imposes.
        normalize = lambda rows: json.loads(  # noqa: E731
            json.dumps(_coerce([list(r) for r in rows]))
        )
        streamed_rows = [p["row"] for name, p in frames if name == "row"]
        assert streamed_rows == normalize(blocking.rows)
        result = frames[-2][1]
        assert result["rows"] == normalize(blocking.rows)
        assert result["headers"] == list(blocking.headers)
        assert result["checks"] == dict(blocking.checks)

        # A late consumer replays the identical stream.
        assert replay == frames

    def test_submitted_query_job_and_status(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port, tenant="jobber") as client:
                submitted = client.submit(ring_doc(6))
                frames = list(client.events(submitted["job"]))
                status = client.job(submitted["job"])
                with pytest.raises(ServiceError) as err:
                    client.job("job-999999")
        assert err.value.status == 404
        assert [n for n, _ in frames] == ["result", "end"]
        assert status["status"] == "done"
        assert status["result"]["value"] == frames[0][1]["value"]

    def test_unknown_experiment_is_rejected_at_submit(self, session):
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port) as client:
                with pytest.raises(ServiceError) as err:
                    client.submit({"experiment": "fig99"})
                assert err.value.status == 400


# -------------------------------------------------------- admission control
class TestAdmissionControl:
    def test_saturation_answers_429_then_retry_succeeds(self, session):
        with serving(session, max_inflight=1, tenant_cap=1) as (
            port,
            _service,
            _loop,
        ):
            with ServiceClient(port=port, tenant="patient") as client:
                # Occupy the whole budget with the slow MWU job...
                slow = client.submit(SLOW_DOC)
                # ...so an immediate sync query is refused with 429.
                with pytest.raises(ServiceError) as err:
                    client.throughput(ring_doc(6))
                assert err.value.status == 429
                assert err.value.retry_after > 0
                # The polite retry loop lands once the slot frees.
                answer = client.query_with_retry(
                    ring_doc(6), deadline_seconds=60
                )
                assert answer["value"] == pytest.approx(10 / 9)
                stats = client.stats()
                slow_status = client.job(slow["job"])
        assert stats["service"]["admission"]["rejected"] >= 1
        assert stats["service"]["admission"]["inflight"] == 0
        assert slow_status["status"] == "done"

    def test_tenant_cap_spares_other_tenants(self, session):
        with serving(session, max_inflight=8, tenant_cap=1) as (
            port,
            _service,
            _loop,
        ):
            with ServiceClient(port=port, tenant="greedy") as greedy, \
                    ServiceClient(port=port, tenant="modest") as modest:
                greedy.submit(SLOW_DOC)
                with pytest.raises(ServiceError) as err:
                    greedy.throughput(ring_doc(6))
                assert err.value.status == 429
                assert "greedy" in err.value.message
                # A different tenant sails through the same instant.
                answer = modest.throughput(ring_doc(6))
                assert answer["from_cache"] is False

    def test_sync_timeout_keeps_job_warming_the_cache(self, session):
        slowish = ring_doc(12, engine="mwu", params={"epsilon": 0.1})
        with serving(session) as (port, _service, _loop):
            with ServiceClient(port=port, tenant="impatient") as client:
                with pytest.raises(ServiceError) as err:
                    client.throughput(slowish, timeout=0.05)
                assert err.value.status == 504
                assert "job-" in err.value.message
                job_id = err.value.message.split("job ")[1].split(" ")[0]
                # The abandoned job runs to completion and warms the cache.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    status = client.job(job_id)
                    if status["status"] != "running":
                        break
                    time.sleep(0.1)
                assert status["status"] == "done"
                warm = client.throughput(slowish)
                assert warm["from_cache"] is True
                assert warm["value"] == status["result"]["value"]
                stats = client.stats()
        assert stats["service"]["admission"]["inflight"] == 0, (
            "a timed-out sync query must not leak its admission slot"
        )
