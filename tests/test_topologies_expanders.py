"""Tests for HyperX, Jellyfish, Long Hop, Slim Fly and the theory graphs."""

import networkx as nx
import numpy as np
import pytest

from repro.topologies import (
    HyperXDesign,
    clustered_random_graph,
    design_hyperx,
    hyperx,
    hyperx_for_terminals,
    jellyfish,
    longhop,
    longhop_generators,
    natural_network,
    natural_network_suite,
    random_expander,
    slimfly,
    slimfly_valid_q,
    subdivided_expander,
)


class TestHyperX:
    def test_lattice_sizes(self):
        t = hyperx(2, 4, 1, 2)
        assert t.n_switches == 16
        assert t.n_servers == 32
        assert np.all(t.degree_sequence() == 2 * 3)

    def test_multiplicity(self):
        t = hyperx(1, 4, 3, 1)
        assert np.all(t.degree_sequence() == 9)
        assert t.n_links == 4 * 3 // 2 * 3

    def test_design_respects_radix(self):
        d = design_hyperx(radix=16, n_terminals=64, bisection=0.4)
        assert d is not None
        assert d.switch_radix <= 16
        assert d.n_servers >= 64
        assert d.relative_bisection >= 0.4

    def test_design_infeasible_returns_none(self):
        assert design_hyperx(radix=3, n_terminals=10_000, bisection=0.5) is None

    def test_design_deterministic(self):
        a = design_hyperx(radix=24, n_terminals=128, bisection=0.4)
        b = design_hyperx(radix=24, n_terminals=128, bisection=0.4)
        assert a == b

    def test_build_from_design(self):
        topo = hyperx_for_terminals(radix=16, n_terminals=32, bisection=0.4)
        assert topo is not None
        assert topo.n_servers >= 32
        assert topo.params["relative_bisection"] >= 0.4

    def test_bisection_formula(self):
        # L=1, S=4, K=1, T=2: cut = 2*2 = 4 cables, half hosts = 4 -> 1.0
        d = HyperXDesign(L=1, S=4, K=1, T=2)
        assert d.relative_bisection == pytest.approx(1.0)


class TestJellyfish:
    def test_regular_connected(self):
        t = jellyfish(20, 5, seed=0)
        assert np.all(t.degree_sequence() == 5)
        assert t.is_connected()

    def test_seed_reproducible(self):
        a = jellyfish(16, 4, seed=3)
        b = jellyfish(16, 4, seed=3)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_servers(self):
        t = jellyfish(10, 3, servers_per_node=4, seed=0)
        assert t.n_servers == 40

    def test_parity_error(self):
        with pytest.raises(ValueError):
            jellyfish(9, 3, seed=0)


class TestLongHop:
    def test_generators_include_basis(self):
        gens = longhop_generators(5, 8)
        assert set(gens) >= {1 << i for i in range(5)}
        assert len(gens) == len(set(gens)) == 8

    def test_cayley_degree_and_size(self):
        t = longhop(5)
        assert t.n_switches == 32
        expected_degree = 5 + 3  # dim + ceil(dim/2)
        assert np.all(t.degree_sequence() == expected_degree)

    def test_connected_and_vertex_transitive_degree(self):
        t = longhop(6, degree=9)
        assert t.is_connected()
        assert np.all(t.degree_sequence() == 9)

    def test_contains_hypercube(self):
        t = longhop(4, degree=6)
        for v in range(16):
            for i in range(4):
                assert t.graph.has_edge(v, v ^ (1 << i))

    def test_diameter_shrinks_vs_hypercube(self):
        t = longhop(6)
        assert nx.diameter(t.graph) < 6

    def test_degree_bounds(self):
        with pytest.raises(ValueError):
            longhop_generators(4, 3)  # below dim
        with pytest.raises(ValueError):
            longhop_generators(3, 8)  # above 2^dim - 1


class TestSlimFly:
    @pytest.mark.parametrize("q", [5, 13])
    def test_mms_identities(self, q):
        t = slimfly(q)
        assert t.n_switches == 2 * q * q
        assert np.all(t.degree_sequence() == (3 * q - 1) // 2)
        assert nx.diameter(t.graph) == 2

    def test_valid_q_list(self):
        assert slimfly_valid_q(37) == [5, 13, 17, 29, 37]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            slimfly(8)  # not prime
        with pytest.raises(ValueError):
            slimfly(7)  # prime but 3 mod 4


class TestTheoryGraphs:
    def test_random_expander(self):
        t = random_expander(24, 4, seed=0)
        assert np.all(t.degree_sequence() == 4)

    def test_clustered_random_graph(self):
        t = clustered_random_graph(32, 3, 2, seed=1)
        assert t.n_switches == 32
        assert np.all(t.degree_sequence() == 6)
        # Exactly beta * n/2 inter-cluster edges.
        inter = [
            (u, v) for u, v in t.graph.edges() if (u < 16) != (v < 16)
        ]
        assert len(inter) == 2 * 16

    def test_clustered_invalid(self):
        with pytest.raises(ValueError):
            clustered_random_graph(31, 3, 2, seed=0)  # odd n
        with pytest.raises(ValueError):
            clustered_random_graph(32, 2, 4, seed=0)  # beta = 2d

    def test_subdivided_expander_sizes(self):
        t = subdivided_expander(12, 4, 3, seed=0)
        n_edges_core = 12 * 4 // 2
        assert t.n_switches == 12 + n_edges_core * 2
        assert t.n_servers == t.n_switches  # servers on relays by default

    def test_subdivided_p1_is_expander(self):
        t = subdivided_expander(12, 4, 1, seed=0)
        assert t.n_switches == 12

    def test_subdivided_without_relay_servers(self):
        t = subdivided_expander(12, 4, 2, seed=0, servers_on_relays=False)
        assert t.n_servers == 12


class TestNaturalNetworks:
    def test_suite_size_and_connectivity(self):
        suite = natural_network_suite(seed=0, count=18)
        assert len(suite) == 18
        assert all(t.is_connected() for t in suite)

    def test_all_kinds_buildable(self):
        for kind in (
            "smallworld",
            "scalefree",
            "plcluster",
            "community",
            "geometric",
            "tree_chords",
        ):
            t = natural_network(kind, 24, seed=1)
            assert t.is_connected()
            assert t.n_servers == t.n_switches

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            natural_network("nope", 24, seed=0)
