"""Tests for the TrafficMatrix core type."""

import numpy as np
import pytest

from repro.traffic import TrafficMatrix


def simple_tm():
    d = np.zeros((3, 3))
    d[0, 1] = 1.0
    d[1, 2] = 2.0
    return TrafficMatrix(demand=d, kind="test")


class TestConstruction:
    def test_basic_properties(self):
        tm = simple_tm()
        assert tm.n_nodes == 3
        assert tm.n_flows == 2
        assert tm.total_demand() == 3.0

    def test_pairs(self):
        src, dst, w = simple_tm().pairs()
        assert src.tolist() == [0, 1]
        assert dst.tolist() == [1, 2]
        assert w.tolist() == [1.0, 2.0]

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix(demand=np.zeros((2, 3)))

    def test_negative_rejected(self):
        d = np.zeros((2, 2))
        d[0, 1] = -1
        with pytest.raises(ValueError):
            TrafficMatrix(demand=d)

    def test_diagonal_rejected(self):
        d = np.eye(3)
        with pytest.raises(ValueError):
            TrafficMatrix(demand=d)


class TestHose:
    def test_utilization(self):
        tm = simple_tm()
        servers = np.array([1, 1, 1])
        # node 1: egress 2 -> utilization 2.
        assert tm.hose_utilization(servers) == 2.0
        assert not tm.is_hose(servers)

    def test_normalized(self):
        tm = simple_tm().normalized_hose(np.array([1, 1, 1]))
        assert tm.hose_utilization(np.array([1, 1, 1])) == pytest.approx(1.0)

    def test_zero_server_demand_invalid(self):
        tm = simple_tm()
        servers = np.array([0, 1, 1])
        assert not tm.is_hose(servers)
        with pytest.raises(ValueError):
            tm.normalized_hose(servers)

    def test_all_zero_normalize_raises(self):
        tm = TrafficMatrix(demand=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            tm.normalized_hose(np.array([1, 1]))

    def test_ingress_counts_too(self):
        d = np.zeros((3, 3))
        d[0, 2] = 1.0
        d[1, 2] = 1.0  # node 2 ingress = 2
        tm = TrafficMatrix(demand=d)
        assert tm.hose_utilization(np.ones(3)) == 2.0


class TestTransforms:
    def test_scaled(self):
        tm = simple_tm().scaled(2.0)
        assert tm.total_demand() == 6.0

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            simple_tm().scaled(0)

    def test_shuffled_preserves_multiset(self):
        tm = simple_tm()
        sh = tm.shuffled(seed=1)
        assert sorted(sh.demand.flatten()) == sorted(tm.demand.flatten())
        assert np.all(np.diag(sh.demand) == 0)

    def test_permuted_roundtrip(self):
        tm = simple_tm()
        perm = np.array([2, 0, 1])
        p = tm.permuted(perm)
        # role r moved to node perm[r]
        assert p.demand[perm[0], perm[1]] == 1.0
        assert p.demand[perm[1], perm[2]] == 2.0

    def test_permuted_invalid(self):
        with pytest.raises(ValueError):
            simple_tm().permuted(np.array([0, 0, 1]))

    def test_embedded(self):
        tm = simple_tm()
        emb = tm.embedded(6, np.array([5, 3, 0]))
        assert emb.n_nodes == 6
        assert emb.demand[5, 3] == 1.0
        assert emb.demand[3, 0] == 2.0
        assert emb.total_demand() == tm.total_demand()

    def test_embedded_validations(self):
        tm = simple_tm()
        with pytest.raises(ValueError):
            tm.embedded(6, np.array([1, 1, 2]))  # duplicates
        with pytest.raises(ValueError):
            tm.embedded(2, np.array([0, 1, 2]))  # out of range

    def test_restricted(self):
        tm = simple_tm()
        sub = tm.restricted(np.array([0, 1]))
        assert sub.n_nodes == 2
        assert sub.demand[0, 1] == 1.0
        assert sub.total_demand() == 1.0

    def test_demand_weighted_distance(self):
        tm = simple_tm()
        dist = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        # (1*1 + 2*3) / 3
        assert tm.demand_weighted_distance(dist) == pytest.approx(7 / 3)
