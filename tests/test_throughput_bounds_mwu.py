"""Tests for bounds and the MWU approximate engine."""

import numpy as np
import pytest

from repro.topologies import hypercube, jellyfish
from repro.traffic import TrafficMatrix, all_to_all, longest_matching, random_matching
from repro.throughput import (
    solve_throughput_mwu,
    throughput,
    volumetric_upper_bound,
    worst_case_lower_bound,
)


class TestBounds:
    def test_lower_bound_is_half_a2a(self, small_hypercube):
        lb = worst_case_lower_bound(small_hypercube)
        a2a = throughput(small_hypercube, all_to_all(small_hypercube)).value
        assert lb == pytest.approx(a2a / 2)

    def test_theorem2_for_matchings(self, small_jellyfish):
        lb = worst_case_lower_bound(small_jellyfish)
        for seed in range(3):
            tm = random_matching(small_jellyfish, seed=seed)
            assert throughput(small_jellyfish, tm).value >= lb - 1e-9

    def test_volumetric_upper_bound_holds(self, small_jellyfish):
        for tm in (all_to_all(small_jellyfish), longest_matching(small_jellyfish)):
            ub = volumetric_upper_bound(small_jellyfish, tm)
            t = throughput(small_jellyfish, tm).value
            assert t <= ub + 1e-9

    def test_volumetric_tight_on_hypercube_lm(self, medium_hypercube):
        # Paper §II-C: the antipodal matching saturates all links.
        tm = longest_matching(medium_hypercube)
        ub = volumetric_upper_bound(medium_hypercube, tm)
        assert ub == pytest.approx(1.0)
        assert throughput(medium_hypercube, tm).value == pytest.approx(1.0, rel=1e-6)

    def test_volumetric_rejects_empty(self, small_hypercube):
        with pytest.raises(ValueError):
            volumetric_upper_bound(
                small_hypercube, TrafficMatrix(demand=np.zeros((8, 8)))
            )


class TestMWU:
    @pytest.mark.parametrize("epsilon", [0.05, 0.1])
    def test_within_tolerance_of_lp(self, epsilon):
        topo = jellyfish(16, 4, seed=7)
        tm = longest_matching(topo)
        exact = throughput(topo, tm).value
        approx = solve_throughput_mwu(topo, tm, epsilon=epsilon).value
        assert approx <= exact + 1e-9  # feasible => lower bound
        assert approx >= exact * (1 - 3.2 * epsilon)  # (1-eps)^3 guarantee

    def test_a2a_on_hypercube(self, small_hypercube):
        tm = all_to_all(small_hypercube)
        exact = throughput(small_hypercube, tm).value
        approx = solve_throughput_mwu(small_hypercube, tm, epsilon=0.1).value
        assert approx == pytest.approx(exact, rel=0.35)
        assert approx <= exact + 1e-9

    def test_invalid_epsilon(self, small_hypercube):
        with pytest.raises(ValueError):
            solve_throughput_mwu(small_hypercube, all_to_all(small_hypercube), epsilon=1.5)

    def test_reports_phases(self, small_hypercube):
        res = solve_throughput_mwu(
            small_hypercube, all_to_all(small_hypercube), epsilon=0.2
        )
        assert res.meta["phases"] >= 1
        assert res.engine == "mwu"

    def test_empty_tm_is_nan(self, small_hypercube):
        # 0/0 answers NaN per the safe_ratio convention, never raises
        # (tests/test_edge_cases.py pins this for every engine).
        res = solve_throughput_mwu(
            small_hypercube, TrafficMatrix(demand=np.zeros((8, 8)))
        )
        assert np.isnan(res.value)
        assert res.meta["status"] == "zero-demand"
