"""Tests for ``repro.lint`` — the repo-invariant static analyzer.

Each rule gets a fixture pair: a minimal snippet it must fire on and a
compliant snippet it must stay quiet on.  Framework behavior (suppression
comments, baseline grandfathering/staleness, JSON round-trip) is covered
on the same fixtures, and a meta-test asserts the real ``src/`` tree is
clean against the committed baseline — the linter linting the repo that
ships it.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    BaselineEntry,
    Finding,
    RULES,
    findings_from_json,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    save_baseline,
)
from repro.lint.baseline import partition
from repro.lint.model import ProjectModel

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files, docs=None):
    """Write ``{relpath: source}`` under a src/ tree and lint it."""
    src = tmp_path / "src"
    for relpath, source in files.items():
        path = src / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for name, text in (docs or {}).items():
        (tmp_path / name).write_text(text)
    return src


def lint(tmp_path, files, rules=None, docs=None, baseline=None):
    src = make_project(tmp_path, files, docs=docs)
    return run_lint(
        paths=[src],
        rules=rules,
        baseline=baseline or (tmp_path / "missing-baseline.json"),
        project_root=tmp_path,
    )


def rule_ids(result):
    return [finding.rule for finding in result.findings]


class TestRuleCatalog:
    def test_all_seven_rules_registered(self):
        assert sorted(RULES) == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
        ]

    def test_rules_carry_rationale(self):
        for rule in RULES.values():
            assert rule.title and rule.rationale


class TestR001SolverBypass:
    def test_fires_on_direct_lp_call(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/evaluation/exp.py": """
                from repro.throughput.lp import solve_throughput_lp

                def run(topo, tm):
                    return solve_throughput_lp(topo, tm).value
                """
            },
            rules=["R001"],
        )
        assert rule_ids(result) == ["R001", "R001"]  # import + call

    def test_fires_on_aliased_module_call(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/theory/t.py": """
                from repro.throughput import approx as ap

                def run(topo, tm):
                    return ap.solve_throughput_mwu(topo, tm)
                """
            },
            rules=["R001"],
        )
        assert rule_ids(result) == ["R001"]

    def test_quiet_inside_throughput_and_batch(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/throughput/mcf2.py": """
                from repro.throughput.lp import solve_throughput_lp
                """,
                "repro/batch/solver2.py": """
                from repro.throughput.approx import solve_throughput_mwu
                """,
            },
            rules=["R001"],
        )
        assert result.findings == []

    def test_fires_in_service_handler(self, tmp_path):
        # repro.service is NOT in ALLOWED_PREFIXES: handlers must route
        # through Session/BatchSolver or the shared cache never sees them.
        result = lint(
            tmp_path,
            {
                "repro/service/shortcut.py": """
                from repro.throughput.lp import solve_throughput_lp

                def handle(topo, tm):
                    return solve_throughput_lp(topo, tm).value
                """
            },
            rules=["R001"],
        )
        assert rule_ids(result) == ["R001", "R001"]  # import + call

    def test_quiet_on_ambient_solver_use(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/evaluation/good.py": """
                from repro.batch.context import get_solver
                from repro.batch.jobs import SolveRequest

                def run(topo, tm):
                    return get_solver().solve(SolveRequest(topo, tm)).require().value
                """
            },
            rules=["R001"],
        )
        assert result.findings == []

    def test_fires_on_direct_sim_call(self, tmp_path):
        # The simulator entrypoint joined BANNED with the sim PR: direct
        # calls bypass the cache exactly like direct LP calls do.
        result = lint(
            tmp_path,
            {
                "repro/evaluation/shortcut.py": """
                from repro.sim.engine import solve_throughput_sim

                def run(topo, tm):
                    return solve_throughput_sim(topo, tm).value
                """
            },
            rules=["R001"],
        )
        assert rule_ids(result) == ["R001", "R001"]  # import + call

    def test_quiet_inside_sim_package(self, tmp_path):
        # repro.sim is an ALLOWED_PREFIX: the fluid layer may call its own
        # allocator-backed entrypoint without routing through the solver.
        result = lint(
            tmp_path,
            {
                "repro/sim/fluid2.py": """
                from repro.sim.engine import solve_throughput_sim
                """
            },
            rules=["R001"],
        )
        assert result.findings == []


class TestR002UnseededRng:
    def test_fires_on_unseeded_default_rng(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/traffic/gen.py": """
                import numpy as np

                def sample():
                    return np.random.default_rng().normal()
                """
            },
            rules=["R002"],
        )
        # unseeded default_rng() plus the legacy-normal call resolved on it
        assert "R002" in rule_ids(result)
        assert any("unseeded" in f.message for f in result.findings)

    def test_fires_on_legacy_global_state(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/traffic/gen.py": "import numpy as np\nx = np.random.rand(3)\n"},
            rules=["R002"],
        )
        assert rule_ids(result) == ["R002"]
        assert "legacy" in result.findings[0].message

    def test_fires_on_stdlib_random(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/traffic/gen.py": """
                import random

                def pick(items):
                    return random.choice(items)
                """
            },
            rules=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_fires_on_from_random_import(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/traffic/gen.py": "from random import shuffle\n"},
            rules=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_quiet_on_seeded_generator_discipline(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/traffic/gen.py": """
                import numpy as np

                from repro.utils.rng import ensure_rng

                def sample(seed=None):
                    rng = ensure_rng(seed)
                    sub = np.random.default_rng(rng.integers(2**63))
                    return sub.normal(), isinstance(rng, np.random.Generator)
                """
            },
            rules=["R002"],
        )
        assert result.findings == []


class TestR003StrayEnvKnob:
    def test_fires_on_environ_read(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/batch/knobby.py": """
                import os

                LIMIT = int(os.environ.get("REPRO_LIMIT", "10"))
                """
            },
            rules=["R003"],
        )
        assert rule_ids(result) == ["R003"]

    def test_fires_on_getenv_and_import(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/whatif/knobby.py": """
                import os
                from os import environ

                X = os.getenv("REPRO_X")
                """
            },
            rules=["R003"],
        )
        assert rule_ids(result) == ["R003", "R003"]

    def test_quiet_in_envknobs_whitelist_module(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/utils/envknobs.py": """
                import os

                def read_knob(name):
                    return os.environ.get(name)
                """
            },
            rules=["R003"],
        )
        assert result.findings == []


class TestR004SeedDependentHash:
    def test_fires_on_builtin_hash(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/utils/keys.py": "def key(x):\n    return hash(x)\n"},
            rules=["R004"],
        )
        assert rule_ids(result) == ["R004"]

    def test_fires_on_sort_key_id(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/utils/keys.py": "def order(xs):\n    return sorted(xs, key=id)\n"},
            rules=["R004"],
        )
        assert rule_ids(result) == ["R004"]

    def test_fires_on_id_feeding_key_function(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/batch/keys.py": """
                def instance_key(topo):
                    return make_key(id(topo))
                """
            },
            rules=["R004"],
        )
        assert rule_ids(result) == ["R004"]

    def test_quiet_on_hashlib_and_stable_seed(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/utils/keys.py": """
                import hashlib

                from repro.utils.rng import stable_seed

                def key(text):
                    return hashlib.sha256(text.encode()).hexdigest(), stable_seed(text)
                """
            },
            rules=["R004"],
        )
        assert result.findings == []


class TestR005NetworkxHotPath:
    def test_fires_on_networkx_import_in_core(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/core/walk.py": "import networkx as nx\n"},
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_fires_even_on_lazy_networkx_import(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/batch/payload.py": """
                def rebuild(doc):
                    import networkx as nx
                    return nx.Graph(doc)
                """
            },
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_fires_on_module_level_graphutils(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/whatif/overlay.py": "from repro.utils.graphutils import to_graph\n"},
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_quiet_on_lazy_graphutils_boundary(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/core/compilemod.py": """
                def compile_graph(graph):
                    from repro.utils.graphutils import canonical_arcs
                    return canonical_arcs(graph)
                """
            },
            rules=["R005"],
        )
        assert result.findings == []

    def test_fires_on_networkx_in_service(self, tmp_path):
        # repro.service joined HOT_PREFIXES with the service PR: a request
        # handler touching networkx would pay graph-walk costs per query.
        result = lint(
            tmp_path,
            {
                "repro/service/handlers.py": """
                import networkx as nx

                def parse_upload(doc):
                    return nx.from_numpy_array(doc)
                """
            },
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_quiet_on_arcgraph_native_service(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/service/handlers.py": """
                from repro.core import ArcGraph

                def parse_upload(tails, heads, caps):
                    return ArcGraph(4, tails, heads, caps)
                """
            },
            rules=["R005"],
        )
        assert result.findings == []

    def test_fires_on_networkx_in_sim(self, tmp_path):
        # repro.sim joined HOT_PREFIXES with the sim PR: the allocator
        # loop re-runs per fluid step, so graph walks there are per-step
        # costs, not one-time compilation.
        result = lint(
            tmp_path,
            {
                "repro/sim/routes2.py": """
                import networkx as nx

                def routes(topo):
                    return nx.shortest_path(topo.graph)
                """
            },
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_quiet_outside_hot_packages(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/topologies/fancy.py": "import networkx as nx\n"},
            rules=["R005"],
        )
        assert result.findings == []


class TestR007ModelCacheInKey:
    def test_fires_on_modelcache_import_in_key_module(self, tmp_path):
        # repro.batch.jobs defines instance_key; the module must stay
        # skeleton-blind entirely, so the bare import already fires.
        result = lint(
            tmp_path,
            {
                "repro/batch/jobs.py": """
                from repro.throughput.modelcache import skeleton_for
                """
            },
            rules=["R007"],
        )
        assert rule_ids(result) == ["R007"]
        assert "skeleton-blind" in result.findings[0].message

    def test_fires_on_modelcache_import_in_cache_store(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/batch/cache.py": "import repro.throughput.modelcache\n"},
            rules=["R007"],
        )
        assert rule_ids(result) == ["R007"]

    def test_fires_on_skeleton_key_feeding_a_digest(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/evaluation/keyed.py": """
                import hashlib

                from repro.throughput.modelcache import skeleton_key

                def bad_key(ag, tm):
                    return hashlib.sha256(
                        repr(skeleton_key(ag, tm)).encode()
                    ).hexdigest()
                """
            },
            rules=["R007"],
        )
        assert rule_ids(result) == ["R007"]
        assert "must not reach cache keys" in result.findings[0].message

    def test_fires_on_cache_stats_feeding_key_function(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/evaluation/keyed.py": """
                from repro.throughput import modelcache

                def make_key(*parts):
                    return "|".join(map(str, parts))

                def bad(ag):
                    return make_key(ag.digest, modelcache.model_cache().stats())
                """
            },
            rules=["R007"],
        )
        assert rule_ids(result) == ["R007"]

    def test_quiet_on_accelerator_use_in_solver_layer(self, tmp_path):
        # Consuming the cache to *assemble* (or to group pool chunks) is the
        # sanctioned use; only key/digest construction is off-limits.
        result = lint(
            tmp_path,
            {
                "repro/throughput/fastlp.py": """
                from repro.throughput.modelcache import skeleton_for

                def assemble(ag, tm):
                    skeleton, hit = skeleton_for(ag, tm)
                    return skeleton.assemble(tm.demand, ag.caps), hit
                """,
                "repro/batch/solver2.py": """
                from repro.throughput.modelcache import request_group_key

                def chunk_key(req):
                    return request_group_key(req)
                """,
            },
            rules=["R007"],
        )
        assert result.findings == []

    def test_quiet_on_instance_key_without_modelcache(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/batch/jobs.py": """
                import hashlib

                def instance_key(topo, tm):
                    return hashlib.sha256(topo.digest.encode()).hexdigest()
                """
            },
            rules=["R007"],
        )
        assert result.findings == []

    def test_suppression_comment_covers_r007(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/batch/jobs.py": (
                    "# repro-lint: allow[R007] — migration shim, see PR notes\n"
                    "from repro.throughput.modelcache import skeleton_key\n"
                )
            },
            rules=["R007"],
        )
        assert result.findings == []
        assert result.suppressed == 1


EXPERIMENT_OK = {
    "repro/evaluation/experiments/__init__.py": """
    from repro.evaluation.experiments.alpha import fig_a
    """,
    "repro/evaluation/experiments/alpha.py": """
    from repro.api import experiment

    @experiment("fig-a", title="A")
    def fig_a(scale=None, seed=0):
        return None
    """,
}


class TestR006RegistryCoverage:
    def test_quiet_on_registered_imported_documented(self, tmp_path):
        result = lint(
            tmp_path,
            EXPERIMENT_OK,
            rules=["R006"],
            docs={"EXPERIMENTS.md": "| `fig-a` | A |\n"},
        )
        assert result.findings == []

    def test_fires_on_module_without_spec(self, tmp_path):
        files = dict(EXPERIMENT_OK)
        files["repro/evaluation/experiments/helpers.py"] = "def tm(): pass\n"
        result = lint(
            tmp_path, files, rules=["R006"], docs={"EXPERIMENTS.md": "`fig-a`"}
        )
        assert rule_ids(result) == ["R006"]
        assert "no @experiment" in result.findings[0].message

    def test_fires_on_missing_init_import(self, tmp_path):
        files = dict(EXPERIMENT_OK)
        files["repro/evaluation/experiments/beta.py"] = textwrap.dedent(
            """
            from repro.api import experiment

            @experiment("fig-b", title="B")
            def fig_b(scale=None, seed=0):
                return None
            """
        )
        result = lint(
            tmp_path, files, rules=["R006"], docs={"EXPERIMENTS.md": "`fig-a` `fig-b`"}
        )
        assert rule_ids(result) == ["R006"]
        assert "not imported" in result.findings[0].message

    def test_fires_on_duplicate_experiment_id(self, tmp_path):
        files = dict(EXPERIMENT_OK)
        files["repro/evaluation/experiments/__init__.py"] = textwrap.dedent(
            """
            from repro.evaluation.experiments.alpha import fig_a
            from repro.evaluation.experiments.dup import fig_dup
            """
        )
        files["repro/evaluation/experiments/dup.py"] = textwrap.dedent(
            """
            from repro.api import experiment

            @experiment("fig-a", title="A again")
            def fig_dup(scale=None, seed=0):
                return None
            """
        )
        result = lint(
            tmp_path, files, rules=["R006"], docs={"EXPERIMENTS.md": "`fig-a`"}
        )
        assert any("duplicate experiment id" in f.message for f in result.findings)

    def test_fires_on_undocumented_id(self, tmp_path):
        result = lint(
            tmp_path,
            EXPERIMENT_OK,
            rules=["R006"],
            docs={"EXPERIMENTS.md": "nothing here\n"},
        )
        assert rule_ids(result) == ["R006"]
        assert "EXPERIMENTS.md" in result.findings[0].message

    def test_missing_docs_skips_documented_check(self, tmp_path):
        result = lint(tmp_path, EXPERIMENT_OK, rules=["R006"])
        assert result.findings == []

    def test_fires_on_duplicate_engine_name(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/batch/jobs.py": 'BATCH_ENGINES = ("lp", "mwu", "lp")\n'},
            rules=["R006"],
        )
        assert rule_ids(result) == ["R006"]
        assert "duplicate engine" in result.findings[0].message


class TestSuppression:
    def test_same_line_allow(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/utils/keys.py": "K = hash('x')  # repro-lint: allow[R004]\n"
            },
            rules=["R004"],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_comment_line_above_allow(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/utils/keys.py": (
                    "# repro-lint: allow[R004] — interning experiment\n"
                    "K = hash('x')\n"
                )
            },
            rules=["R004"],
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_allow_covers_only_named_rules(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "import networkx as nx  # repro-lint: allow[R004]\n"
                )
            },
            rules=["R005"],
        )
        assert rule_ids(result) == ["R005"]
        assert result.suppressed == 0

    def test_multi_rule_allow(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "repro/core/bad.py": (
                    "import networkx as nx  # repro-lint: allow[R004, R005]\n"
                )
            },
            rules=["R005"],
        )
        assert result.findings == []
        assert result.suppressed == 1


class TestBaseline:
    def test_grandfathered_finding_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline,
            [
                Finding(
                    path="src/repro/utils/keys.py",
                    line=1,
                    rule="R004",
                    message=(
                        "builtin hash() is salted per process (PYTHONHASHSEED); "
                        "use repro.utils.rng.stable_seed or hashlib"
                    ),
                )
            ],
        )
        result = lint(
            tmp_path,
            {"repro/utils/keys.py": "K = hash('x')\n"},
            rules=["R004"],
            baseline=baseline,
        )
        assert result.findings == []
        assert len(result.grandfathered) == 1
        assert result.stale == []
        assert result.clean

    def test_stale_entry_fails_the_run(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline,
            [Finding(path="src/repro/gone.py", line=1, rule="R004", message="old")],
        )
        result = lint(
            tmp_path,
            {"repro/utils/clean.py": "X = 1\n"},
            rules=["R004"],
            baseline=baseline,
        )
        assert result.findings == []
        assert len(result.stale) == 1
        assert not result.clean

    def test_stale_detection_respects_rule_filter(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline,
            [Finding(path="src/repro/gone.py", line=1, rule="R004", message="old")],
        )
        # Only R005 ran, so the R004 entry simply was not checked.
        result = lint(
            tmp_path,
            {"repro/utils/clean.py": "X = 1\n"},
            rules=["R005"],
            baseline=baseline,
        )
        assert result.stale == []
        assert result.clean

    def test_baseline_matching_ignores_line_numbers(self, tmp_path):
        finding = Finding(path="a.py", line=10, rule="R004", message="m")
        moved = Finding(path="a.py", line=99, rule="R004", message="m")
        entry = BaselineEntry(rule="R004", path="a.py", message="m")
        new, grandfathered, stale = partition([moved], [entry])
        assert new == [] and grandfathered == [moved] and stale == []
        assert finding.fingerprint == moved.fingerprint

    def test_save_load_round_trip_preserves_justification(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        finding = Finding(path="a.py", line=1, rule="R004", message="m")
        save_baseline(baseline, [finding], {finding.fingerprint: "legacy interning"})
        entries = load_baseline(baseline)
        assert entries == [
            BaselineEntry(
                rule="R004", path="a.py", message="m", justification="legacy interning"
            )
        ]


class TestReporters:
    def test_json_round_trips_findings(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/utils/keys.py": "K = hash('x')\n"},
            rules=["R004"],
        )
        recovered = findings_from_json(render_json(result))
        assert recovered == result.findings
        doc = json.loads(render_json(result))
        assert doc["exit_code"] == 1
        assert doc["rules"] == ["R004"]

    def test_text_report_names_rule_and_location(self, tmp_path):
        result = lint(
            tmp_path,
            {"repro/utils/keys.py": "K = hash('x')\n"},
            rules=["R004"],
        )
        text = render_text(result)
        assert "src/repro/utils/keys.py:1:" in text
        assert "R004" in text
        assert "1 finding(s)" in text

    def test_syntax_error_reported_not_crashing(self, tmp_path):
        result = lint(tmp_path, {"repro/broken.py": "def f(:\n    pass\n"})
        assert [f.rule for f in result.findings] == ["E999"]


class TestRealTree:
    """The linter linting the repo that ships it."""

    def test_src_matches_committed_baseline(self):
        result = run_lint(
            paths=[REPO_ROOT / "src"],
            baseline=REPO_ROOT / "reprolint-baseline.json",
            project_root=REPO_ROOT,
        )
        assert result.clean, (
            "repro lint found non-baseline findings:\n"
            + "\n".join(f.render() for f in result.findings)
            + "\nstale baseline entries:\n"
            + "\n".join(e.fingerprint for e in result.stale)
        )

    def test_src_tree_has_suppressions_documented(self):
        # The repo's own suppressions exist and are deliberate: each allow
        # comment carries a justification beyond the bare marker.
        result = run_lint(
            paths=[REPO_ROOT / "src"],
            baseline=REPO_ROOT / "reprolint-baseline.json",
            project_root=REPO_ROOT,
        )
        assert result.suppressed >= 1

    def test_cli_lint_exits_zero_on_real_tree(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = cli_main(["lint"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_cli_lint_json_format(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = cli_main(["lint", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["findings"] == []
        assert doc["rules"] == sorted(RULES)

    def test_cli_rejects_lint_flags_elsewhere(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["fig2", "--format", "json"])

    def test_cli_unknown_rule_is_usage_error(self, capsys):
        assert cli_main(["lint", "--rule", "R999"]) == 2


class TestCliUpdateBaseline:
    def test_update_baseline_writes_and_then_passes(self, tmp_path, monkeypatch, capsys):
        src = make_project(
            tmp_path, {"repro/utils/keys.py": "K = hash('x')\n"}
        )
        baseline = tmp_path / "baseline.json"
        monkeypatch.chdir(tmp_path)
        code = cli_main(
            [
                "lint",
                "--lint-path",
                str(src),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        assert code == 0
        assert baseline.is_file()
        capsys.readouterr()
        code = cli_main(
            ["lint", "--lint-path", str(src), "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "1 grandfathered" in out
